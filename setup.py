"""Legacy setup shim: this environment has no `wheel` package and no network,
so editable installs must use the classic ``setup.py develop`` path.
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
