"""Unit tests for simulated client software and automation semantics."""

import pytest

from repro.clients import EmailClient, IMClient, Screen
from repro.errors import (
    ClientHungError,
    DialogBlockedError,
    NotLoggedInError,
    StalePointerError,
)
from repro.net import EmailService, IMService, LatencyModel
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=0.2, sigma=0.0, low=0.0, high=10.0)


@pytest.fixture()
def rig():
    env = Environment()
    rngs = RngRegistry(seed=11)
    screen = Screen(env)
    im = IMService(env, rngs.stream("im"), latency=FAST)
    email = EmailService(env, rngs.stream("email"), latency=FAST, loss_probability=0.0)
    for addr in ("mab@im", "src@im"):
        im.register_account(addr)
    return env, screen, im, email


class TestLifecycleAndPointers:
    def test_start_returns_valid_handle(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        handle = client.start()
        assert handle.valid()
        assert client.running
        assert client.starts == 1

    def test_double_start_rejected(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        client.start()
        with pytest.raises(RuntimeError):
            client.start()

    def test_restart_invalidates_old_handle(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        old = client.start()
        client.terminate()
        new = client.start()
        assert not old.valid()
        assert new.valid()
        with pytest.raises(StalePointerError):
            client.is_logged_on(old)
        assert client.is_logged_on(new) is False

    def test_terminate_idempotent(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        client.start()
        client.terminate()
        client.terminate()
        assert client.terminations == 1

    def test_handle_for_other_client_rejected(self, rig):
        env, screen, im, email = rig
        a = IMClient(env, screen, im, "mab@im", name="a")
        b = IMClient(env, screen, im, "src@im", name="b")
        ha = a.start()
        b.start()
        with pytest.raises(StalePointerError):
            b.is_logged_on(ha)

    def test_hung_client_raises_on_calls(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        handle = client.start()
        assert client.hang() is True
        with pytest.raises(ClientHungError):
            client.is_logged_on(handle)

    def test_hang_applies_only_when_running(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        assert client.hang() is False
        client.start()
        assert client.hang() is True
        assert client.hang() is False  # already hung

    def test_kill_and_restart_clears_hang(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        client.start()
        client.hang()
        client.terminate()
        handle = client.start()
        assert client.is_logged_on(handle) is False  # no exception


class TestDialogBlocking:
    def test_own_dialog_blocks_client(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        handle = client.start()
        client.pop_dialog("Connection lost", ("OK",))
        with pytest.raises(DialogBlockedError):
            client.is_logged_on(handle)

    def test_system_dialog_blocks_every_client(self, rig):
        env, screen, im, email = rig
        client = EmailClient(env, screen, email, "mab@mail")
        handle = client.start()
        screen.pop_dialog("Low disk space", ("OK",), owner=None)
        with pytest.raises(DialogBlockedError):
            client.unread_count(handle)

    def test_other_clients_dialog_does_not_block(self, rig):
        env, screen, im, email = rig
        a = IMClient(env, screen, im, "mab@im", name="a")
        b = EmailClient(env, screen, email, "mab@mail", name="b")
        ha = a.start()
        hb = b.start()
        a.pop_dialog("IM error", ("OK",))
        assert b.unread_count(hb) == 0
        with pytest.raises(DialogBlockedError):
            a.is_logged_on(ha)

    def test_clicking_dialog_unblocks(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        handle = client.start()
        dialog = client.pop_dialog("Oops", ("OK", "Cancel"))
        screen.click(dialog, "OK")
        assert client.is_logged_on(handle) is False
        assert dialog.dismissed_by == "OK"

    def test_terminate_clears_owned_dialogs_keeps_system_ones(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "mab@im")
        client.start()
        client.pop_dialog("IM crash report", ("Close",))
        screen.pop_dialog("Windows update", ("Restart Now", "Later"), owner=None)
        client.terminate()
        captions = [d.caption for d in screen.open_dialogs()]
        assert captions == ["Windows update"]

    def test_dialog_click_validation(self, rig):
        env, screen, im, email = rig
        dialog = screen.pop_dialog("Q", ("Yes", "No"))
        with pytest.raises(ValueError):
            screen.click(dialog, "Maybe")
        screen.click(dialog, "No")
        with pytest.raises(RuntimeError):
            dialog.click("Yes", env.now)

    def test_dialog_requires_buttons(self, rig):
        env, screen, im, email = rig
        with pytest.raises(ValueError):
            screen.pop_dialog("Broken", ())


class TestIMClientBehaviour:
    def test_logon_send_receive_roundtrip(self, rig):
        env, screen, im, email = rig
        mab = IMClient(env, screen, im, "mab@im", name="mab-client")
        src = IMClient(env, screen, im, "src@im", name="src-client")
        h_mab = mab.start()
        h_src = src.start()
        mab.logon(h_mab)
        src.logon(h_src)
        got = []

        def scenario(env):
            src.send_instant_message(h_src, "mab@im", "flood!", correlation="a1")
            msg = yield mab.next_message(h_mab)
            got.append((msg.body, msg.correlation, env.now))

        done = env.process(scenario(env))
        env.run(until=done)
        assert got == [("flood!", "a1", 0.2)]

    def test_send_without_logon_raises(self, rig):
        env, screen, im, email = rig
        client = IMClient(env, screen, im, "src@im")
        handle = client.start()
        with pytest.raises(NotLoggedInError):
            client.send_instant_message(handle, "mab@im", "x")

    def test_buddy_status(self, rig):
        env, screen, im, email = rig
        mab = IMClient(env, screen, im, "mab@im")
        h = mab.start()
        mab.logon(h)
        assert mab.buddy_status(h, "src@im") is False
        im.login("src@im")
        assert mab.buddy_status(h, "src@im") is True

    def test_forced_logout_detected_and_relogon_works(self, rig):
        env, screen, im, email = rig
        mab = IMClient(env, screen, im, "mab@im")
        h = mab.start()
        mab.logon(h)
        im.force_logout("mab@im")
        assert mab.is_logged_on(h) is False
        mab.logon(h)  # simple re-logon attempt works (9 cases in the paper)
        assert mab.is_logged_on(h) is True

    def test_hang_swallows_incoming_messages(self, rig):
        env, screen, im, email = rig
        mab = IMClient(env, screen, im, "mab@im")
        src = IMClient(env, screen, im, "src@im")
        h_mab, h_src = mab.start(), src.start()
        mab.logon(h_mab)
        src.logon(h_src)

        def scenario(env):
            mab.hang()
            src.send_instant_message(h_src, "mab@im", "into the void")
            yield env.timeout(5.0)

        done = env.process(scenario(env))
        env.run(until=done)
        assert im.stats.delivered == 1  # the network delivered it...
        assert mab.pending_incoming == 0  # ...but the frozen UI ate it

    def test_terminate_drops_session_and_presence(self, rig):
        env, screen, im, email = rig
        mab = IMClient(env, screen, im, "mab@im")
        h = mab.start()
        mab.logon(h)
        assert im.presence.is_online("mab@im")
        mab.terminate()
        assert not im.presence.is_online("mab@im")

    def test_logoff(self, rig):
        env, screen, im, email = rig
        mab = IMClient(env, screen, im, "mab@im")
        h = mab.start()
        mab.logon(h)
        mab.logoff(h)
        assert mab.is_logged_on(h) is False
        assert not im.presence.is_online("mab@im")

    def test_can_launch_session_reflects_service_state(self, rig):
        env, screen, im, email = rig
        mab = IMClient(env, screen, im, "mab@im")
        h = mab.start()
        mab.logon(h)
        assert mab.can_launch_session(h) is True
        im.set_available(False)
        assert mab.can_launch_session(h) is False


class TestEmailClientBehaviour:
    def test_send_and_fetch(self, rig):
        env, screen, im, email = rig
        client = EmailClient(env, screen, email, "mab@mail")
        h = client.start()
        got = []

        def scenario(env):
            client.send_mail(h, "user@mail", "hello", "body")
            yield env.timeout(1.0)
            other = EmailClient(env, screen, email, "user@mail", name="user-client")
            oh = other.start()
            msg = yield other.fetch_next(oh)
            got.append(msg.subject)

        done = env.process(scenario(env))
        env.run(until=done)
        assert got == ["hello"]

    def test_mailbox_survives_client_restart(self, rig):
        env, screen, im, email = rig
        client = EmailClient(env, screen, email, "mab@mail")
        h = client.start()

        def scenario(env):
            email.send("src@mail", "mab@mail", "s", "b")
            yield env.timeout(1.0)
            client.terminate()
            h2 = client.start()
            assert client.unread_count(h2) == 1

        done = env.process(scenario(env))
        env.run(until=done)

    def test_unread_backlog_probe(self, rig):
        env, screen, im, email = rig
        client = EmailClient(env, screen, email, "mab@mail")
        h = client.start()

        def scenario(env):
            for i in range(3):
                email.send("src@mail", "mab@mail", f"s{i}", "b")
            yield env.timeout(1.0)
            assert client.unread_count(h) == 3
            assert [m.subject for m in client.peek_unread(h)] == ["s0", "s1", "s2"]

        done = env.process(scenario(env))
        env.run(until=done)

    def test_server_reachable_probe(self, rig):
        env, screen, im, email = rig
        client = EmailClient(env, screen, email, "mab@mail")
        h = client.start()
        assert client.server_reachable(h) is True
        email.set_available(False)
        assert client.server_reachable(h) is False
