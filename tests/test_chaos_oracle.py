"""Delivery-oracle integration tests: the chaos harness end to end.

Each test replays a small hand-crafted schedule through
:func:`repro.testkit.run_chaos` (time-boxed: minutes of simulated time,
well under a second of wall clock).  The planted-bug tests are the
testkit's self-test: a pipeline with a known delivery bug MUST trip the
oracle, and the shrinker must reduce the trigger to a tiny reproducer —
the ISSUE's acceptance criteria.
"""

import pytest

from repro.sim.clock import MINUTE
from repro.sim.failures import FaultKind, ScheduledFault
from repro.testkit import (
    ChaosRunConfig,
    check_farm_equivalence,
    drop_retry_stages,
    run_chaos,
    shrink,
    silent_drop_stages,
)
from repro.testkit.bugs import AbandonAmnesiaRetryStage
from repro.workloads.faultload import (
    TARGET_EMAIL_SERVICE,
    TARGET_IM_SERVICE,
    TARGET_SCREEN,
)

#: Both channels down at once for 10 minutes: alerts emitted in the gap
#: exhaust their retry chain and must be *explicitly* dead-lettered.
TOTAL_OUTAGE = [
    ScheduledFault(
        at=602.0, kind=FaultKind.IM_SERVICE_OUTAGE,
        target=TARGET_IM_SERVICE, duration=600.0,
    ),
    ScheduledFault(
        at=602.0, kind=FaultKind.EMAIL_OUTAGE,
        target=TARGET_EMAIL_SERVICE, duration=900.0,
    ),
]

#: Noise faults the system recovers from on its own; used to prove the
#: shrinker strips them away from the essential outage pair.
NOISE = [
    ScheduledFault(at=100.0, kind=FaultKind.CLIENT_LOGOUT,
                   target="im-client:user0"),
    ScheduledFault(at=200.0, kind=FaultKind.PROCESS_CRASH,
                   target="mab:user1"),
    ScheduledFault(at=300.0, kind=FaultKind.DIALOG_POPUP, target=TARGET_SCREEN,
                   params={"caption": "Connection lost", "button": "OK"}),
    ScheduledFault(at=420.0, kind=FaultKind.MEMORY_LEAK, target="mab:user0",
                   params={"megabytes": 120.0}),
    ScheduledFault(at=900.0, kind=FaultKind.PROCESS_HANG, target="mab:user0"),
    ScheduledFault(at=1500.0, kind=FaultKind.CLIENT_STALE_POINTER,
                   target="im-client:user1"),
]

CONFIG = ChaosRunConfig(
    seed=5, n_users=2, duration=20 * MINUTE, settle=15 * MINUTE,
    alert_period=40.0,
)


def violated(report):
    return {v.invariant for v in report.oracle.violations}


class TestOracleOnRealPipeline:
    def test_total_outage_run_passes_with_dead_letters(self):
        report = run_chaos(TOTAL_OUTAGE, CONFIG)
        assert report.ok, report.oracle.summary()
        # Alerts landed both sides of the outage: some routed, and the ones
        # emitted inside it exhausted retries into explicit dead letters.
        assert report.outcome_counts.get("routed", 0) > 0
        assert report.outcome_counts.get("delivery_abandoned", 0) > 0
        assert report.injected == len(TOTAL_OUTAGE)

    def test_fault_free_run_is_clean(self):
        config = ChaosRunConfig(
            seed=3, n_users=2, duration=10 * MINUTE, settle=10 * MINUTE,
        )
        report = run_chaos([], config)
        assert report.ok
        assert report.outcome_counts.get("routed", 0) > 0
        assert sum(report.delivered.values()) > 0

    def test_run_fingerprint_bit_for_bit_reproducible(self):
        a = run_chaos(TOTAL_OUTAGE, CONFIG)
        b = run_chaos(TOTAL_OUTAGE, CONFIG)
        assert a.fingerprint() == b.fingerprint()

    def test_noise_faults_are_recovered_not_fatal(self):
        report = run_chaos(NOISE, CONFIG)
        assert report.ok, report.oracle.summary()
        assert report.injected >= len(NOISE) - 1  # a crashed MAB may reject a
        # follow-up fault aimed at the dead incarnation; everything else lands


class TestOracleCatchesPlantedBugs:
    """Self-test: deliberately broken pipelines MUST trip the oracle."""

    def test_silent_drop_caught(self):
        report = run_chaos(
            TOTAL_OUTAGE, CONFIG, stage_factory=silent_drop_stages
        )
        assert not report.ok
        assert "replay_idempotent" in violated(report) or (
            "delivered_or_dead_letter" in violated(report)
        )

    def test_silent_drop_is_latent_without_faults(self):
        """The planted bug only fires on total delivery failure — a
        fault-free run looks healthy, which is why chaos search exists."""
        config = ChaosRunConfig(
            seed=3, n_users=2, duration=10 * MINUTE, settle=10 * MINUTE,
        )
        report = run_chaos([], config, stage_factory=silent_drop_stages)
        assert report.ok

    def test_dropping_retry_stage_caught(self):
        report = run_chaos(
            TOTAL_OUTAGE, CONFIG, stage_factory=drop_retry_stages
        )
        assert not report.ok
        assert "pipeline_terminal" in violated(report)

    def test_abandon_amnesia_caught(self):
        def stages():
            from repro.core.pipeline import (
                AggregateStage, ClassifyStage, FilterStage, RouteStage,
            )

            return [
                ClassifyStage(), AggregateStage(), FilterStage(),
                RouteStage(), AbandonAmnesiaRetryStage(),
            ]

        report = run_chaos(TOTAL_OUTAGE, CONFIG, stage_factory=stages)
        assert not report.ok

    def test_planted_bug_shrinks_to_tiny_reproducer(self):
        """ISSUE acceptance: the injected delivery bug's trigger shrinks to
        a <= 3-fault reproducer (here: exactly the outage pair)."""
        schedule = sorted(NOISE + TOTAL_OUTAGE, key=lambda f: f.at)

        def fails(candidate):
            probe = run_chaos(
                candidate, CONFIG, stage_factory=silent_drop_stages
            )
            return not probe.ok

        assert fails(schedule)
        result = shrink(schedule, fails, max_trials=32)
        assert len(result.schedule) <= 3
        assert result.minimal
        kinds = {f.kind for f in result.schedule}
        assert kinds == {
            FaultKind.IM_SERVICE_OUTAGE, FaultKind.EMAIL_OUTAGE,
        }


class TestDuplicateSuppression:
    def test_blocked_ack_fallback_copy_deduplicated(self):
        """Regression for a real bug this testkit found: a dialog blocking
        the MAB's ack makes the sender fall back to email, and the second
        copy used to start a competing retry chain (two terminal 'routed'
        trips).  The journal's retry_pending guard now drops it."""
        schedule = [
            ScheduledFault(
                at=600.0, kind=FaultKind.UNKNOWN_DIALOG_POPUP,
                target=TARGET_SCREEN,
                params={"caption": "MSVCRT.DLL entry point not found",
                        "button": "OK"},
            )
        ]
        report = run_chaos(schedule, CONFIG)
        assert report.ok, report.oracle.summary()
        # The fallback copies really arrived — and were dropped as
        # duplicates instead of double-routed.
        assert report.outcome_counts.get("duplicate_incoming", 0) >= 1


class TestFarmEquivalence:
    def test_farm_matches_independent_mabs(self):
        report = check_farm_equivalence(n_users=2, seed=7, alerts_per_user=6)
        assert report.equivalent, "\n".join(report.mismatches)
        assert report.users == 2
        # The script exercises more than the happy path.
        kinds = {
            kind
            for outcomes in report.farm_outcomes.values()
            for kinds_list in outcomes.values()
            for kind in kinds_list
        }
        assert "routed" in kinds
        assert "rejected" in kinds
