"""Property test: the optimized kernel is observably identical to the
frozen pre-optimization reference.

A seeded generator builds a random *program* — pure data: process scripts
made of timeouts, AnyOf/AllOf races (nested one level), event waits/fires,
child spawns and cross-process interrupts.  The same program is interpreted
under ``tests/reference_kernel.py`` (single heap, no tombstones, no
zero-delay fast path) and under ``repro.sim`` (cancellable timers, deque
fast path, lazy deletion), and the observable traces must match exactly:

- every process resume: same simulated time, same op, same outcome;
- the clock at every ``run(until=...)`` checkpoint;
- final process values.

What the optimized kernel is *allowed* to change is unobservable queue
residue: abandoned timers no longer drain the clock forward after the last
live wakeup.  The trace therefore records what processes *see*, never how
long ``run()`` idles afterwards.
"""

import random

import pytest

import tests.reference_kernel as reference
from repro import sim as optimized
from repro.errors import Interrupt

HORIZON = 200.0
CHECKPOINTS = (25.0, 60.0, 110.0, HORIZON)

#: Both schedulers must match the frozen reference byte-for-byte.
BACKENDS = ("heap", "wheel")


def make_program(seed, n_procs=6, n_ops=7, delay_fn=None, checkpoints=None):
    """Generate a random schedule as plain data (kernel-independent)."""
    rng = random.Random(seed)

    def delays(k):
        if delay_fn is not None:
            return [delay_fn(rng) for _ in range(k)]
        return [round(rng.uniform(0.1, 40.0), 3) for _ in range(k)]

    n_events = rng.randint(1, 4)
    procs = []
    for _ in range(n_procs):
        ops = []
        for _ in range(rng.randint(1, n_ops)):
            kind = rng.choice(
                ["timeout", "any", "all", "nested", "spawn",
                 "interrupt", "fire", "wait"]
            )
            if kind == "timeout":
                ops.append(("timeout", delays(1)[0]))
            elif kind == "any":
                ops.append(("any", delays(rng.randint(2, 4))))
            elif kind == "all":
                ops.append(("all", delays(rng.randint(2, 3))))
            elif kind == "nested":
                # any_of([timeout, all_of([timeout, timeout])])
                ops.append(("nested", delays(1)[0], delays(2)))
            elif kind == "spawn":
                child = [("timeout", d) for d in delays(rng.randint(1, 2))]
                ops.append(("spawn", child, rng.random() < 0.5))
            elif kind == "interrupt":
                ops.append(
                    ("interrupt", rng.randrange(n_procs), delays(1)[0])
                )
            elif kind == "fire":
                ops.append(
                    ("fire", rng.randrange(n_events), delays(1)[0],
                     rng.randint(0, 99))
                )
            else:
                ops.append(("wait", rng.randrange(n_events)))
        procs.append(ops)
    program = {"n_events": n_events, "procs": procs}
    if checkpoints is not None:
        program["checkpoints"] = checkpoints
    return program


def interpret(kernel, program, **env_kwargs):
    """Run ``program`` under ``kernel`` and return its observable trace."""
    env = kernel.Environment(**env_kwargs)
    events = [env.event() for _ in range(program["n_events"])]
    registry = []
    trace = []

    def note(name, step, outcome):
        trace.append((name, step, round(env.now, 9), outcome))

    def run_ops(env, ops, name):
        for step, op in enumerate(ops):
            try:
                if op[0] == "timeout":
                    yield env.timeout(op[1])
                    note(name, step, "timeout")
                elif op[0] == "any":
                    result = yield env.any_of(
                        [env.timeout(d, value=d) for d in op[1]]
                    )
                    note(name, step, ("any", sorted(result.values())))
                elif op[0] == "all":
                    result = yield env.all_of(
                        [env.timeout(d, value=d) for d in op[1]]
                    )
                    note(name, step, ("all", sorted(result.values())))
                elif op[0] == "nested":
                    inner = env.all_of(
                        [env.timeout(d, value=d) for d in op[2]]
                    )
                    result = yield env.any_of(
                        [env.timeout(op[1], value=op[1]), inner]
                    )
                    note(name, step, ("nested", len(result)))
                elif op[0] == "spawn":
                    child = env.process(
                        run_ops(env, op[1], f"{name}.c{step}")
                    )
                    if op[2]:
                        yield child
                    note(name, step, ("spawn", op[2]))
                elif op[0] == "interrupt":
                    yield env.timeout(op[2])
                    target = registry[op[1] % len(registry)]
                    me = env.active_process
                    if target.is_alive and target is not me:
                        target.interrupt(f"by {name}")
                        note(name, step, ("interrupted", op[1]))
                    else:
                        note(name, step, ("interrupt-skip", op[1]))
                elif op[0] == "fire":
                    yield env.timeout(op[2])
                    event = events[op[1]]
                    if not event.triggered:
                        event.succeed(op[3])
                        note(name, step, ("fired", op[1]))
                    else:
                        note(name, step, ("fire-skip", op[1]))
                elif op[0] == "wait":
                    event = events[op[1]]
                    if event.triggered:
                        note(name, step, ("wait-skip", op[1]))
                    else:
                        value = yield event
                        note(name, step, ("waited", value))
            except Interrupt as exc:
                note(name, step, ("caught", str(exc.cause)))
        return name

    for index, ops in enumerate(program["procs"]):
        registry.append(env.process(run_ops(env, ops, f"p{index}")))

    clocks = []
    for checkpoint in program.get("checkpoints", CHECKPOINTS):
        env.run(until=checkpoint)
        clocks.append(env.now)

    # Waiters on never-fired events stay pending in both kernels alike.
    finals = [
        (proc.value if proc.triggered else "pending") for proc in registry
    ]
    return {"trace": trace, "clocks": clocks, "finals": finals}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(30))
def test_random_schedules_match_reference(seed, backend):
    program = make_program(seed)
    assert interpret(optimized, program, scheduler=backend) == interpret(
        reference, program
    )


def _boundary_delay(rng):
    """Deadlines hugging the wheel's slot and page boundaries.

    The wheel buckets deadlines by ``int(time)`` into 256-slot pages
    (levels at 256 and 65536 ticks).  These delays land entries exactly
    on, a hair before, and a hair after those boundaries — the places
    where staging, cascading and straggler handling must still produce
    the reference order.
    """
    base = rng.choice([1.0, 255.0, 256.0, 257.0, 511.0, 512.0])
    jitter = rng.choice([-0.001, 0.0, 0.001, 0.5, 0.999])
    return round(max(0.001, base + jitter), 6)


BOUNDARY_CHECKPOINTS = (200.0, 256.0, 300.0, 512.0, 1500.0)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(10))
def test_slot_boundary_schedules_match_reference(seed, backend):
    program = make_program(
        seed,
        delay_fn=_boundary_delay,
        checkpoints=BOUNDARY_CHECKPOINTS,
    )
    assert interpret(optimized, program, scheduler=backend) == interpret(
        reference, program
    )


def _long_horizon_delay(rng):
    """Deadlines spanning level 1, level 2 and the overflow heap."""
    scale = rng.choice([1.0, 300.0, 70_000.0, 20_000_000.0])
    return round(rng.uniform(0.1, 40.0) * scale, 3)


LONG_CHECKPOINTS = (300.0, 70_000.0, 20_000_000.0, 900_000_000.0)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(10))
def test_long_horizon_schedules_match_reference(seed, backend):
    program = make_program(
        seed,
        delay_fn=_long_horizon_delay,
        checkpoints=LONG_CHECKPOINTS,
    )
    assert interpret(optimized, program, scheduler=backend) == interpret(
        reference, program
    )


def make_cancel_storm_program(seed, n_procs=8):
    """Every op is a wide AnyOf race: ~75% of all timers get cancelled.

    This is the mass-cancellation shape — tombstones dominate the queues,
    compaction fires repeatedly mid-run, and the survivors must still pop
    in exactly the reference order.
    """
    rng = random.Random(seed)
    procs = []
    for index in range(n_procs):
        ops = []
        for _ in range(rng.randint(3, 6)):
            if rng.random() < 0.2:
                ops.append(("interrupt", rng.randrange(n_procs),
                            round(rng.uniform(0.1, 5.0), 3)))
            else:
                ops.append(("any", [
                    round(rng.uniform(0.1, 60.0), 3)
                    for _ in range(rng.randint(3, 4))
                ]))
        procs.append(ops)
    return {"n_events": 1, "procs": procs}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(10))
def test_cancel_storm_schedules_match_reference(seed, backend):
    program = make_cancel_storm_program(seed)
    assert interpret(optimized, program, scheduler=backend) == interpret(
        reference, program
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_interrupt_heavy_schedule_matches_reference(backend):
    # Every process tries to interrupt its neighbour while racing timers —
    # the worst case for wait-cancellation bookkeeping.
    program = {
        "n_events": 1,
        "procs": [
            [("any", [5.0, 50.0]), ("interrupt", (i + 1) % 4, 2.0),
             ("timeout", 3.0), ("any", [1.0, 90.0, 90.5])]
            for i in range(4)
        ],
    }
    assert interpret(optimized, program, scheduler=backend) == interpret(
        reference, program
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_shared_event_races_match_reference(backend):
    # One event shared by three AnyOf races and a direct waiter: losing
    # timers may be cancelled, the shared event must not be.
    program = {
        "n_events": 2,
        "procs": [
            [("wait", 0), ("timeout", 1.0)],
            [("nested", 4.0, [2.0, 30.0]), ("wait", 0)],
            [("fire", 0, 12.0, 7), ("any", [3.0, 80.0])],
            [("any", [6.0, 70.0]), ("fire", 1, 1.0, 8), ("wait", 1)],
        ],
    }
    assert interpret(optimized, program, scheduler=backend) == interpret(
        reference, program
    )
