"""Unit + property tests for the pessimistic log."""

import json
import logging

import pytest
from hypothesis import given, strategies as st

from repro.core import PessimisticLog
from repro.sim import Environment


def run_append(env, log, alert_id, payload="p"):
    proc = env.process(log.append(alert_id, payload))
    env.run(until=proc)
    return proc.value


class TestPessimisticLog:
    def test_append_takes_write_latency(self):
        env = Environment()
        log = PessimisticLog(env, write_latency=0.5)
        entry = run_append(env, log, "a1")
        assert env.now == 0.5
        assert entry.received_at == 0.5
        assert not entry.processed

    def test_zero_latency_append(self):
        env = Environment()
        log = PessimisticLog(env, write_latency=0.0)
        run_append(env, log, "a1")
        assert env.now == 0.0

    def test_negative_latency_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            PessimisticLog(env, write_latency=-1.0)

    def test_unprocessed_scan_ordering(self):
        env = Environment()
        log = PessimisticLog(env, write_latency=0.1)
        e1 = run_append(env, log, "a1")
        e2 = run_append(env, log, "a2")
        e3 = run_append(env, log, "a3")
        log.mark_processed(e2.entry_id)
        assert [e.alert_id for e in log.unprocessed()] == ["a1", "a3"]
        log.mark_processed(e1.entry_id)
        log.mark_processed(e3.entry_id)
        assert log.unprocessed() == []

    def test_mark_processed_idempotent(self):
        env = Environment()
        log = PessimisticLog(env, write_latency=0.0)
        entry = run_append(env, log, "a1")
        log.mark_processed(entry.entry_id)
        first = entry.processed_at
        log.mark_processed(entry.entry_id)
        assert entry.processed_at == first

    def test_has_seen_and_lookup(self):
        env = Environment()
        log = PessimisticLog(env, write_latency=0.0)
        run_append(env, log, "a1")
        assert log.has_seen("a1")
        assert not log.has_seen("a2")
        assert log.entry_for_alert("a1").alert_id == "a1"
        assert log.entry_for_alert("a2") is None
        assert len(log) == 1

    def test_file_backing_roundtrip(self, tmp_path):
        path = tmp_path / "mab.log"
        env = Environment()
        log = PessimisticLog(env, write_latency=0.0, path=path)
        e1 = run_append(env, log, "a1", "payload-1")
        run_append(env, log, "a2", "payload-2")
        log.mark_processed(e1.entry_id)

        # Simulated reboot: fresh environment, reload from disk.
        env2 = Environment()
        restored = PessimisticLog.load(env2, path)
        assert len(restored) == 2
        assert [e.alert_id for e in restored.unprocessed()] == ["a2"]
        assert restored.entry_for_alert("a2").payload == "payload-2"
        # Entry ids keep counting past the highest on disk.
        e3 = run_append(env2, restored, "a3")
        assert e3.entry_id == 3

    def test_load_missing_file_gives_empty_log(self, tmp_path):
        env = Environment()
        log = PessimisticLog.load(env, tmp_path / "nope.log")
        assert len(log) == 0

    def test_processed_at_survives_reload(self, tmp_path):
        path = tmp_path / "mab.log"
        env = Environment()
        log = PessimisticLog(env, write_latency=0.0, path=path)
        entry = run_append(env, log, "a1")

        def later(env):
            yield env.timeout(42.0)
            log.mark_processed(entry.entry_id)

        proc = env.process(later(env))
        env.run(until=proc)

        restored = PessimisticLog.load(Environment(), path)
        assert restored.entry_for_alert("a1").processed
        assert restored.entry_for_alert("a1").processed_at == 42.0

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=49), st.booleans()),
            min_size=1,
            max_size=50,
        )
    )
    def test_no_ack_no_loss_property(self, operations):
        """Everything appended and not marked processed is recoverable."""
        env = Environment()
        log = PessimisticLog(env, write_latency=0.0)
        entries = {}
        processed = set()
        for index, (key, mark) in enumerate(operations):
            alert_id = f"alert-{key}-{index}"
            entry = run_append(env, log, alert_id)
            entries[alert_id] = entry
            if mark:
                log.mark_processed(entry.entry_id)
                processed.add(alert_id)
        recovered = {e.alert_id for e in log.unprocessed()}
        assert recovered == set(entries) - processed
        # Recovery order is append order.
        ids = [e.entry_id for e in log.unprocessed()]
        assert ids == sorted(ids)


class TestCrashedFileRecovery:
    """Tolerant load: the file a crashed machine leaves behind."""

    def _write_lines(self, path, lines):
        path.write_text("".join(line + "\n" for line in lines))

    def test_torn_tail_line_skipped_with_warning(self, tmp_path, caplog):
        path = tmp_path / "mab.log"
        good = json.dumps({
            "op": "append", "entry_id": 1, "alert_id": "a1",
            "received_at": 1.0, "payload": "p",
        })
        torn = '{"op": "append", "entry_id": 2, "alert_id": "a2", "rec'
        self._write_lines(path, [good, torn])
        with caplog.at_level(
            logging.WARNING, logger="repro.core.pessimistic_log"
        ):
            log = PessimisticLog.load(Environment(), path)
        assert len(log) == 1
        assert log.has_seen("a1") and not log.has_seen("a2")
        assert any("torn tail" in r.message for r in caplog.records)
        # The torn entry never became durable, so ids continue from 1.
        entry = run_append(log.env, log, "a3")
        assert entry.entry_id == 2

    def test_mid_file_corruption_is_a_real_error(self, tmp_path):
        path = tmp_path / "mab.log"
        good = json.dumps({
            "op": "append", "entry_id": 2, "alert_id": "a2",
            "received_at": 2.0, "payload": "p",
        })
        self._write_lines(path, ['{"op": "appen', good])
        with pytest.raises(json.JSONDecodeError):
            PessimisticLog.load(Environment(), path)

    def test_orphan_processed_record_warns_and_errs_to_replay(
        self, tmp_path, caplog
    ):
        path = tmp_path / "mab.log"
        good = json.dumps({
            "op": "append", "entry_id": 1, "alert_id": "a1",
            "received_at": 1.0, "payload": "p",
        })
        orphan = json.dumps(
            {"op": "processed", "entry_id": 7, "processed_at": 9.0}
        )
        self._write_lines(path, [good, orphan])
        with caplog.at_level(
            logging.WARNING, logger="repro.core.pessimistic_log"
        ):
            log = PessimisticLog.load(Environment(), path)
        assert any("never appended" in r.message for r in caplog.records)
        # The survivor is intact and still unprocessed — recovery replays.
        assert [e.alert_id for e in log.unprocessed()] == ["a1"]


class TestReplicaMirror:
    def test_snapshot_records_rebuild_state(self):
        env = Environment()
        log = PessimisticLog(env, write_latency=0.0)
        e1 = run_append(env, log, "a1", "p1")
        run_append(env, log, "a2", "p2")
        log.mark_processed(e1.entry_id)

        mirror = PessimisticLog(Environment(), write_latency=0.0)
        for record in log.snapshot_records():
            mirror.apply_replica_record(record)
        assert len(mirror) == 2
        assert mirror.entry_for_alert("a1").processed
        assert mirror.entry_for_alert("a1").processed_at is not None
        assert [e.alert_id for e in mirror.unprocessed()] == ["a2"]
        # Local appends after the re-seed do not collide with mirrored ids.
        e3 = run_append(mirror.env, mirror, "a3")
        assert e3.entry_id == 3

    def test_apply_replica_append_idempotent(self):
        mirror = PessimisticLog(Environment(), write_latency=0.0)
        record = {
            "op": "append", "entry_id": 1, "alert_id": "a1",
            "received_at": 1.0, "payload": "p",
        }
        mirror.apply_replica_record(record)
        mirror.apply_replica_record(record)
        assert len(mirror) == 1

    def test_orphan_processed_mark_skipped_with_warning(self, caplog):
        mirror = PessimisticLog(Environment(), write_latency=0.0)
        with caplog.at_level(
            logging.WARNING, logger="repro.core.pessimistic_log"
        ):
            mirror.apply_replica_record(
                {"op": "processed", "entry_id": 3, "processed_at": 5.0}
            )
        assert len(mirror) == 0
        assert any("unknown entry" in r.message for r in caplog.records)
