"""Frozen pre-optimization reference kernel (single-heap, no tombstones).

A verbatim concatenation of ``repro.sim.{events,kernel,process}`` as they
stood *before* the fast-path work (cancellable timers, ``__slots__``, the
zero-delay deque, lazy tombstone deletion).  The property test in
``test_kernel_equivalence.py`` replays randomized schedules through this
kernel and the optimized one and asserts identical observable behaviour:
same process resume times, same values, same clock at every checkpoint.

Imports of ``repro.errors`` are the only dependency kept live — the error
types are shared so exceptions compare naturally across kernels.  Do not
"fix" or modernize this module: its value is that it does NOT change.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import EventAlreadyTriggered, Interrupt, SimulationError, StopSimulation

_PENDING = object()


class Event:
    """A condition that processes can wait for.

    Events are triggered exactly once, either with :meth:`succeed` (carrying
    a value) or :meth:`fail` (carrying an exception).  Callbacks attached via
    :attr:`callbacks` run when the kernel pops the event off its queue.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set by :meth:`defused` consumers; a failed event whose exception
        #: nobody observed crashes the simulation (errors never pass silently).
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise AttributeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value (or exception instance) the event was triggered with."""
        if self._value is _PENDING:
            raise AttributeError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as observed so it will not crash the run."""
        self._defused = True

    def cancel(self) -> None:
        """Withdraw this event from whatever resource is backing it.

        Called when a process waiting on the event is interrupted: the wait
        is over, so the event must not consume anything on the waiter's
        behalf (e.g. a StoreGet must leave the store's queue, or it would
        swallow the next item into a void).  Base events need no cleanup.
        """

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class Condition(Event):
    """Composite event over a set of child events.

    Triggers when ``evaluate`` says enough children have triggered.  If any
    child fails before the condition triggers, the condition fails with that
    child's exception.
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # A late failure after the condition already triggered must
                # still be observed somewhere; defuse it because the condition
                # is done and no waiter can see it.
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            self.succeed(self._collect())

    def cancel(self) -> None:
        """Cancelling a condition cancels its still-pending children."""
        for event in self._events:
            if not event.triggered:
                event.cancel()

    def _collect(self) -> dict[Event, Any]:
        """Snapshot of values from the children processed so far.

        ``processed`` (not ``triggered``) is the right filter: a Timeout is
        triggered from construction, but only events whose callbacks have run
        have actually *happened* by the time the condition fires.
        """
        return {
            event: event.value
            for event in self._events
            if event.processed and event._ok
        }


class AnyOf(Condition):
    """Triggers as soon as any child event triggers."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda total, done: done >= 1, events)


class AllOf(Condition):
    """Triggers when every child event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda total, done: done >= total, events)


class Process(Event):
    """A running simulation process (and the event of its termination)."""

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"process target must be a generator, got {generator!r}"
            )
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        #: The event this process is currently waiting on (None while running).
        self._waiting_on: Optional[Event] = None
        # Kick-start the process at the current simulation time.
        init = Event(env)
        init.succeed()
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        Used for crash/kill injection and for cancelling waits.  Interrupting
        a finished process is an error; interrupting a process that is mid-
        resume is delivered at its next suspension point.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        # Deliver via a zero-delay event so interrupts obey queue ordering.
        trigger = Event(self.env)
        trigger.succeed()
        trigger.callbacks.append(lambda _evt: self._deliver_interrupt(cause))

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return  # process finished before the interrupt landed
        target = self._waiting_on
        if target is not None:
            if self._resume in (target.callbacks or []):
                target.callbacks.remove(self._resume)
            if not target.triggered:
                target.cancel()
        self._waiting_on = None
        self._step(Interrupt(cause), ok=False)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event.value, ok=event.ok)
        if not event.ok:
            event.defuse()

    def _step(self, value: Any, ok: bool) -> None:
        """Advance the generator one yield and wire up the next wait."""
        self.env._active_process = self
        try:
            if ok:
                target = self._generator.send(value)
            else:
                target = self._generator.throw(value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self._ok = False
            self._value = exc
            self.env.schedule(self)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            message = TypeError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self._step(message, ok=False)
            return
        if target.processed:
            # Already-processed events resume the process on the next tick so
            # that a tight loop over completed events cannot starve the queue.
            rearm = Event(self.env)
            rearm._ok = target.ok
            rearm._value = target.value
            self.env.schedule(rearm)
            if not target.ok:
                target.defuse()
                rearm._defused = True
            self._waiting_on = rearm
            rearm.callbacks.append(self._resume)
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {status}>"


class Environment:
    """Execution environment for a single simulation run."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def peek(self) -> float:
        """Time of the next queued event, or ``float('inf')`` if idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("no events scheduled")
        self._now, _seq, event = heapq.heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise event.value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time or an event) or queue exhaustion.

        - ``until=None``: run until no events remain.
        - ``until=<number>``: run until the clock would pass that time, then
          set the clock exactly to it.
        - ``until=<Event>``: run until that event is processed and return its
          value (raising its exception if it failed).
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
            until.callbacks.append(self._stop_on_event)
            try:
                while self._queue:
                    self.step()
            except StopSimulation as stop:
                return stop.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired"
            )
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"cannot run until {stop_at!r}, already at {self._now!r}"
                )

        while self._queue and self._queue[0][0] <= stop_at:
            self.step()
        if stop_at != float("inf"):
            self._now = max(self._now, stop_at)
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event.ok:
            event.defuse()
            raise event.value
        raise StopSimulation(event.value)
