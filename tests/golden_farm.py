"""Fixed-seed 20-user farm scenario for the determinism golden test.

Farm-level counterpart of :mod:`tests.golden_scenario`: one
:class:`~repro.core.farm.BuddyFarm` with 20 tenants runs a scripted
workload that exercises routed, unmapped, rejected and duplicate outcomes
plus a crash + recovery replay on one tenant — then every tenant's journal
is serialized in a byte-stable form.  Any nondeterminism anywhere in the
farm stack (shard RNG naming, pipeline ordering, watchdog timing) shows up
as a diff against ``tests/data/golden_farm_seed.json``.

``python -m tests.golden_farm`` regenerates the golden file.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_FARM_PATH = Path(__file__).parent / "data" / "golden_farm_seed.json"
GOLDEN_FARM_TRACE_PATH = (
    Path(__file__).parent / "data" / "trace" / "golden_farm_trace.json"
)
N_USERS = 20
SEED = 2027


def run_golden_farm(tracer=None, admission=None, adversary=None):
    """Build and run the scenario; returns the farm (world has quiesced).

    ``tracer`` (a :class:`repro.obs.TraceSink`) is installed on the world's
    environment before anything runs — the trace-golden test uses it, and
    the journal golden must not change whether or not it is passed (tracing
    is pure observation).

    ``admission`` (an :class:`repro.core.admission.AdmissionConfig`) is
    applied to every tenant.  The permissive-config regression test passes
    :meth:`~repro.core.admission.AdmissionConfig.permissive` and asserts
    the journals stay byte-identical to the golden — hardening wired but
    switched off must be a perfect no-op.

    ``adversary`` (an :class:`repro.net.adversary.AdversaryModel`) is
    installed as the ambient adversary on every substrate channel.  The
    adversary-off regression test passes
    :meth:`~repro.net.adversary.AdversaryModel.off` and asserts byte
    identity — the benign adversary must draw no RNG at all.
    """
    from repro.core.farm import FarmProfile
    from repro.world import SimbaWorld, WorldConfig

    world = SimbaWorld(WorldConfig(seed=SEED, email_loss=0.0, sms_loss=0.0))
    if tracer is not None:
        tracer.install(world.env)
    if adversary is not None:
        for channel in (world.im, world.email, world.sms):
            channel.set_adversary(adversary)
    farm = world.create_farm(
        shards=4,
        profile=FarmProfile(categories=("News",), accept_sources=("portal",)),
    )
    tenants = farm.add_users(N_USERS)
    if admission is not None:
        for tenant in tenants:
            tenant.deployment.config.admission = admission
    source = world.create_source("portal")
    farm.register_with(source)
    rogue = world.create_source("rogue")
    farm.register_with(rogue)
    farm.launch_all()

    def driver(env):
        yield env.timeout(60.0)
        # Round 1: every tenant routes one alert.
        for tenant in tenants:
            source.emit_to(tenant.book, "News", f"r1-{tenant.name}", "b")
            yield env.timeout(2.0)
        # The §4.2 non-happy branches, spread over a few tenants.
        source.emit_to(tenants[0].book, "Gossip", "unmapped-0", "b")  # unmapped
        rogue.emit_to(tenants[1].book, "News", "rogue-1", "b")  # rejected
        alert, _ = source.emit_to(tenants[2].book, "News", "twice-2", "b")
        world.email.send(  # sender fallback copy: duplicate_incoming
            "portal@mail", tenants[2].deployment.email_address,
            alert.subject, alert.encode(), correlation=alert.alert_id,
        )
        yield env.timeout(60.0)
        # Crash tenant 5 right after the log-before-ack write of a fresh
        # alert but before routing finishes: relaunch must replay it.
        source.emit_to(tenants[5].book, "News", "replayed-5", "b")
        yield env.timeout(1.8)
        buddy = tenants[5].deployment.current
        if buddy is not None:
            buddy.crash("golden farm crash")
        yield env.timeout(58.2)
        tenants[5].deployment.launch()
        yield env.timeout(60.0)
        # Round 2: every tenant routes again (tenant 5 on its second
        # incarnation).
        for tenant in tenants:
            source.emit_to(tenant.book, "News", f"r2-{tenant.name}", "b")
            yield env.timeout(2.0)

    world.env.process(driver(world.env), name="golden-farm-driver")
    world.run(until=1500.0)
    return farm


def serialize_farm_journals(farm) -> str:
    """Byte-stable JSON of every tenant's journal, tenant-index order.

    Alert ids come from a process-global counter, so they are normalized
    to first-appearance order across the whole farm; timestamps, kinds and
    details must match exactly.
    """
    id_map: dict[str, str] = {}

    def norm(alert_id):
        if alert_id is None:
            return None
        if alert_id not in id_map:
            id_map[alert_id] = f"A{len(id_map) + 1}"
        return id_map[alert_id]

    payload = [
        [
            tenant.name,
            [
                [repr(e.at), e.kind, e.detail, norm(e.alert_id)]
                for e in tenant.deployment.journal.events
            ],
        ]
        for tenant in farm
    ]
    return json.dumps(payload, indent=1)


def serialize_farm_trace(sink) -> str:
    """Byte-stable JSON of the whole run's trace sink.

    Alert-id trace ids are normalized to first-appearance order (same
    scheme as :func:`serialize_farm_journals`); ``lifecycle:`` trace ids
    are already stable names and pass through unchanged.  Span ids are
    sink-local counters and need no normalization.
    """
    from repro.obs import LIFECYCLE_PREFIX

    id_map: dict[str, str] = {}

    def norm(trace_id):
        if trace_id.startswith(LIFECYCLE_PREFIX):
            return trace_id
        if trace_id not in id_map:
            id_map[trace_id] = f"A{len(id_map) + 1}"
        return id_map[trace_id]

    return sink.to_json(rename=norm)


def main() -> None:
    from repro.obs import TraceSink

    # The journal golden stays authoritative for the *untraced* run; the
    # trace golden comes from a second, traced run.  test_trace_golden.py
    # asserts the two runs produce byte-identical journals.
    GOLDEN_FARM_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_FARM_PATH.write_text(
        serialize_farm_journals(run_golden_farm()) + "\n"
    )
    print(f"wrote {GOLDEN_FARM_PATH}")
    sink = TraceSink()
    run_golden_farm(tracer=sink)
    GOLDEN_FARM_TRACE_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_FARM_TRACE_PATH.write_text(serialize_farm_trace(sink) + "\n")
    print(f"wrote {GOLDEN_FARM_TRACE_PATH}")


if __name__ == "__main__":
    main()
