"""Replay pinned chaos reproducers as regression tests.

Every ``tests/data/chaos/*.json`` file is a shrunk failing schedule from a
past chaos run (seed + schedule + harness config).  The fixed pipeline
must replay each one clean; the pins keep the bugs the testkit found from
coming back.  One pin doubles as the shrinker's teeth-check: replayed with
a deliberately broken RetryStage it must still fail.
"""

from pathlib import Path

import pytest

from repro.testkit import load_reproducer, replay_reproducer
from repro.testkit.bugs import silent_drop_stages

CHAOS_DIR = Path(__file__).parent / "data" / "chaos"
PINNED = sorted(CHAOS_DIR.glob("*.json"))


def test_pins_exist():
    assert len(PINNED) >= 2


@pytest.mark.parametrize("path", PINNED, ids=lambda p: p.stem)
def test_pinned_reproducer_replays_clean(path):
    report = replay_reproducer(path)
    assert report.ok, (
        f"{path.name} regressed: {report.oracle.summary()}"
    )


def test_pins_record_their_original_violations():
    for path in PINNED:
        reproducer = load_reproducer(path)
        assert reproducer.violations, f"{path.name} lost its history"
        assert reproducer.note


def test_fallback_dup_pin_still_exercises_dedup_path():
    """The dialog pin is only worth keeping while the blocked-ack email
    fallback actually produces duplicate copies for the guard to drop."""
    report = replay_reproducer(CHAOS_DIR / "unknown_dialog_fallback_dup.json")
    assert report.outcome_counts.get("duplicate_incoming", 0) >= 1


def test_outage_pin_still_has_teeth():
    """Replayed against the planted silent-drop bug, the pinned schedule
    must still trip the oracle — otherwise it no longer guards anything."""
    report = replay_reproducer(
        CHAOS_DIR / "total_outage_pair.json", stage_factory=silent_drop_stages
    )
    assert not report.ok


def test_failover_storm_pin_still_exercises_promotion_path():
    """The storm pin is only worth keeping while it actually drives a
    failover per tenant (primary crash -> standby promotion under
    fencing) and comes back clean on the real pair."""
    report = replay_reproducer(CHAOS_DIR / "failover_storm_fenced.json")
    assert report.ok, report.summary()
    assert report.promotions == {"user0": 1, "user1": 1}


def test_failover_storm_pin_still_has_teeth():
    report = replay_reproducer(
        CHAOS_DIR / "failover_storm_fenced.json",
        stage_factory=silent_drop_stages,
    )
    assert not report.ok


def test_adversarial_pin_still_exercises_stabilizing_defenses():
    """The adversarial pin is only worth keeping while its pulses actually
    make the stabilizing transport NACK corrupt frames and drop duplicate
    copies — a clean replay that never fired the defenses guards nothing."""
    report = replay_reproducer(CHAOS_DIR / "adversarial_ship_link_naive.json")
    assert report.ok, report.summary()
    assert report.oracle.info["corrupt_rejected"] >= 1
    assert report.oracle.info["duplicate_dropped"] >= 1
    assert report.oracle.info["transport_resends"] >= 1


def test_adversarial_pin_still_has_teeth_against_naive_transport():
    """Replayed with the naive transport instead of the stabilizing one,
    the same two pulses must still corrupt the standby log and double-apply
    records — the ablation direction E14 measures."""
    report = replay_reproducer(
        CHAOS_DIR / "adversarial_ship_link_naive.json",
        overrides={"transport": "naive"},
    )
    assert not report.ok
    violated = {v.invariant for v in report.oracle.violations}
    assert {"no_corrupt_accepted", "stabilized_exactly_once"} <= violated
