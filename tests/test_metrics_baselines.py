"""Unit tests for metrics helpers and baseline delivery strategies."""

import math

import pytest

from repro.baselines import BlanketRedundantDelivery, EmailOnlyDelivery
from repro.core import Alert, AlertSeverity
from repro.metrics import LatencyCollector, format_table, summarize
from repro.net import ChannelType, LatencyModel
from repro.world import SimbaWorld, WorldConfig

FIXED = LatencyModel(median=10.0, sigma=0.0, low=0.0, high=100.0)


class TestStats:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_summarize_empty_gives_nans(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_percentiles_ordered(self):
        summary = summarize(list(range(1000)))
        assert summary.median <= summary.p90 <= summary.p95 <= summary.maximum

    def test_row_renders(self):
        row = summarize([1.0]).row("label")
        assert "label" in row and "n=1" in row


class TestCollector:
    def test_record_and_summary(self):
        collector = LatencyCollector()
        collector.record("im", 1.0)
        collector.record("im", 3.0)
        collector.extend("email", [10.0, 20.0])
        assert collector.summary("im").mean == 2.0
        assert collector.samples("email") == [10.0, 20.0]
        assert collector.labels() == ["email", "im"]

    def test_report_contains_all_labels(self):
        collector = LatencyCollector()
        collector.record("a", 1.0)
        collector.record("b", 2.0)
        report = collector.report()
        assert "a" in report and "b" in report

    def test_unknown_label_empty_summary(self):
        assert LatencyCollector().summary("ghost").count == 0


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"], [["x", 1.5], ["long-name", 20]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.50" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        table = format_table(["a"], [])
        assert "a" in table


def make_alert(env, severity=AlertSeverity.ROUTINE):
    return Alert(
        source="bench",
        keyword="News",
        subject="subject",
        body="body",
        created_at=env.now,
        severity=severity,
    )


class TestBaselines:
    def _world(self):
        return SimbaWorld(
            WorldConfig(
                seed=1,
                email_latency=FIXED,
                email_loss=0.0,
                sms_latency=FIXED,
                sms_loss=0.0,
            )
        )

    def test_email_only_sends_one_message(self):
        world = self._world()
        user = world.create_user("u")
        strategy = EmailOnlyDelivery(world.env, world.email)
        strategy.deliver(make_alert(world.env), user)
        world.run(until=60.0)
        assert strategy.messages_sent == 1
        assert len(user.receipts) == 1
        assert user.receipts[0].channel is ChannelType.EMAIL

    def test_redundant_sends_four_messages(self):
        world = self._world()
        user = world.create_user("u")
        strategy = BlanketRedundantDelivery(
            world.env, world.email, world.sms
        )
        assert strategy.name == "redundant-2em+2sms"
        strategy.deliver(make_alert(world.env), user)
        world.run(until=60.0)
        assert strategy.messages_sent == 4
        assert len(user.receipts) == 4
        # All four are the same alert: three arrive as duplicates.
        assert user.duplicates_discarded() == 3
        assert len(user.unique_alerts_received()) == 1

    def test_redundant_configurable_counts(self):
        world = self._world()
        user = world.create_user("u")
        strategy = BlanketRedundantDelivery(
            world.env, world.email, world.sms, n_email=1, n_sms=3
        )
        strategy.deliver(make_alert(world.env), user)
        world.run(until=60.0)
        assert strategy.messages_sent == 4
        assert world.sms.stats.submitted == 3

    def test_redundant_rejects_zero_messages(self):
        world = self._world()
        with pytest.raises(ValueError):
            BlanketRedundantDelivery(
                world.env, world.email, world.sms, n_email=0, n_sms=0
            )

    def test_redundant_survives_channel_outage(self):
        world = self._world()
        user = world.create_user("u")
        world.sms.set_available(False)
        strategy = BlanketRedundantDelivery(world.env, world.email, world.sms)
        strategy.deliver(make_alert(world.env), user)
        world.run(until=60.0)
        # SMS submissions failed silently; the emails still went out.
        assert strategy.messages_sent == 2
        assert len(user.receipts) == 2
