"""Seed-sensitivity smoke: traced and untraced sweeps must agree.

One pinned seed proves nothing about perturbation — an instrumentation
site that draws randomness or schedules an event may only diverge under
some interleavings.  This sweep runs 10 generated chaos trials twice,
with and without tracing, under a 2-worker pool (``REPRO_SWEEP_JOBS=2``,
the CI shape), and asserts per-trial:

- the verdicts agree (``ok`` bit and journal violation set), and
- the fingerprints are identical (tracing is pure observation), and
- the trace oracle itself is clean on every healthy trial.
"""

import pytest

from repro.sim.clock import MINUTE
from repro.testkit import chaos_sweep

SEED = 424
TRIALS = 10


@pytest.fixture(scope="module")
def sweeps():
    import os
    from unittest import mock

    kwargs = dict(
        seed=SEED,
        trials=TRIALS,
        n_users=2,
        duration=45 * MINUTE,
        settle=15 * MINUTE,
        shrink_failures=False,
        jobs=None,  # resolve from the environment, as CI does
    )
    with mock.patch.dict(os.environ, {"REPRO_SWEEP_JOBS": "2"}):
        traced = chaos_sweep(trace=True, **kwargs)
        untraced = chaos_sweep(trace=False, **kwargs)
    return traced, untraced


class TestSeedSmoke:
    def test_verdicts_agree_across_seeds(self, sweeps):
        traced, untraced = sweeps
        assert len(traced.trials) == TRIALS
        for with_trace, without in zip(traced.trials, untraced.trials):
            journal_only = [
                v for v in with_trace.violations
                if not v.startswith("trace_")
            ]
            assert with_trace.ok == without.ok, (
                f"trial {with_trace.index}: tracing changed the verdict"
            )
            assert journal_only == without.violations, (
                f"trial {with_trace.index}: tracing changed the journal "
                "oracle's findings"
            )

    def test_fingerprints_identical(self, sweeps):
        traced, untraced = sweeps
        for with_trace, without in zip(traced.trials, untraced.trials):
            assert with_trace.fingerprint == without.fingerprint, (
                f"trial {with_trace.index}: tracing perturbed the run"
            )

    def test_trace_oracle_clean_on_the_sweep(self, sweeps):
        """ISSUE acceptance: the trace-backed invariants hold across the
        sweep — a trace violation on a journal-clean trial would mean the
        instrumentation (or an invariant) is wrong."""
        traced, _ = sweeps
        for trial in traced.trials:
            trace_violations = [
                v for v in trial.violations if v.startswith("trace_")
            ]
            assert trace_violations == [], (
                f"trial {trial.index}: {trace_violations}"
            )

    def test_traced_trials_carry_their_sink(self, sweeps):
        """The sink survives the worker-pool round trip (pickled without
        its environment) and is genuinely populated."""
        traced, untraced = sweeps
        for trial in traced.trials:
            assert trial.report.trace is not None
            assert trial.report.trace.env is None
            assert trial.report.trace.span_count() > 0
        for trial in untraced.trials:
            assert trial.report.trace is None
