"""Capstone integration: a day in the life of one SIMBA user.

All five §2 source types run concurrently against one MyAlertBuddy under an
MDC, while the user commutes (presence changes), a fault fires, and the
nightly rejuvenation rolls past 23:30.  One test, the whole Figure-1 →
Figure-2 architecture.
"""

import pytest

from repro.aladdin import AladdinHome
from repro.aladdin.sss import SoftStateStore
from repro.net import ChannelType, LatencyModel
from repro.sim import DAY, HOUR, MINUTE
from repro.sources.desktop import DesktopAssistant
from repro.sources.portal import LegacyEmailAlertService
from repro.sources.proxy import AlertProxy, ProxyRule
from repro.sources.webserver import SimulatedWebSite
from repro.sources.webstore import CommunityStore
from repro.wish import (
    FloorPlan,
    LocationTrigger,
    PathLossModel,
    Region,
    WISHAlertService,
    WISHClient,
    WISHServer,
)
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
EMAIL_FAST = LatencyModel(median=20.0, sigma=0.5, low=2.0, high=600.0)


@pytest.fixture(scope="module")
def full_day():
    world = SimbaWorld(
        WorldConfig(
            seed=20, im_latency=IM_FIXED, email_latency=EMAIL_FAST,
            email_loss=0.0, sms_loss=0.0,
        )
    )
    alice = world.create_user("alice", present=False)  # asleep at t=0
    buddy = world.create_buddy(alice)
    buddy.register_user_endpoint(alice)
    buddy.subscribe("Investment", alice, "normal",
                    keywords=["Stocks", "Financial news"])
    buddy.subscribe("Home Emergency", alice, "critical",
                    keywords=["Sensor ON"])
    buddy.subscribe("Home Routine", alice, "digest",
                    keywords=["Sensor OFF", "Security Armed",
                              "Security Disarmed", "Sensor Broken"])
    buddy.subscribe("Friends", alice, "digest",
                    keywords=["family-circle update"])
    buddy.subscribe("Whereabouts", alice, "normal",
                    keywords=["Location enter_building",
                              "Location leave_building",
                              "Location move_region"])
    buddy.subscribe("Work Urgent", alice, "critical",
                    keywords=["Important email", "Reminder"])
    mdc = world.start_mdc(buddy)

    for source_name in ("yahoo", "proxy", "family-circle", "aladdin",
                        "wish", "assistant", "oldportal"):
        pass  # classifier acceptance below, per concrete source

    # 1. Portal (SIMBA-integrated).
    portal = world.create_source("yahoo")
    portal.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("yahoo")

    # 2. Legacy email-only service with subject keywords.
    from repro.core import ExtractionRule

    legacy = LegacyEmailAlertService(world.env, "oldportal", world.email)
    legacy.add_target(buddy.email_address)
    buddy.config.classifier.accept_source(
        "oldportal",
        ExtractionRule(source="oldportal", field="subject",
                       prefix="[", suffix="]"),
    )

    # 3. Information alert proxy over a news page.
    proxy = AlertProxy(world.env, "proxy",
                       world.create_source_endpoint("proxy"))
    proxy.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("proxy")
    site = SimulatedWebSite(world.env, "wsj.com")
    site.publish("/markets", "<q>open 10500</q>")
    proxy.add_rule(ProxyRule(site, "/markets", 60.0, "<q>", "</q>",
                             "Financial news"))
    proxy.start()

    # 4. Community web store.
    community = CommunityStore(world.env, "family-circle",
                               world.create_source_endpoint("community"))
    community.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("family-circle")
    community.add_member("grandma")
    community.create_album("grandma", "Holiday")

    # 5. Aladdin home.
    home = AladdinHome(world.env, world.rngs,
                       world.create_source_endpoint("aladdin"))
    home.gateway.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("aladdin")
    water = home.add_sensor("Basement Water", critical=True,
                            refresh_period=60.0)

    # 6. WISH tracking of her kid's laptop at school.
    plan = FloorPlan("school")
    plan.add_region(Region("classrooms", 0, 0, 30, 30))
    plan.add_ap("ap1", (15, 15))
    radio = PathLossModel(shadowing_sigma_db=2.0)
    sss = SoftStateStore(world.env, "wish-sss")
    server = WISHServer(world.env, plan, radio, sss,
                        rng=world.rngs.stream("wish-server"))
    kid = WISHClient(world.env, "kid", plan, radio, server,
                     rng=world.rngs.stream("wish-kid"), position=None)
    wish = WISHAlertService(world.env, "wish",
                            world.create_source_endpoint("wish"), server)
    buddy.config.classifier.accept_source("wish")
    wish.authorize("kid", "alice")
    wish.request_tracking("alice", "kid", {LocationTrigger.ENTER_BUILDING},
                          buddy.source_facing_book())
    kid.start()

    # 7. Desktop assistant at the office.
    assistant = DesktopAssistant(world.env, "assistant",
                                 world.create_source_endpoint("assistant"),
                                 idle_threshold=15 * MINUTE)
    assistant.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("assistant")

    # ---- the day's script ----
    def script(env):
        # 07:00 she wakes up, comes online at home.
        yield env.timeout(7 * HOUR - env.now)
        alice.set_present(True)
        # 08:00 the kid arrives at school (enters the building).
        yield env.timeout(HOUR)
        kid.set_position((15.0, 15.0))
        # 08:30 commute: offline.
        yield env.timeout(30 * MINUTE)
        alice.set_present(False)
        # 09:00 at the office desk.
        yield env.timeout(30 * MINUTE)
        alice.set_present(True)
        assistant.record_activity()
        # 09:30 market opens: portal + legacy + page change.
        yield env.timeout(30 * MINUTE)
        portal.emit("Stocks", "MSFT up 3%", "earnings")
        legacy.publish("Financial news", "Fed statement", "details")
        site.publish("/markets", "<q>rally 10900</q>")
        # 11:00 grandma posts a photo.
        yield env.timeout(90 * MINUTE)
        community.add_photo("grandma", "Holiday", "beach.jpg")
        # 12:30 she leaves for lunch; an urgent mail pops while away.
        yield env.timeout(90 * MINUTE)
        alice.set_present(False)
        yield env.timeout(20 * MINUTE)
        assistant.reminder_popped("budget review at 14:00")
        # 13:30 back at desk.
        yield env.timeout(50 * MINUTE)
        alice.set_present(True)
        assistant.record_activity()
        # 15:00 a fault: the IM client hangs; sanity checks must fix it.
        yield env.timeout(90 * MINUTE)
        buddy.endpoint.im_client.hang()
        # 17:45 home; 18:00 the basement floods (critical!).
        yield env.timeout(3 * HOUR)
        water.trip()
        # 22:00 she goes to sleep (offline); nightly rejuvenation at 23:30.
        yield env.timeout(4 * HOUR)
        alice.set_present(False)

    world.env.process(script(world.env))
    world.run(until=DAY + 2 * HOUR)
    return world, alice, buddy, mdc, {
        "portal": portal, "legacy": legacy, "proxy": proxy,
        "community": community, "home": home, "wish": wish,
        "assistant": assistant,
    }


class TestFullDay:
    def test_every_source_type_delivered(self, full_day):
        world, alice, buddy, mdc, sources = full_day
        routed = {
            event.detail for event in buddy.journal.events
            if event.kind == "routed"
        }
        assert routed  # something was routed
        received_ids = alice.unique_alerts_received()
        # One alert from each of the seven producers reached alice.
        for name, source in sources.items():
            emitted = getattr(source, "emitted", None)
            if name == "home":
                emitted = source.gateway.emitted
            assert emitted, f"{name} emitted nothing"
            assert any(a.alert_id in received_ids for a in emitted), (
                f"no alert from {name} reached the user"
            )

    def test_critical_flood_alert_timely(self, full_day):
        world, alice, buddy, mdc, sources = full_day
        flood = next(
            a for a in sources["home"].gateway.emitted
            if a.keyword == "Sensor ON"
        )
        (receipt,) = [
            r for r in alice.receipts
            if r.alert_id == flood.alert_id and not r.duplicate
        ]
        assert receipt.channel is ChannelType.IM
        assert receipt.latency < 10.0

    def test_hang_repaired_by_sanity_checks(self, full_day):
        world, alice, buddy, mdc, sources = full_day
        assert buddy.endpoint.im_manager.stats.restarts >= 1
        assert world.im.presence.is_online(buddy.im_address)

    def test_nightly_rejuvenation_happened(self, full_day):
        world, alice, buddy, mdc, sources = full_day
        from repro.core.rejuvenation import RejuvenationKind

        kinds = [r.kind for r in buddy.journal.rejuvenations]
        assert RejuvenationKind.NIGHTLY in kinds

    def test_no_acknowledged_alert_lost(self, full_day):
        world, alice, buddy, mdc, sources = full_day
        acked = set()
        for name, source in sources.items():
            outcomes = getattr(source, "outcomes", [])
            if name == "home":
                outcomes = source.gateway.outcomes
            for outcome in outcomes:
                if outcome.delivered and outcome.delivered_via == 0:
                    acked.add(outcome.correlation)
        # Every IM-acknowledged alert either reached alice or was
        # deliberately routed to a digest (email) that may still be unread
        # — but none may be *unknown* to the journal.
        journal_ids = {
            e.alert_id for e in buddy.journal.events if e.alert_id
        }
        assert acked <= journal_ids

    def test_recovery_report_renders(self, full_day):
        from repro.metrics import recovery_report

        world, alice, buddy, mdc, sources = full_day
        report = recovery_report(buddy, mdc=mdc, user=alice)
        assert "IM simple re-logons" in report
        assert "alerts routed" in report
