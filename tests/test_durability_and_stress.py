"""Durability across simulated reboots, burst stress, and ordering
properties under concurrency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import ChannelType, LatencyModel
from repro.sim import Environment, MINUTE, Store
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)


def make_world(seed=1):
    return SimbaWorld(
        WorldConfig(seed=seed, im_latency=IM_FIXED, email_loss=0.0,
                    sms_loss=0.0)
    )


class TestFileBackedDurability:
    def test_unprocessed_alerts_survive_a_machine_death(self, tmp_path):
        """World 1: alerts are logged+acked, then the whole world ends
        (power never returns).  World 2 boots from the same log file and
        must deliver what world 1 acknowledged but never routed."""
        log_path = tmp_path / "mab.log"

        # ---- world 1: receive, ack, die before processing ----
        world1 = make_world(seed=1)
        user1 = world1.create_user("alice", present=True)
        deployment1 = world1.create_buddy(user1, log_path=log_path)
        deployment1.register_user_endpoint(user1)
        deployment1.subscribe("News", user1, "normal", keywords=["News"])
        buddy1 = deployment1.launch()
        source1 = world1.create_source("portal")
        source1.add_target(deployment1.source_facing_book())
        deployment1.config.classifier.accept_source("portal")

        def scenario(env):
            source1.emit("News", "pre-crash headline", "body")
            yield env.timeout(1.45)  # logged (t≈0.9) + acked, not yet routed
            buddy1.crash()

        world1.env.process(scenario(world1.env))
        world1.run(until=MINUTE)
        assert user1.receipts == []  # never delivered in world 1
        (outcome,) = source1.outcomes
        assert outcome.delivered  # ...but the source got its ack

        # ---- world 2: fresh machine, same disk ----
        world2 = make_world(seed=2)
        user2 = world2.create_user("alice", present=True)
        deployment2 = world2.create_buddy(user2, log_path=log_path)
        deployment2.register_user_endpoint(user2)
        deployment2.subscribe("News", user2, "normal", keywords=["News"])
        deployment2.config.classifier.accept_source("portal")
        assert len(deployment2.log.unprocessed()) == 1
        deployment2.launch()
        world2.run(until=MINUTE)
        assert len(user2.receipts) == 1
        assert deployment2.log.unprocessed() == []
        assert deployment2.journal.count("recovery_replay") == 1

    def test_processed_entries_not_replayed_after_reload(self, tmp_path):
        log_path = tmp_path / "mab.log"
        world1 = make_world(seed=1)
        user1 = world1.create_user("alice", present=True)
        deployment1 = world1.create_buddy(user1, log_path=log_path)
        deployment1.register_user_endpoint(user1)
        deployment1.subscribe("News", user1, "normal", keywords=["News"])
        deployment1.launch()
        source1 = world1.create_source("portal")
        source1.add_target(deployment1.source_facing_book())
        deployment1.config.classifier.accept_source("portal")
        source1.emit("News", "h", "b")
        world1.run(until=MINUTE)
        assert len(user1.receipts) == 1

        world2 = make_world(seed=2)
        user2 = world2.create_user("alice", present=True)
        deployment2 = world2.create_buddy(user2, log_path=log_path)
        deployment2.register_user_endpoint(user2)
        deployment2.subscribe("News", user2, "normal", keywords=["News"])
        deployment2.launch()
        world2.run(until=MINUTE)
        assert user2.receipts == []
        assert deployment2.journal.count("recovery_replay") == 0


class TestBurstStress:
    def test_hundred_alert_burst_all_delivered_in_order(self):
        world = make_world(seed=3)
        user = world.create_user("alice", present=True, ack_enabled=False)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        # digest mode = email only?  No: use a fire-and-forget IM mode so
        # routing does not wait for user acks between alerts.
        from repro.core import Action, CommunicationBlock, DeliveryMode

        fast_mode = DeliveryMode(
            "blast", [CommunicationBlock([Action("IM")], require_ack=True,
                                         ack_timeout=5.0),
                      CommunicationBlock([Action("Email")])],
        )
        deployment.register_user_endpoint  # (already called)
        deployment.config.subscriptions.register_mode("alice", fast_mode)
        deployment.subscribe("News", user, "blast", keywords=["News"])
        deployment.launch()
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        for index in range(100):
            source.emit("News", f"burst {index}", "b")
        world.run(until=2 * 3600)
        # A same-instant burst of 100 overwhelms the 0.5 s/alert log-before-
        # ack pipeline, so some sources time out and fall back to email —
        # copies race and arrive out of order.  The guarantee that must
        # survive is exactly-once delivery of every alert.
        received = {r.alert_id for r in user.receipts if not r.duplicate}
        assert received == {a.alert_id for a in source.emitted}
        assert len(received) == 100

    def test_paced_stream_stays_in_fifo_order(self):
        world = make_world(seed=5)
        user = world.create_user("alice", present=True, ack_enabled=False)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        deployment.launch()
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        def emitter(env):
            for index in range(40):
                source.emit("News", f"h{index}", "b")
                yield env.timeout(45.0)  # slower than MAB's service time

        world.env.process(emitter(world.env))
        world.run(until=3600)
        received = [r for r in user.receipts if not r.duplicate]
        assert [r.alert_id for r in received] == [
            a.alert_id for a in source.emitted
        ]

    def test_burst_does_not_leak_ack_entries(self):
        world = make_world(seed=4)
        user = world.create_user("alice", present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        deployment.launch()
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")
        for index in range(30):
            source.emit("News", f"h{index}", "b")
        world.run(until=3600)
        assert len(source.endpoint.engine.acks) == 0
        assert len(deployment.endpoint.engine.acks) == 0


class TestStoreOrderingProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        items=st.lists(st.integers(), min_size=1, max_size=30),
        consumer_delays=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=5
        ),
    )
    def test_fifo_preserved_across_arbitrary_consumers(
        self, items, consumer_delays
    ):
        """However many consumers with whatever think times, items are
        handed out in FIFO order."""
        env = Environment()
        store = Store(env)
        taken = []

        def producer(env):
            for item in items:
                yield store.put(item)
                yield env.timeout(0.5)

        def consumer(env, delay):
            while True:
                item = yield store.get()
                taken.append(item)
                yield env.timeout(delay)

        env.process(producer(env))
        for delay in consumer_delays:
            env.process(consumer(env, delay))
        env.run(until=1000.0)
        assert taken == items
