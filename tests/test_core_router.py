"""Delivery-engine semantics: blocks, acks, fallback.

These tests build a sender :class:`SimbaEndpoint` (so ack routing works end
to end) and a hand-controlled recipient on the IM service.
"""

import pytest

from repro.clients import Screen
from repro.core import (
    Action,
    AddressBook,
    CommunicationBlock,
    DeliveryMode,
    SimbaEndpoint,
    UserAddress,
)
from repro.core.endpoint import make_ack_body, parse_ack_body
from repro.core.router import BlockStatus
from repro.net import ChannelType, EmailService, IMService, LatencyModel, SMSGateway
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
SLOW = LatencyModel(median=30.0, sigma=0.0, low=0.0, high=100.0)


class Rig:
    def __init__(self, seed=3):
        self.env = Environment()
        rngs = RngRegistry(seed=seed)
        self.im = IMService(self.env, rngs.stream("im"), latency=FAST)
        self.email = EmailService(
            self.env, rngs.stream("email"), latency=SLOW, loss_probability=0.0
        )
        self.sms = SMSGateway(
            self.env, rngs.stream("sms"), latency=SLOW, loss_probability=0.0
        )
        self.screen = Screen(self.env)
        self.sender = SimbaEndpoint(
            self.env,
            name="source",
            screen=self.screen,
            im_service=self.im,
            email_service=self.email,
            sms_gateway=self.sms,
            im_address="source@im",
            email_address="source@mail",
            auto_ack=False,
        )
        self.sender.start()
        self.im.register_account("target@im")

    def book(self, enabled_sms=True):
        book = AddressBook(owner="target")
        book.add(UserAddress("IM", ChannelType.IM, "target@im"))
        book.add(
            UserAddress("SMS", ChannelType.SMS, "+1999", enabled=enabled_sms)
        )
        book.add(UserAddress("Email", ChannelType.EMAIL, "target@mail"))
        return book

    def auto_acker(self, delay=0.2):
        """Log target@im in and ack every incoming IM after ``delay``."""
        session = self.im.login("target@im")

        def loop(env):
            while session.active:
                message = yield session.receive()
                yield env.timeout(delay)
                session.send(message.sender, make_ack_body(message.seq))

        self.env.process(loop(self.env))
        return session

    def execute(self, mode, book):
        proc = self.env.process(
            self.sender.engine.execute(mode, book, "subj", "body", "corr-1")
        )
        self.env.run(until=proc)
        return proc.value


def im_ack_mode(timeout=10.0, backup=("SMS", "Email")):
    blocks = [
        CommunicationBlock([Action("IM")], require_ack=True, ack_timeout=timeout)
    ]
    if backup:
        blocks.append(CommunicationBlock([Action(a) for a in backup]))
    return DeliveryMode("test-mode", blocks)


class TestAckProtocol:
    def test_ack_body_roundtrip(self):
        assert parse_ack_body(make_ack_body(42)) == 42
        assert parse_ack_body("hello") is None
        assert parse_ack_body("SIMBA-ACK notanumber") is None


class TestBlockSemantics:
    def test_ack_block_succeeds_on_ack(self):
        rig = Rig()
        rig.auto_acker(delay=0.2)
        outcome = rig.execute(im_ack_mode(), rig.book())
        assert outcome.delivered
        assert outcome.delivered_via == 0
        assert outcome.messages_sent == 1
        assert outcome.blocks[0].status is BlockStatus.SUCCESS
        assert outcome.blocks[0].acked_by == "IM"
        # IM one-way 0.4 + reaction 0.2 + ack one-way 0.4 = 1.0.
        assert outcome.elapsed == pytest.approx(1.0, abs=0.01)

    def test_ack_timeout_falls_back_to_next_block(self):
        rig = Rig()
        rig.im.login("target@im")  # online but never acks
        outcome = rig.execute(im_ack_mode(timeout=5.0), rig.book())
        assert outcome.delivered  # via best-effort backup block
        assert outcome.delivered_via == 1
        assert outcome.blocks[0].status is BlockStatus.ACK_TIMEOUT
        assert outcome.blocks[1].status is BlockStatus.SUCCESS
        assert set(outcome.blocks[1].submitted) == {"SMS", "Email"}
        assert outcome.messages_sent == 3

    def test_offline_recipient_fails_submission_and_falls_back(self):
        rig = Rig()  # target@im never logs in
        outcome = rig.execute(im_ack_mode(timeout=5.0), rig.book())
        assert outcome.blocks[0].status is BlockStatus.ALL_SUBMISSIONS_FAILED
        assert "IM" in outcome.blocks[0].errors
        assert outcome.delivered_via == 1
        # Fallback is immediate: no ack timeout burned on a failed submit.
        assert outcome.elapsed < 1.0

    def test_disabled_address_skips_action(self):
        # §3.3: disabling the SMS address makes blocks with SMS actions fail
        # automatically and fall back.
        rig = Rig()
        mode = DeliveryMode(
            "sms-first",
            [
                CommunicationBlock([Action("SMS")]),
                CommunicationBlock([Action("Email")]),
            ],
        )
        outcome = rig.execute(mode, rig.book(enabled_sms=False))
        assert outcome.blocks[0].status is BlockStatus.NO_ENABLED_ADDRESSES
        assert outcome.blocks[0].skipped_disabled == ["SMS"]
        assert outcome.delivered_via == 1

    def test_all_blocks_fail_delivery_fails(self):
        rig = Rig()
        rig.email.set_available(False)
        mode = DeliveryMode(
            "doomed",
            [
                CommunicationBlock([Action("IM")], require_ack=True, ack_timeout=2.0),
                CommunicationBlock([Action("Email")]),
            ],
        )
        outcome = rig.execute(mode, rig.book())
        assert not outcome.delivered
        assert outcome.delivered_via is None
        assert len(outcome.blocks) == 2

    def test_unknown_address_recorded_not_fatal(self):
        rig = Rig()
        book = AddressBook(owner="target")
        book.add(UserAddress("Email", ChannelType.EMAIL, "target@mail"))
        mode = DeliveryMode(
            "m",
            [
                CommunicationBlock([Action("Pager")]),
                CommunicationBlock([Action("Email")]),
            ],
        )
        outcome = rig.execute(mode, book)
        assert outcome.blocks[0].errors == {"Pager": "unknown address"}
        assert outcome.delivered_via == 1

    def test_best_effort_block_succeeds_on_submission(self):
        # Email takes 30 s to deliver, but the block succeeds at submission.
        rig = Rig()
        mode = DeliveryMode("m", [CommunicationBlock([Action("Email")])])
        outcome = rig.execute(mode, rig.book())
        assert outcome.delivered
        assert outcome.elapsed == 0.0

    def test_ack_block_on_non_im_address_cannot_confirm(self):
        rig = Rig()
        mode = DeliveryMode(
            "m",
            [
                CommunicationBlock([Action("Email")], require_ack=True,
                                   ack_timeout=5.0),
                CommunicationBlock([Action("SMS")]),
            ],
        )
        outcome = rig.execute(mode, rig.book())
        assert outcome.blocks[0].status is BlockStatus.ACK_TIMEOUT
        assert outcome.delivered_via == 1

    def test_concurrent_actions_within_block(self):
        rig = Rig()
        mode = DeliveryMode(
            "m", [CommunicationBlock([Action("SMS"), Action("Email")])]
        )
        outcome = rig.execute(mode, rig.book())
        assert outcome.messages_sent == 2
        rig.env.run(until=40.0)
        assert rig.sms.stats.delivered == 1
        assert rig.email.stats.delivered == 1

    def test_late_ack_after_timeout_is_ignored(self):
        rig = Rig()
        rig.auto_acker(delay=20.0)  # acks long after the 3 s timeout
        outcome = rig.execute(im_ack_mode(timeout=3.0), rig.book())
        assert outcome.blocks[0].status is BlockStatus.ACK_TIMEOUT
        # Run past the late ack; nothing blows up and no pending entries leak.
        rig.env.run(until=60.0)
        assert len(rig.sender.engine.acks) == 0

    def test_history_records_every_outcome(self):
        rig = Rig()
        rig.auto_acker()
        rig.execute(im_ack_mode(), rig.book())
        rig.execute(im_ack_mode(), rig.book())
        assert len(rig.sender.engine.history) == 2


class TestEngineDeterminism:
    def test_same_seed_same_outcome_timings(self):
        def run_once():
            rig = Rig(seed=11)
            rig.auto_acker(delay=0.3)
            outcome = rig.execute(im_ack_mode(), rig.book())
            return outcome.elapsed, outcome.messages_sent

        assert run_once() == run_once()


class TestOutcomeProperties:
    def test_elapsed_and_delivered_via(self):
        rig = Rig()
        rig.auto_acker(delay=0.2)
        outcome = rig.execute(im_ack_mode(), rig.book())
        assert outcome.elapsed == outcome.finished_at - outcome.started_at
        assert outcome.delivered_via == 0
        assert outcome.blocks[0].succeeded

    def test_failed_outcome_properties(self):
        rig = Rig()
        rig.email.set_available(False)
        rig.sms.set_available(False)
        mode = DeliveryMode(
            "doomed",
            [CommunicationBlock([Action("SMS"), Action("Email")])],
        )
        outcome = rig.execute(mode, rig.book())
        assert not outcome.delivered
        assert outcome.delivered_via is None
        assert not outcome.blocks[0].succeeded
        assert set(outcome.blocks[0].errors) == {"SMS", "Email"}


class TestAckTableClassification:
    """The counters the chaos oracle's no-duplicate-ACKs invariant reads."""

    def _table(self):
        from repro.core.router import AckTable

        return AckTable(Environment())

    def test_resolve_satisfies_waiting_expectation(self):
        table = self._table()
        table.expect("peer@im", 1)
        assert table.resolve("peer@im", 1) is True
        assert table.resolved_count == 1
        assert len(table) == 0

    def test_second_ack_for_same_conversation_is_duplicate(self):
        table = self._table()
        table.expect("peer@im", 1)
        table.resolve("peer@im", 1)
        assert table.resolve("peer@im", 1) is False
        assert table.duplicate_count == 1

    def test_ack_after_cancel_is_late_then_duplicate(self):
        table = self._table()
        table.expect("peer@im", 4)
        table.cancel("peer@im", 4)  # the block timed out and moved on
        assert table.resolve("peer@im", 4) is False
        assert table.late_count == 1
        assert table.resolve("peer@im", 4) is False
        assert table.duplicate_count == 1

    def test_unsolicited_ack_counted_not_asserted(self):
        table = self._table()
        assert table.resolve("stranger@im", 9) is False
        assert table.unsolicited_count == 1
        assert table.duplicate_count == 0

    def test_seq_reuse_after_relogin_is_a_fresh_conversation(self):
        """IM seqs are per-session: re-expecting a key clears stale state."""
        table = self._table()
        table.expect("peer@im", 1)
        table.resolve("peer@im", 1)
        # Client relogs in; its session seq counter restarts at 1.
        table.expect("peer@im", 1)
        assert table.resolve("peer@im", 1) is True
        assert table.resolved_count == 2
        assert table.duplicate_count == 0


class TestGuardTimerHygiene:
    """Regression: a resolved ack race must not leave its guard timer live.

    Before timer cancellation existed, every acked block left its
    ``ack_timeout`` Timeout sitting in the heap until the deadline — at
    farm scale, one dead timer per alert.  The race loser must now be a
    tombstone the moment the block resolves.
    """

    def test_ack_win_leaves_no_live_guard_timer(self):
        rig = Rig()
        rig.auto_acker(delay=0.2)
        outcome = rig.execute(im_ack_mode(timeout=600.0), rig.book())
        assert outcome.delivered
        assert outcome.delivered_via == 0
        # The 600 s guard lost the race at t~1.0; nothing live may remain
        # at its deadline (rig background loops run on much shorter timers).
        live_times = [e[0] for e in rig.env.scheduler.live_entries()]
        assert all(t < 600.0 for t in live_times), live_times

    def test_many_acked_blocks_keep_queue_depth_bounded(self):
        rig = Rig()
        rig.auto_acker(delay=0.1)
        for _ in range(10):
            outcome = rig.execute(im_ack_mode(timeout=900.0), rig.book())
            assert outcome.delivered_via == 0
        # Ten resolved races: every dead guard (deadline >= 900 s) must be a
        # tombstone, and compaction must keep the dead count bounded instead
        # of letting one corpse per alert accumulate.
        live_guards = [
            e for e in rig.env.scheduler.live_entries() if e[0] >= 900.0
        ]
        assert live_guards == []
        assert rig.env.dead_entries <= rig.env.queue_depth + 1
