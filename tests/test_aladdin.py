"""Unit + integration tests for the Aladdin home-networking substrate."""

import pytest

from repro.aladdin import (
    AladdinHome,
    HomeNetwork,
    ReplicationGroup,
    SensorState,
    SoftStateStore,
    Transceiver,
)
from repro.aladdin.sss import (
    SSSEventKind,
    UnknownType,
    UnknownVariable,
)
from repro.errors import ConfigurationError
from repro.net import LatencyModel
from repro.sim import Environment, MINUTE, RngRegistry

FAST_NET = LatencyModel(median=0.1, sigma=0.0, low=0.0, high=1.0)


class TestSoftStateStore:
    def _store(self):
        env = Environment()
        store = SoftStateStore(env, "pc1")
        store.define_type("sensor")
        return env, store

    def test_create_requires_type(self):
        env, store = self._store()
        with pytest.raises(UnknownType):
            store.create("x", "undefined", 0, 10.0, 2)

    def test_create_read_write(self):
        env, store = self._store()
        store.create("water", "sensor", "OFF", 10.0, 2)
        assert store.read("water") == "OFF"
        store.write("water", "ON")
        assert store.read("water") == "ON"

    def test_duplicate_create_rejected(self):
        env, store = self._store()
        store.create("water", "sensor", "OFF", 10.0, 2)
        with pytest.raises(ConfigurationError):
            store.create("water", "sensor", "OFF", 10.0, 2)

    def test_invalid_contract_rejected(self):
        env, store = self._store()
        with pytest.raises(ConfigurationError):
            store.create("x", "sensor", 0, 0.0, 2)
        with pytest.raises(ConfigurationError):
            store.create("x", "sensor", 0, 10.0, -1)

    def test_unknown_variable(self):
        env, store = self._store()
        with pytest.raises(UnknownVariable):
            store.read("ghost")

    def test_change_event_fired_only_on_value_change(self):
        env, store = self._store()
        events = []
        store.subscribe(events.append, type_name="sensor")
        store.create("water", "sensor", "OFF", 10.0, 2)
        store.write("water", "ON")
        store.write("water", "ON")  # refresh, same value
        kinds = [e.kind for e in events]
        assert kinds == [
            SSSEventKind.CREATED,
            SSSEventKind.CHANGED,
            SSSEventKind.REFRESHED,
        ]

    def test_subscription_filters(self):
        env, store = self._store()
        store.define_type("security")
        by_type, by_var = [], []
        store.subscribe(by_type.append, type_name="security")
        store.subscribe(by_var.append, variable="water")
        store.create("water", "sensor", "OFF", 10.0, 2)
        store.create("armed", "security", True, 10.0, 2)
        assert [e.variable for e in by_type] == ["armed"]
        assert [e.variable for e in by_var] == ["water"]

    def test_timeout_after_missed_refreshes(self):
        env, store = self._store()
        events = []
        store.subscribe(events.append)
        store.create("water", "sensor", "OFF", 10.0, 2)

        def refresher(env):
            for _ in range(3):
                yield env.timeout(10.0)
                store.refresh("water")
            # Then stop refreshing: deadline is last_refresh + 10*(2+1)=+30.

        env.process(refresher(env))
        env.run(until=70.0)
        timeout_events = [e for e in events if e.kind is SSSEventKind.TIMED_OUT]
        assert len(timeout_events) == 1
        assert 60.0 <= timeout_events[0].at <= 62.0
        assert store.variable("water").timed_out

    def test_write_revives_timed_out_variable(self):
        env, store = self._store()
        events = []
        store.subscribe(events.append)
        store.create("water", "sensor", "OFF", 1.0, 0)
        env.run(until=5.0)  # deadline passed, no refresh
        assert store.variable("water").timed_out
        store.write("water", "ON")
        assert not store.variable("water").timed_out
        kinds = [e.kind for e in events]
        assert SSSEventKind.REVIVED in kinds


class TestNetworks:
    def test_broadcast_reaches_all_listeners(self):
        env = Environment()
        rngs = RngRegistry(seed=1)
        net = HomeNetwork(env, "pl", FAST_NET, rngs.stream("pl"))
        got_a, got_b = [], []
        net.attach(got_a.append)
        net.attach(got_b.append)
        net.send("signal")
        env.run()
        assert got_a == ["signal"] and got_b == ["signal"]
        assert net.log[0].delivered

    def test_loss(self):
        env = Environment()
        rngs = RngRegistry(seed=1)
        net = HomeNetwork(
            env, "pl", FAST_NET, rngs.stream("pl"), loss_probability=1.0
        )
        got = []
        net.attach(got.append)
        net.send("signal")
        env.run()
        assert got == []
        assert not net.log[0].delivered

    def test_transceiver_bridges_segments(self):
        env = Environment()
        rngs = RngRegistry(seed=1)
        rf = HomeNetwork(env, "rf", FAST_NET, rngs.stream("rf"))
        pl = HomeNetwork(env, "pl", FAST_NET, rngs.stream("pl"))
        Transceiver("x", rf, pl, convert=lambda p: f"pl:{p}")
        got = []
        pl.attach(got.append)
        rf.send("button")
        env.run()
        assert got == ["pl:button"]

    def test_detach(self):
        env = Environment()
        rngs = RngRegistry(seed=1)
        net = HomeNetwork(env, "pl", FAST_NET, rngs.stream("pl"))
        got = []
        net.attach(got.append)
        net.detach(got.append)  # different bound object — harmless
        listener = got.append
        net.attach(listener)
        net.detach(listener)
        net.send("x")
        env.run()
        assert got == []


class TestReplication:
    def _group(self):
        env = Environment()
        rngs = RngRegistry(seed=2)
        net = HomeNetwork(env, "phoneline", FAST_NET, rngs.stream("ph"))
        group = ReplicationGroup(env, net)
        a = SoftStateStore(env, "a")
        b = SoftStateStore(env, "b")
        for store in (a, b):
            store.define_type("sensor")
            group.join(store)
        return env, a, b, group

    def test_create_replicates(self):
        env, a, b, group = self._group()
        a.create("water", "sensor", "OFF", 10.0, 2)
        env.run(until=5.0)
        assert b.read("water") == "OFF"

    def test_write_replicates_and_fires_remote_event(self):
        env, a, b, group = self._group()
        a.create("water", "sensor", "OFF", 10.0, 2)
        env.run(until=1.0)
        remote_events = []
        b.subscribe(remote_events.append, variable="water")
        a.write("water", "ON")
        env.run(until=2.0)
        assert b.read("water") == "ON"
        changed = [e for e in remote_events if e.kind is SSSEventKind.CHANGED]
        assert len(changed) == 1
        assert changed[0].origin == "a"

    def test_no_replication_loop(self):
        env, a, b, group = self._group()
        a.create("water", "sensor", "OFF", 10.0, 2)
        a.write("water", "ON")
        env.run(until=30.0)
        # One create + one change crossing the wire; replicated-in events do
        # not re-multicast endlessly.
        assert group.replicated <= 4

    def test_refresh_replication_keeps_replica_alive(self):
        env, a, b, group = self._group()
        a.create("water", "sensor", "OFF", 5.0, 1)

        def refresher(env):
            for _ in range(10):
                yield env.timeout(5.0)
                a.refresh("water")

        env.process(refresher(env))
        env.run(until=45.0)
        assert not a.variable("water").timed_out
        assert not b.variable("water").timed_out
        env.run(until=80.0)  # refreshes stopped at t=50
        assert a.variable("water").timed_out
        assert b.variable("water").timed_out


class TestAladdinHomeChain:
    def _home(self, seed=3):
        from repro.clients import Screen
        from repro.core import SimbaEndpoint
        from repro.net import EmailService, IMService, SMSGateway

        env = Environment()
        rngs = RngRegistry(seed=seed)
        im = IMService(env, rngs.stream("im"))
        email = EmailService(env, rngs.stream("email"))
        sms = SMSGateway(env, rngs.stream("sms"))
        screen = Screen(env)
        endpoint = SimbaEndpoint(
            env, "aladdin-ep", screen, im, email, sms,
            "aladdin@im", "aladdin@mail", auto_ack=False,
        )
        endpoint.start()
        home = AladdinHome(env, rngs, endpoint)
        return env, home

    def test_disarm_chain_reaches_gateway_and_emits_alert(self):
        env, home = self._home()

        def scenario(env):
            yield env.timeout(10.0)
            home.disarm_via_remote()

        env.process(scenario(env))
        env.run(until=60.0)
        assert home.security.armed is False
        assert home.security.transitions == [("disarmed", False)]
        keywords = [a.keyword for a in home.gateway.emitted]
        assert keywords == ["Security Disarmed"]

    def test_water_sensor_trip_emits_critical_alert(self):
        env, home = self._home()
        sensor = home.add_sensor("Basement Water", critical=True,
                                 refresh_period=30.0)

        def scenario(env):
            yield env.timeout(40.0)  # let the create replicate first
            sensor.trip()

        env.process(scenario(env))
        env.run(until=90.0)
        keywords = [a.keyword for a in home.gateway.emitted]
        assert "Sensor ON" in keywords
        subjects = [a.subject for a in home.gateway.emitted]
        assert "Basement Water Sensor ON" in subjects

    def test_noncritical_sensor_does_not_alert(self):
        env, home = self._home()
        sensor = home.add_sensor("Hallway Motion", critical=False,
                                 refresh_period=30.0)

        def scenario(env):
            yield env.timeout(40.0)
            sensor.trip()

        env.process(scenario(env))
        env.run(until=90.0)
        assert all(a.keyword != "Sensor ON" for a in home.gateway.emitted)

    def test_dead_battery_triggers_sensor_broken(self):
        env, home = self._home()
        sensor = home.add_sensor(
            "Garage Door", critical=True, refresh_period=20.0, max_missed=2
        )

        def scenario(env):
            yield env.timeout(50.0)
            sensor.drain_battery()

        env.process(scenario(env))
        env.run(until=10 * MINUTE)
        keywords = [a.keyword for a in home.gateway.emitted]
        assert "Sensor Broken" in keywords

    def test_disarm_latency_in_paper_range(self):
        # Shape check: the full RF→powerline→SSS→multicast→gateway chain
        # takes seconds (order 5-15), not milliseconds and not minutes.
        latencies = []
        for seed in range(5):
            env, home = self._home(seed=seed)
            pressed_at = {}

            def scenario(env):
                yield env.timeout(10.0)
                home.disarm_via_remote()
                pressed_at["t"] = env.now

            env.process(scenario(env))
            env.run(until=120.0)
            assert home.gateway.emitted, f"seed {seed}: no alert emitted"
            emitted = home.gateway.emitted[0].created_at
            latencies.append(emitted - pressed_at["t"])
        mean = sum(latencies) / len(latencies)
        assert 3.0 < mean < 15.0


class TestIRSegment:
    def test_ir_remote_bridged_to_powerline(self):
        from repro.aladdin.devices import RemoteControl

        env = Environment()
        rngs = RngRegistry(seed=5)
        from repro.clients import Screen
        from repro.core import SimbaEndpoint
        from repro.net import EmailService, IMService, SMSGateway

        im = IMService(env, rngs.stream("im"))
        email = EmailService(env, rngs.stream("email"))
        sms = SMSGateway(env, rngs.stream("sms"))
        endpoint = SimbaEndpoint(
            env, "aladdin-ep", Screen(env), im, email, sms,
            "aladdin@im", "aladdin@mail", auto_ack=False,
        )
        endpoint.start()
        home = AladdinHome(env, rngs, endpoint)
        ir_remote = RemoteControl(env, "tv-remote", home.ir)

        def scenario(env):
            yield env.timeout(10.0)
            ir_remote.press("disarm")

        env.process(scenario(env))
        env.run(until=60.0)
        # The IR signal crossed the transceiver onto the powerline and the
        # monitor applied it (modulo the 5% IR loss — seed 5 delivers).
        assert home.security.armed is False


class TestGatewayDetails:
    def _gateway_rig(self, seed=7):
        from repro.clients import Screen
        from repro.core import SimbaEndpoint
        from repro.net import EmailService, IMService, SMSGateway
        from repro.aladdin.gateway import AladdinGateway

        env = Environment()
        rngs = RngRegistry(seed=seed)
        im = IMService(env, rngs.stream("im"))
        email = EmailService(env, rngs.stream("email"))
        sms = SMSGateway(env, rngs.stream("sms"))
        endpoint = SimbaEndpoint(
            env, "gw-ep", Screen(env), im, email, sms,
            "gw@im", "gw@mail", auto_ack=False,
        )
        endpoint.start()
        store = SoftStateStore(env, "gw")
        store.define_type(AladdinGateway.SENSOR_TYPE)
        store.define_type(AladdinGateway.SECURITY_TYPE)
        gateway = AladdinGateway(
            env, "aladdin", endpoint, store, rng=rngs.stream("gw"),
        )
        return env, store, gateway

    def test_security_alert_severity_important(self):
        from repro.core import AlertSeverity
        from repro.aladdin.gateway import AladdinGateway

        env, store, gateway = self._gateway_rig()
        store.create("security.armed", AladdinGateway.SECURITY_TYPE, True,
                     3600.0, 10**6)
        store.write("security.armed", False)
        env.run(until=30.0)
        (alert,) = gateway.emitted
        assert alert.severity is AlertSeverity.IMPORTANT
        assert alert.keyword == "Security Disarmed"

    def test_sensor_off_is_routine_severity(self):
        from repro.core import AlertSeverity
        from repro.aladdin.gateway import AladdinGateway

        env, store, gateway = self._gateway_rig()
        gateway.declare_critical("Water")
        store.create("Water", AladdinGateway.SENSOR_TYPE, "ON", 3600.0, 10**6)
        store.write("Water", "OFF")
        env.run(until=30.0)
        (alert,) = gateway.emitted
        assert alert.keyword == "Sensor OFF"
        assert alert.severity is AlertSeverity.ROUTINE

    def test_refresh_event_does_not_alert(self):
        from repro.aladdin.gateway import AladdinGateway

        env, store, gateway = self._gateway_rig()
        gateway.declare_critical("Water")
        store.create("Water", AladdinGateway.SENSOR_TYPE, "OFF", 3600.0, 10**6)
        store.refresh("Water")
        env.run(until=30.0)
        assert gateway.emitted == []

    def test_undeclared_sensor_timeout_still_alerts_broken(self):
        # Sensor Broken applies to any sensor-typed variable, critical or
        # not: a silently dead device is a maintenance problem either way.
        env, store, gateway = self._gateway_rig()
        from repro.aladdin.gateway import AladdinGateway

        store.create("Hallway Motion", AladdinGateway.SENSOR_TYPE, "OFF",
                     1.0, 0)
        env.run(until=60.0)
        keywords = [a.keyword for a in gateway.emitted]
        assert "Sensor Broken" in keywords
