"""Unit + integration tests for the WISH location substrate."""

import pytest

from repro.aladdin.sss import SoftStateStore
from repro.clients import Screen
from repro.core import SimbaEndpoint
from repro.errors import ConfigurationError
from repro.net import EmailService, IMService, SMSGateway
from repro.sim import Environment, RngRegistry
from repro.wish import (
    FloorPlan,
    LocationTrigger,
    PathLossModel,
    Region,
    WISHAlertService,
    WISHClient,
    WISHServer,
)
from repro.wish.alerts import NotAuthorized
from repro.wish.radio import signal_distance
from repro.wish.server import ClientReport


def office_plan():
    plan = FloorPlan("msr-building")
    plan.add_region(Region("west-wing", 0, 0, 20, 20))
    plan.add_region(Region("east-wing", 20, 0, 40, 20))
    plan.add_ap("ap-west", (10, 10))
    plan.add_ap("ap-east", (30, 10))
    plan.add_ap("ap-mid", (20, 5))
    return plan


class TestRadio:
    def test_power_decreases_with_distance(self):
        model = PathLossModel()
        assert model.mean_power(1.0) > model.mean_power(10.0) > model.mean_power(50.0)

    def test_reference_distance_floor(self):
        model = PathLossModel(p0_dbm=-30.0)
        assert model.mean_power(0.01) == -30.0

    def test_sensitivity_cutoff(self):
        model = PathLossModel(sensitivity_dbm=-60.0, shadowing_sigma_db=0.0)
        assert model.measure(1.0) is not None
        assert model.measure(1000.0) is None

    def test_shadowing_noise_reproducible(self):
        rngs = RngRegistry(seed=4)
        model = PathLossModel()
        a = model.measure(10.0, RngRegistry(seed=4).stream("r"))
        b = model.measure(10.0, RngRegistry(seed=4).stream("r"))
        assert a == b
        c = model.measure(10.0, rngs.stream("other"))
        assert c != a

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(d0=0.0)
        with pytest.raises(ConfigurationError):
            PathLossModel(exponent=-1.0)

    def test_signal_distance_symmetric_and_zero_on_equal(self):
        a = {"x": -40.0, "y": -60.0}
        b = {"x": -45.0, "z": -70.0}
        assert signal_distance(a, a) == 0.0
        assert signal_distance(a, b) == signal_distance(b, a)
        assert signal_distance({}, {}) == 0.0

    def test_missing_ap_counts_as_floor(self):
        a = {"x": -40.0}
        b = {}
        assert signal_distance(a, b) == pytest.approx(50.0)  # floor -90


class TestFloorPlan:
    def test_region_lookup(self):
        plan = office_plan()
        assert plan.region_at((5, 5)) == "west-wing"
        assert plan.region_at((25, 5)) == "east-wing"
        assert plan.region_at((100, 100)) == FloorPlan.OUTSIDE
        assert plan.region_at(None) == FloorPlan.OUTSIDE

    def test_duplicates_rejected(self):
        plan = office_plan()
        with pytest.raises(ConfigurationError):
            plan.add_region(Region("west-wing", 0, 0, 1, 1))
        with pytest.raises(ConfigurationError):
            plan.add_ap("ap-west", (0, 0))

    def test_degenerate_region_rejected(self):
        with pytest.raises(ConfigurationError):
            Region("r", 0, 0, 0, 10)

    def test_grid_covers_building(self):
        plan = office_plan()
        points = plan.grid_points(5.0)
        assert len(points) > 10
        assert all(plan.region_at(p) != FloorPlan.OUTSIDE for p in points)
        with pytest.raises(ConfigurationError):
            plan.grid_points(0.0)


class Rig:
    def __init__(self, seed=7, shadowing=2.0):
        self.env = Environment()
        self.rngs = RngRegistry(seed=seed)
        self.plan = office_plan()
        self.radio = PathLossModel(shadowing_sigma_db=shadowing)
        self.store = SoftStateStore(self.env, "wish-sss")
        self.server = WISHServer(
            self.env, self.plan, self.radio, self.store,
            rng=self.rngs.stream("wish-server"),
        )
        self.client = WISHClient(
            self.env, "victor", self.plan, self.radio, self.server,
            rng=self.rngs.stream("wish-client"), position=(5, 5),
        )


class TestServerAccuracy:
    def test_location_error_within_few_meters(self):
        # The paper claims accuracy "to within a few meters".
        rig = Rig(shadowing=2.0)
        errors = []
        for x, y in [(5, 5), (15, 10), (25, 5), (35, 15), (12, 3)]:
            rig.client.set_position((x, y))
            report = ClientReport(
                user="victor", activity="available",
                connected_ap=None, strengths=rig.client.measure(), sent_at=0.0,
            )
            estimate = rig.server.locate(report)
            assert estimate.position is not None
            error = ((estimate.position[0] - x) ** 2 +
                     (estimate.position[1] - y) ** 2) ** 0.5
            errors.append(error)
        assert sum(errors) / len(errors) < 6.0

    def test_region_identified(self):
        rig = Rig(shadowing=0.0)
        rig.client.set_position((5, 5))
        estimate = rig.server.locate(
            ClientReport("victor", "available", None,
                         rig.client.measure(), 0.0)
        )
        assert estimate.region == "west-wing"
        assert estimate.confidence > 50.0

    def test_empty_report_means_outside(self):
        rig = Rig()
        estimate = rig.server.locate(
            ClientReport("victor", "available", None, {}, 0.0)
        )
        assert estimate.region == FloorPlan.OUTSIDE
        assert estimate.position is None

    def test_confidence_decreases_with_noise(self):
        quiet = Rig(seed=7, shadowing=0.0)
        noisy = Rig(seed=7, shadowing=8.0)
        results = []
        for rig in (quiet, noisy):
            rig.client.set_position((5, 5))
            estimate = rig.server.locate(
                ClientReport("victor", "available", None,
                             rig.client.measure(), 0.0)
            )
            results.append(estimate.confidence)
        assert results[0] > results[1]

    def test_reports_update_soft_state(self):
        rig = Rig()
        rig.client.send_report_now()
        rig.env.run(until=10.0)
        value = rig.store.read("wish.user.victor")
        assert value["region"] == "west-wing"
        assert 0.0 <= value["confidence"] <= 100.0
        assert rig.server.last_estimate("victor") is not None

    def test_periodic_reporting(self):
        rig = Rig()
        rig.client.start()
        rig.env.run(until=31.0)
        assert rig.client.reports_sent == 10
        rig.client.stop()
        rig.env.run(until=61.0)
        assert rig.client.reports_sent == 10


class TestAlertService:
    def _service(self, rig):
        im = IMService(rig.env, rig.rngs.stream("im"))
        email = EmailService(rig.env, rig.rngs.stream("email"))
        sms = SMSGateway(rig.env, rig.rngs.stream("sms"))
        screen = Screen(rig.env)
        endpoint = SimbaEndpoint(
            rig.env, "wish-ep", screen, im, email, sms,
            "wish@im", "wish@mail", auto_ack=False,
        )
        endpoint.start()
        return WISHAlertService(rig.env, "wish", endpoint, rig.server)

    def _book(self):
        from repro.core import AddressBook, UserAddress
        from repro.net import ChannelType

        book = AddressBook(owner="mab-boss")
        book.add(UserAddress("Email", ChannelType.EMAIL, "mab-boss@mail"))
        return book

    def test_tracking_requires_authorization(self):
        rig = Rig()
        service = self._service(rig)
        with pytest.raises(NotAuthorized):
            service.request_tracking(
                "boss", "victor", {LocationTrigger.ENTER_BUILDING}, self._book()
            )

    def test_revoke_blocks_new_requests(self):
        rig = Rig()
        service = self._service(rig)
        service.authorize("victor", "boss")
        service.revoke("victor", "boss")
        with pytest.raises(NotAuthorized):
            service.request_tracking(
                "boss", "victor", {LocationTrigger.MOVE_REGION}, self._book()
            )

    def test_move_region_alert(self):
        rig = Rig(shadowing=0.0)
        service = self._service(rig)
        service.authorize("victor", "boss")
        request = service.request_tracking(
            "boss", "victor", {LocationTrigger.MOVE_REGION}, self._book()
        )
        rig.client.start()
        rig.client.walk([(20.0, (30, 10))])  # west-wing -> east-wing at t=20
        rig.env.run(until=60.0)
        assert request.alerts_sent == 1
        assert any(
            "west-wing -> east-wing" in a.body for a in service.emitted
        )

    def test_leave_and_enter_building(self):
        rig = Rig(shadowing=0.0)
        service = self._service(rig)
        service.authorize("victor", "boss")
        request = service.request_tracking(
            "boss",
            "victor",
            {LocationTrigger.LEAVE_BUILDING, LocationTrigger.ENTER_BUILDING},
            self._book(),
        )
        rig.client.start()
        rig.client.walk([(20.0, None), (40.0, (5, 5))])
        rig.env.run(until=80.0)
        assert request.alerts_sent == 2
        keywords = [a.keyword for a in service.emitted]
        assert "Location leave_building" in keywords
        assert "Location enter_building" in keywords

    def test_untriggered_transitions_ignored(self):
        rig = Rig(shadowing=0.0)
        service = self._service(rig)
        service.authorize("victor", "boss")
        request = service.request_tracking(
            "boss", "victor", {LocationTrigger.LEAVE_BUILDING}, self._book()
        )
        rig.client.start()
        rig.client.walk([(20.0, (30, 10))])  # move region, not leave
        rig.env.run(until=60.0)
        assert request.alerts_sent == 0


class TestServerParameters:
    def test_k_parameter_controls_averaging(self):
        rig1 = Rig(shadowing=0.0)
        from repro.wish import WISHServer as WS
        from repro.aladdin.sss import SoftStateStore

        # k=1 snaps to the single nearest lattice point (on-grid position).
        store = SoftStateStore(rig1.env, "sss-k1")
        server_k1 = WISHServer(
            rig1.env, rig1.plan, rig1.radio, store,
            rng=rig1.rngs.stream("k1"), k=1, grid_spacing=2.0,
        )
        rig1.client.set_position((5, 5))
        report = ClientReport("victor", "available", None,
                              rig1.client.measure(), 0.0)
        estimate = server_k1.locate(report)
        # Lattice points sit at odd coordinates (spacing/2 offset): k=1
        # lands exactly on one of them.
        assert estimate.position[0] % 1.0 == 0.0
        assert estimate.position[1] % 1.0 == 0.0

    def test_activity_status_propagates_to_store(self):
        rig = Rig()
        rig.client.activity = "in a meeting"
        rig.client.send_report_now()
        rig.env.run(until=10.0)
        value = rig.store.read("wish.user.victor")
        assert value["activity"] == "in a meeting"

    def test_user_variable_times_out_when_reports_stop(self):
        rig = Rig()
        rig.client.start()
        rig.env.run(until=20.0)
        rig.client.stop()
        # user_refresh_period=10, max_missed=3 -> deadline 40 s after the
        # last report.
        rig.env.run(until=120.0)
        variable = rig.store.variable("wish.user.victor")
        assert variable.timed_out

    def test_wish_stale_user_revives_on_next_report(self):
        rig = Rig()
        rig.client.send_report_now()
        rig.env.run(until=120.0)
        assert rig.store.variable("wish.user.victor").timed_out
        rig.client.send_report_now()
        rig.env.run(until=125.0)
        assert not rig.store.variable("wish.user.victor").timed_out
