"""Unit tests for the extracted §4.2 alert pipeline.

Each stage is exercised against a synthetic :class:`PipelineContext` built
from a real deployment's configuration, plus a golden-file test asserting
the refactor preserved the pre-extraction behavior byte for byte.
"""

import pytest

from repro.core.alert import Alert
from repro.core.buddy import BuddyJournal
from repro.core.endpoint import IncomingAlert
from repro.core.pipeline import (
    AggregateStage,
    AlertPipeline,
    ClassifyStage,
    FilterStage,
    RetryStage,
    RouteStage,
    default_stages,
)
from repro.net import ChannelType, LatencyModel
from repro.sim import MINUTE
from repro.world import SimbaWorld, WorldConfig

from tests.golden_scenario import GOLDEN_PATH, run_golden_scenario, serialize_journal

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
EMAIL_FIXED = LatencyModel(median=20.0, sigma=0.0, low=0.0, high=100.0)


def make_rig(seed=1):
    """A deployment plus a standalone pipeline over its configuration."""
    world = SimbaWorld(
        WorldConfig(
            seed=seed,
            im_latency=IM_FIXED,
            email_latency=EMAIL_FIXED,
            email_loss=0.0,
            sms_loss=0.0,
        )
    )
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    deployment.config.classifier.accept_source("portal")
    # Bring up the client software (normally MyAlertBuddy.start does this),
    # but do NOT launch a buddy: the stages run in isolation here, and a
    # live inbox loop would steal re-queued retries before we can assert.
    deployment.endpoint.start()
    pipeline = AlertPipeline(
        world.env,
        config=deployment.config,
        endpoint=deployment.endpoint,
        log=deployment.log,
        journal=deployment.journal,
        rng=deployment.rng,
    )
    return world, user, deployment, pipeline


def make_incoming(world, keyword="News", source="portal", **kwargs):
    alert = Alert(
        source=source,
        keyword=keyword,
        subject=f"{keyword} headline",
        body="body",
        created_at=world.env.now,
        keyword_field="keyword",
    )
    return IncomingAlert(
        alert=alert,
        via=ChannelType.IM,
        sender=source,
        received_at=world.env.now,
        **kwargs,
    )


def run_stage(world, stage, ctx, until=MINUTE):
    world.env.process(stage.run(ctx), name=f"stage-{stage.name}")
    world.run(until=world.env.now + until)
    return ctx


class TestClassifyStage:
    def test_accepted_source_extracts_keyword(self):
        world, _user, _deployment, pipeline = make_rig()
        ctx = pipeline.make_context(make_incoming(world))
        run_stage(world, ClassifyStage(), ctx)
        assert ctx.keyword == "News"
        assert not ctx.finished

    def test_unaccepted_source_rejects(self):
        world, _user, _deployment, pipeline = make_rig()
        ctx = pipeline.make_context(make_incoming(world, source="rogue"))
        run_stage(world, ClassifyStage(), ctx)
        assert ctx.finished
        assert ctx.outcome_kind == "rejected"
        assert pipeline.journal.count("rejected") == 1

    def test_pays_processing_latency(self):
        world, _user, _deployment, pipeline = make_rig()
        ctx = pipeline.make_context(make_incoming(world))
        start = world.env.now
        run_stage(world, ClassifyStage(), ctx)
        low = pipeline.config.processing_latency.low
        assert world.env.now >= start + low >= start


class TestAggregateStage:
    def test_mapped_keyword_sets_category(self):
        world, _user, _deployment, pipeline = make_rig()
        ctx = pipeline.make_context(make_incoming(world))
        ctx.keyword = "News"
        run_stage(world, AggregateStage(), ctx)
        assert ctx.category == "News"
        assert not ctx.finished

    def test_unmapped_keyword_finishes(self):
        world, _user, _deployment, pipeline = make_rig()
        ctx = pipeline.make_context(make_incoming(world, keyword="Gossip"))
        ctx.keyword = "Gossip"
        run_stage(world, AggregateStage(), ctx)
        assert ctx.finished
        assert ctx.outcome_kind == "unmapped"
        assert "Gossip" in pipeline.journal.of_kind("unmapped")[0].detail


class TestFilterStage:
    def test_enabled_category_passes(self):
        world, _user, _deployment, pipeline = make_rig()
        ctx = pipeline.make_context(make_incoming(world))
        ctx.category = "News"
        run_stage(world, FilterStage(), ctx)
        assert not ctx.finished

    def test_disabled_category_is_filtered(self):
        world, _user, deployment, pipeline = make_rig()
        deployment.config.filters.disable_category("News")
        ctx = pipeline.make_context(make_incoming(world))
        ctx.category = "News"
        run_stage(world, FilterStage(), ctx)
        assert ctx.finished
        assert ctx.outcome_kind == "filtered"
        assert pipeline.journal.count("filtered") == 1


class TestRouteStage:
    def test_no_subscribers_finishes(self):
        world, _user, deployment, pipeline = make_rig()
        deployment.config.subscriptions.register_category("Orphan")
        ctx = pipeline.make_context(make_incoming(world))
        ctx.category = "Orphan"
        run_stage(world, RouteStage(), ctx)
        assert ctx.finished
        assert ctx.outcome_kind == "no_subscribers"

    def test_delivers_and_records_routed(self):
        world, user, _deployment, pipeline = make_rig()
        ctx = pipeline.make_context(make_incoming(world))
        ctx.category = "News"
        run_stage(world, RouteStage(), ctx)
        assert not ctx.finished  # routing leaves the verdict to RetryStage
        assert ctx.failed_users == set()
        assert pipeline.journal.count("routed") == 1
        assert len(user.receipts) == 1

    def test_failed_subscriber_lands_in_failed_users(self):
        world, user, _deployment, pipeline = make_rig()
        user.set_present(False)
        world.email.set_available(False)
        ctx = pipeline.make_context(make_incoming(world))
        ctx.category = "News"
        run_stage(world, RouteStage(), ctx, until=5 * MINUTE)
        assert ctx.failed_users == {"alice"}
        assert pipeline.journal.count("delivery_failed") == 1

    def test_retry_users_restricts_subscribers(self):
        world, user, deployment, pipeline = make_rig()
        bob = world.create_user("bob", present=True)
        deployment.register_user_endpoint(bob)
        deployment.config.subscriptions.subscribe("News", "bob", "digest")
        incoming = make_incoming(world, retry_users=frozenset({"bob"}))
        ctx = pipeline.make_context(incoming)
        ctx.category = "News"
        run_stage(world, RouteStage(), ctx, until=5 * MINUTE)
        assert [s.user for s in ctx.subscriptions] == ["bob"]
        assert len(bob.receipts) == 1
        assert user.receipts == []  # alice already got her copy


class TestRetryStage:
    def test_partial_failure_requeues_only_failed_users(self):
        world, _user, deployment, pipeline = make_rig()
        bob = world.create_user("bob", present=True)
        deployment.register_user_endpoint(bob)
        deployment.config.subscriptions.subscribe("News", "bob", "digest")
        deployment.config.delivery_retry_delay = 60.0
        incoming = make_incoming(world)
        ctx = pipeline.make_context(incoming)
        ctx.category = "News"
        ctx.subscriptions = (
            deployment.config.subscriptions.subscriptions_for("News")
        )
        ctx.failed_users = {"bob"}
        run_stage(world, RetryStage(), ctx, until=5 * MINUTE)
        assert ctx.outcome_kind == "retry_scheduled"
        # Partial success: the alert is marked routed so the successful
        # subscriber never receives a duplicate...
        assert incoming.alert.alert_id in pipeline.journal.routed_ids
        # ...and after the retry delay, a retry lands in the inbox addressed
        # to the failed subscriber only.
        retries = [
            item
            for item in deployment.endpoint.alert_inbox.items
            if item.retry_users is not None
        ]
        assert len(retries) == 1
        assert retries[0].retry_users == frozenset({"bob"})
        assert retries[0].attempts == 1

    def test_exhausted_attempts_abandon(self):
        world, _user, deployment, pipeline = make_rig()
        deployment.config.delivery_max_attempts = 2
        incoming = make_incoming(world, attempts=1)
        ctx = pipeline.make_context(incoming)
        ctx.category = "News"
        ctx.subscriptions = (
            deployment.config.subscriptions.subscriptions_for("News")
        )
        ctx.failed_users = {"alice"}
        run_stage(world, RetryStage(), ctx)
        assert ctx.outcome_kind == "delivery_abandoned"
        assert pipeline.journal.count("delivery_abandoned") == 1
        assert len(deployment.endpoint.alert_inbox.items) == 0

    def test_clean_success_marks_routed(self):
        world, _user, deployment, pipeline = make_rig()
        incoming = make_incoming(world)
        ctx = pipeline.make_context(incoming)
        ctx.subscriptions = (
            deployment.config.subscriptions.subscriptions_for("News")
        )
        run_stage(world, RetryStage(), ctx)
        assert ctx.outcome_kind == "routed"
        assert incoming.alert.alert_id in pipeline.journal.routed_ids


class TestPipelineAssembly:
    def test_default_stage_order_matches_paper(self):
        names = [stage.name for stage in default_stages()]
        assert names == ["classify", "aggregate", "filter", "route", "retry"]

    def test_duplicate_incoming_short_circuits(self):
        world, _user, _deployment, pipeline = make_rig()
        incoming = make_incoming(world)
        pipeline.journal.routed_ids.add(incoming.alert.alert_id)
        result = {}

        def runner(env):
            result["ctx"] = yield from pipeline.process(incoming)

        world.env.process(runner(world.env))
        world.run(until=MINUTE)
        assert result["ctx"].outcome_kind == "duplicate_incoming"
        assert pipeline.journal.count("duplicate_incoming") == 1

    def test_on_progress_fires_only_for_routing_outcomes(self):
        world, _user, _deployment, pipeline = make_rig()
        ticks = []
        pipeline.on_progress = lambda: ticks.append(world.env.now)

        def runner(env):
            yield from pipeline.process(make_incoming(world))
            yield from pipeline.process(make_incoming(world, keyword="Gossip"))

        world.env.process(runner(world.env))
        world.run(until=5 * MINUTE)
        assert len(ticks) == 1  # routed fired it; unmapped did not


class TestBuddyJournal:
    def test_count_is_consistent_with_events(self):
        journal = BuddyJournal()
        for index in range(50):
            kind = ("routed", "filtered", "rejected")[index % 3]
            journal.record(float(index), kind, f"e{index}")
        for kind in ("routed", "filtered", "rejected", "never_recorded"):
            scanned = sum(1 for e in journal.events if e.kind == kind)
            assert journal.count(kind) == scanned
        assert journal.total_events == 50
        assert sum(journal.counts().values()) == 50

    def test_bounded_journal_keeps_exact_counts(self):
        journal = BuddyJournal(max_events=100)
        for index in range(1000):
            journal.record(float(index), "routed", f"e{index}")
        assert len(journal.events) == 100
        assert journal.count("routed") == 1000
        assert journal.total_events == 1000
        assert journal.dropped_events == 900
        # The window retains the most recent events.
        assert journal.events[-1].detail == "e999"
        assert journal.events[0].detail == "e900"

    def test_unbounded_journal_drops_nothing(self):
        journal = BuddyJournal()
        for index in range(10):
            journal.record(float(index), "routed")
        assert journal.dropped_events == 0
        assert len(journal.events) == 10


class TestGoldenDeterminism:
    def test_fixed_seed_matches_golden_journal(self):
        """The extracted pipeline reproduces the pre-refactor journal
        byte-for-byte: same outcomes, same timestamps, same order."""
        golden = GOLDEN_PATH.read_text()
        fresh = serialize_journal(run_golden_scenario()) + "\n"
        assert fresh == golden

    def test_golden_covers_every_outcome_kind(self):
        journal = run_golden_scenario()
        for kind in (
            "routed", "unmapped", "filtered", "rejected",
            "duplicate_incoming", "no_subscribers", "retry_scheduled",
            "delivery_abandoned", "delivery_failed", "recovery_replay",
        ):
            assert journal.count(kind) >= 1, kind


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
