"""Time-boxed chaos-sweep smoke tier.

A small seeded sweep on every test run: the real pipeline must survive
randomized fault schedules (clean sweep), and the whole search must be
bit-for-bit reproducible — identical fingerprints for identical seeds.
Kept deliberately small (a few trials, short windows) so the tier stays
in CI's 30-second budget with wide margin.
"""

from repro.sim.clock import MINUTE
from repro.testkit import ChaosIntensity, chaos_sweep
from repro.testkit.bugs import silent_drop_stages

SWEEP_KWARGS = dict(
    trials=3,
    n_users=2,
    duration=30 * MINUTE,
    settle=15 * MINUTE,
    intensity=ChaosIntensity(faults_per_hour=10.0),
)


class TestSweepSmoke:
    def test_clean_sweep_on_real_pipeline(self):
        result = chaos_sweep(seed=2026, **SWEEP_KWARGS)
        assert result.ok, result.summary()
        assert len(result.trials) == 3
        assert result.failures == []

    def test_sweep_bit_for_bit_reproducible(self):
        a = chaos_sweep(seed=11, **SWEEP_KWARGS)
        b = chaos_sweep(seed=11, **SWEEP_KWARGS)
        assert a.fingerprint() == b.fingerprint()
        for ta, tb in zip(a.trials, b.trials):
            assert ta.fingerprint == tb.fingerprint

    def test_different_sweep_seeds_explore_different_schedules(self):
        a = chaos_sweep(seed=1, trials=1, n_users=2,
                        duration=20 * MINUTE, settle=10 * MINUTE)
        b = chaos_sweep(seed=2, trials=1, n_users=2,
                        duration=20 * MINUTE, settle=10 * MINUTE)
        assert a.fingerprint() != b.fingerprint()

    def test_sweep_finds_and_shrinks_planted_bug(self):
        """End-to-end self-test: with a buggy pipeline planted, random
        search alone must find a failing schedule and shrink it to a
        pinned-ready reproducer."""
        result = chaos_sweep(
            seed=8,
            trials=3,
            n_users=2,
            duration=40 * MINUTE,
            settle=15 * MINUTE,
            intensity=ChaosIntensity(faults_per_hour=20.0),
            stage_factory=silent_drop_stages,
            shrink_budget=16,
        )
        assert not result.ok
        failing = result.failures[0]
        assert failing.shrink_result is not None
        assert len(failing.shrink_result.schedule) <= failing.schedule_size
        assert failing.reproducer is not None
        assert failing.reproducer.schedule == failing.shrink_result.schedule
        assert failing.reproducer.violations


class TestExperimentCLI:
    def test_main_green_path_exits_zero(self, capsys):
        from repro.experiments.chaos import main

        code = main([
            "--seed", "3", "--trials", "1",
            "--duration-minutes", "20", "--settle-minutes", "12",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep verdict: PASS" in out
        assert "fingerprint:" in out

    def test_main_replays_pins(self, capsys):
        from pathlib import Path

        from repro.experiments.chaos import main

        pins = sorted(
            (Path(__file__).parent / "data" / "chaos").glob("*.json")
        )
        code = main(["--replay"] + [str(p) for p in pins])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("PASS") == len(pins)
