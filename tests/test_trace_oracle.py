"""Trace-backed oracle tests: every invariant, fabricated and end-to-end.

The fabricated-sink tests pin each invariant's exact trigger (and its
legal near-misses).  The integration tests prove the chain the ISSUE asks
for: a planted pipeline bug trips a *trace* invariant independently of
the journal oracle, a healthy chaos run has a clean trace verdict with an
unchanged fingerprint, and the pinned failover reproducer yields a
complete span record (handoff, promotions, restarts) the oracle accepts.
"""

import pytest

from repro.obs import TraceSink, lifecycle_trace
from repro.sim.clock import MINUTE
from repro.sim.failures import FaultKind, ScheduledFault
from repro.testkit import ChaosRunConfig, check_trace, run_chaos
from repro.testkit.bugs import drop_retry_stages
from repro.testkit.schedule import replay_reproducer
from repro.testkit.trace_oracle import TERMINAL_TRIP_OUTCOMES
from repro.workloads.faultload import TARGET_EMAIL_SERVICE, TARGET_IM_SERVICE
from tests.test_chaos_regressions import CHAOS_DIR


class FakeEnv:
    def __init__(self):
        self.now = 0.0
        self.tracer = None


def make_sink(**kwargs):
    env = FakeEnv()
    return TraceSink(**kwargs).install(env), env


def invariants(violations):
    return sorted({v.invariant for v in violations})


class TestFabricatedInvariants:
    def test_clean_sink_checks_out(self):
        sink, env = make_sink()
        span = sink.begin("alert-1", "trip", user="u", epoch=1)
        env.now = 2.0
        sink.end(span, "routed")
        checked, violations = check_trace(sink)
        assert violations == []
        assert checked == {"trace_traces": 1, "trace_spans": 1}

    def test_duplicate_terminal_delivery(self):
        sink, env = make_sink()
        for _ in range(2):
            span = sink.begin("alert-1", "deliver.user", user="u", epoch=1)
            env.now += 1.0
            sink.end(span, "delivered")
        _, violations = check_trace(sink)
        assert invariants(violations) == ["trace_terminal_delivery"]

    def test_cross_epoch_redelivery_is_not_this_invariant(self):
        """Same alert delivered under two epochs is the partition shape
        the *journal* oracle judges; the trace invariant keys on epoch."""
        sink, env = make_sink()
        for epoch in (1, 2):
            span = sink.begin("alert-1", "deliver.user", user="u", epoch=epoch)
            env.now += 1.0
            sink.end(span, "delivered")
        _, violations = check_trace(sink)
        assert violations == []

    def _deliver_with_blocks(self, sink, env, outcomes, start_index=0):
        deliver = sink.begin("alert-1", "deliver", mode="m")
        for offset, outcome in enumerate(outcomes):
            block = sink.begin(
                "alert-1", "block",
                parent=deliver.span_id, index=start_index + offset,
            )
            env.now += 1.0
            sink.end(block, outcome)
        sink.end(deliver, "delivered")

    def test_fallback_after_success(self):
        sink, env = make_sink()
        self._deliver_with_blocks(sink, env, ["success", "success"])
        _, violations = check_trace(sink)
        assert invariants(violations) == ["trace_fallback_ordering"]

    def test_fallback_without_predecessor(self):
        sink, env = make_sink()
        self._deliver_with_blocks(sink, env, ["success"], start_index=1)
        _, violations = check_trace(sink)
        assert invariants(violations) == ["trace_fallback_ordering"]

    def test_ordered_fallback_is_legal(self):
        sink, env = make_sink()
        self._deliver_with_blocks(sink, env, ["failed", "success"])
        _, violations = check_trace(sink)
        assert violations == []

    def test_fallback_check_skipped_when_sink_evicted(self):
        """A dropped predecessor block is bounded memory, not a bug —
        the completeness-dependent checks must stand down."""
        sink, env = make_sink(max_spans_per_trace=2)
        deliver = sink.begin("alert-1", "deliver", mode="m")
        first = sink.begin("alert-1", "block", parent=deliver.span_id, index=0)
        sink.end(first, "failed")
        second = sink.begin(  # over the cap: dropped, looks missing
            "alert-1", "block", parent=deliver.span_id, index=1
        )
        sink.end(second, "success")
        sink.end(deliver, "delivered")
        assert sink.dropped_spans == 1
        _, violations = check_trace(sink)
        assert violations == []

    def test_fenced_epoch_trip_after_promotion(self):
        sink, env = make_sink()
        env.now = 10.0
        sink.event(
            lifecycle_trace("pair:u"), "failover.promote",
            epoch=2, side="standby", user="u",
        )
        env.now = 11.0
        stale = sink.begin("alert-1", "trip", user="u", epoch=1, attempt=0)
        env.now = 12.0
        sink.end(stale, "routed")
        _, violations = check_trace(sink)
        assert invariants(violations) == ["trace_fenced_epoch"]

    def test_fenced_epoch_same_instant_is_legal(self):
        sink, env = make_sink()
        env.now = 10.0
        sink.event(
            lifecycle_trace("pair:u"), "failover.promote",
            epoch=2, side="standby", user="u",
        )
        span = sink.begin("alert-1", "trip", user="u", epoch=1, attempt=0)
        env.now = 11.0
        sink.end(span, "routed")
        _, violations = check_trace(sink)
        assert violations == []

    def test_trip_closed_without_terminal_outcome(self):
        sink, env = make_sink()
        span = sink.begin("alert-1", "trip", user="u", attempt=0)
        env.now = 1.0
        sink.end(span, "unfinished")
        _, violations = check_trace(sink)
        assert invariants(violations) == ["trace_terminal"]

    def test_open_trip_is_legal(self):
        """A crash cuts processes mid-yield; their spans never end."""
        sink, _ = make_sink()
        sink.begin("alert-1", "trip", user="u", attempt=0)
        _, violations = check_trace(sink)
        assert violations == []

    @pytest.mark.parametrize("outcome", sorted(TERMINAL_TRIP_OUTCOMES))
    def test_every_terminal_outcome_is_legal(self, outcome):
        sink, env = make_sink()
        span = sink.begin("alert-1", "trip", user="u", attempt=0)
        env.now = 1.0
        sink.end(span, outcome)
        _, violations = check_trace(sink)
        assert violations == []

    def test_structural_unknown_parent(self):
        sink, env = make_sink()
        span = sink.begin("alert-1", "receive", parent=999)
        sink.end(span, "enqueued")
        _, violations = check_trace(sink)
        assert invariants(violations) == ["trace_structural"]

    def test_structural_end_before_start(self):
        sink, env = make_sink()
        env.now = 5.0
        span = sink.begin("alert-1", "receive")
        env.now = 3.0
        sink.end(span, "enqueued")
        _, violations = check_trace(sink)
        assert invariants(violations) == ["trace_structural"]

    def test_lifecycle_traces_are_exempt(self):
        """Lifecycle spans (restarts, promotions) are not alert paths;
        no alert invariant may fire on them."""
        sink, env = make_sink()
        span = sink.begin(lifecycle_trace("mdc:u"), "trip", user="u")
        env.now = 1.0
        sink.end(span, "weird")
        _, violations = check_trace(sink)
        assert violations == []


#: Both channels down at once (same shape as test_chaos_oracle.py): alerts
#: emitted in the gap exhaust the §4.2 fallback chain.
TOTAL_OUTAGE = [
    ScheduledFault(at=602.0, kind=FaultKind.IM_SERVICE_OUTAGE,
                   target=TARGET_IM_SERVICE, duration=600.0),
    ScheduledFault(at=602.0, kind=FaultKind.EMAIL_OUTAGE,
                   target=TARGET_EMAIL_SERVICE, duration=900.0),
]

CONFIG = ChaosRunConfig(seed=5, n_users=2, duration=20 * MINUTE,
                        settle=15 * MINUTE)


class TestTraceOracleEndToEnd:
    def test_healthy_run_clean_trace_verdict_same_fingerprint(self):
        traced = run_chaos(TOTAL_OUTAGE, CONFIG, trace=True)
        untraced = run_chaos(TOTAL_OUTAGE, CONFIG)
        assert traced.ok, traced.oracle.summary()
        assert traced.oracle.trace_violations == []
        assert "trace_traces" in traced.oracle.checked
        assert traced.oracle.checked["trace_spans"] > 0
        assert traced.fingerprint() == untraced.fingerprint()
        assert traced.trace is not None
        assert untraced.trace is None

    def test_planted_bug_trips_a_trace_invariant(self):
        """Dropping the retry stage lets trips run off the end of the
        stage list — the trace oracle sees the non-terminal trip even
        though no journal entry is missing for *this* check."""
        report = run_chaos(
            TOTAL_OUTAGE, CONFIG, stage_factory=drop_retry_stages, trace=True
        )
        assert not report.ok
        assert "trace_terminal" in invariants(report.oracle.trace_violations)

    def test_oracle_report_folds_trace_violations_into_verdict(self):
        report = run_chaos(
            TOTAL_OUTAGE, CONFIG, stage_factory=drop_retry_stages, trace=True
        )
        assert not report.oracle.ok
        assert "violation" in report.oracle.summary()

    def test_pinned_failover_reproducer_has_complete_span_record(self):
        """ISSUE acceptance: the pinned reproducer's trace contains the
        full causal path — fallback blocks, a failover handoff, the
        promotions and MDC restarts around it — and the trace oracle
        accepts it."""
        report = replay_reproducer(
            CHAOS_DIR.parent / "trace" / "handoff_failover.json", trace=True
        )
        assert report.ok, report.oracle.summary()
        assert report.oracle.trace_violations == []
        sink = report.trace
        assert sink.find_spans("failover.handoff"), "no handoff span"
        assert sink.find_spans("failover.promote"), "no promotion events"
        assert sink.find_spans("mdc.restart"), "no MDC restart events"
        fallbacks = [
            s for s in sink.find_spans("block")
            if s.annotations.get("index", 0) > 0
        ]
        assert fallbacks, "no fallback block in the pinned reproducer"
