"""Warm-standby replication: log shipping, lease failover, epoch fencing.

Exercises :mod:`repro.core.replication` through a real farm: a tenant's
deployment becomes the primary of a pair, the standby mirrors its
pessimistic log over the host link, and the failover controller promotes
on lease expiry.  The fencing regression here is the one the tentpole is
accountable for: a resurrected old primary must discover its epoch is
stale and reconcile instead of acking or routing.
"""

from repro.core.endpoint import IncomingAlert
from repro.core.farm import FarmProfile
from repro.core.replication import FencingService, ReplicaRole
from repro.net.message import ChannelType
from repro.sim.clock import MINUTE
from repro.testkit.harness import EMAIL_FAST
from repro.testkit.oracle import DeliveryOracle
from repro.world import SimbaWorld, WorldConfig


def make_replicated_farm(seed=0, n_users=1, **pair_kwargs):
    oracle = DeliveryOracle()
    world = SimbaWorld(
        WorldConfig(
            seed=seed, email_latency=EMAIL_FAST, email_loss=0.0, sms_loss=0.0
        )
    )
    farm = world.create_farm(
        shards=2,
        profile=FarmProfile(categories=("News",), accept_sources=("portal",)),
    )
    tenants = farm.add_users(n_users)
    for tenant in tenants:
        tenant.deployment.config.pipeline_observer = oracle.observer_for(
            tenant.name
        )
    farm.enable_replication(**pair_kwargs)
    farm.start_watchdogs(check_interval=60.0)
    source = world.create_source("portal")
    farm.register_with(source)
    return world, farm, tenants, source, oracle


def start_workload(world, source, tenants, n, period=15.0, prefix="r"):
    """Round-robin n alerts; returns offered ids per tenant (filled live)."""
    offered = {t.name: set() for t in tenants}

    def workload(env):
        for index in range(n):
            tenant = tenants[index % len(tenants)]
            alert, _ = source.emit_to(
                tenant.book, "News", f"{prefix}-{index}", "body"
            )
            offered[tenant.name].add(alert.alert_id)
            yield env.timeout(period)

    world.env.process(workload(world.env), name="repl-test-workload")
    return offered


class TestLogShipping:
    def test_appends_and_marks_mirrored_to_standby(self):
        world, farm, tenants, source, oracle = make_replicated_farm()
        tenant = tenants[0]
        pair = tenant.pair
        offered = start_workload(world, source, tenants, n=5)
        world.env.run(until=10 * MINUTE)

        assert pair.audit.shipped > 0
        standby_log = pair.b.deployment.log
        for alert_id in offered[tenant.name]:
            assert standby_log.has_seen(alert_id)
            entry = standby_log.entry_for_alert(alert_id)
            assert entry.processed, "processed mark did not ship"
        # No failover happened: the creation promotion is the only one.
        assert len(pair.audit.promotions) == 1
        report = oracle.check(
            farm, offered=offered, source_endpoints=[source.endpoint]
        )
        assert report.ok, report.summary()
        assert report.checked.get("pairs") == 1

    def test_link_outage_queues_then_heartbeat_catches_up(self):
        # Lease long enough that the 200 s partition does NOT promote —
        # this test isolates the ship-queue/catch-up path.  (A partition
        # longer than the default lease legitimately promotes; that path
        # is TestFailover's business.)
        world, farm, tenants, source, oracle = make_replicated_farm(
            seed=3, lease_timeout=10 * MINUTE
        )
        tenant = tenants[0]
        pair = tenant.pair
        offered = start_workload(world, source, tenants, n=12, period=15.0)
        world.env.run(until=30.0)
        pair.link.outage(200.0)
        world.env.run(until=150.0)

        # Mid-outage: availability wins — the primary keeps acking and
        # delivering, the ship debt queues.
        assert pair.a.unshipped or pair.audit.unshipped_queued > 0
        standby_log = pair.b.deployment.log
        assert any(
            not standby_log.has_seen(alert_id)
            for alert_id in offered[tenant.name]
        )

        world.env.run(until=15 * MINUTE)
        # Post-outage: the heartbeat loop repaid the debt — no failover
        # happened, the mirror is whole again.
        assert len(pair.audit.promotions) == 1
        assert pair.a.unshipped == []
        for alert_id in offered[tenant.name]:
            assert standby_log.has_seen(alert_id)
        assert tenant.user.unique_alerts_received() >= offered[tenant.name]
        report = oracle.check(
            farm, offered=offered, source_endpoints=[source.endpoint]
        )
        assert report.ok, report.summary()


class TestFailover:
    def test_primary_crash_promotes_standby_within_lease(self):
        world, farm, tenants, source, oracle = make_replicated_farm(seed=5)
        tenant = tenants[0]
        pair = tenant.pair
        offered = start_workload(world, source, tenants, n=20, period=15.0)
        world.env.run(until=60.0)
        assert pair.a.host.power_failure(4 * MINUTE) is True
        world.env.run(until=20 * MINUTE)

        promotions = pair.audit.promotions
        assert len(promotions) == 2, "expected exactly one failover"
        promo = promotions[-1]
        assert promo.side == "b"
        # Lease (20 s default) + check interval (2 s) + slack: the whole
        # point is beating outage + reboot by an order of magnitude.
        assert 60.0 < promo.at < 60.0 + 35.0
        assert pair.active is pair.b
        # Nothing offered during the outage was lost.
        assert tenant.user.unique_alerts_received() >= offered[tenant.name]
        report = oracle.check(
            farm, offered=offered, source_endpoints=[source.endpoint]
        )
        assert report.ok, report.summary()

    def test_resurrected_old_primary_is_fenced_and_reconciles(self):
        """The fencing regression: the old primary comes back mid-epoch-2
        and must not ack or route anything — it reconciles and rejoins."""
        world, farm, tenants, source, oracle = make_replicated_farm(seed=7)
        tenant = tenants[0]
        pair = tenant.pair
        offered = start_workload(world, source, tenants, n=30, period=15.0)
        world.env.run(until=60.0)
        pair.a.host.power_failure(2 * MINUTE)
        world.env.run(until=25 * MINUTE)

        assert len(pair.audit.promotions) == 2
        promoted_at = pair.audit.promotions[-1].at
        # Resurrection gate fired: the side noticed it was fenced...
        fenced = [a for a in pair.audit.actions if a.kind == "fenced"]
        assert any(a.epoch == 1 for a in fenced)
        # ...and reconciliation completed: rejoined as a ready standby.
        assert [r.side for r in pair.audit.reconciliations] == ["a"]
        assert pair.a.role is ReplicaRole.STANDBY
        assert pair.a.ready
        # The invariant itself: no ack/route initiated under the fenced
        # epoch strictly after the promotion of the new one.
        for action in pair.audit.actions:
            if action.kind in ("ack", "route") and action.epoch == 1:
                assert action.at <= promoted_at
        assert tenant.user.unique_alerts_received() >= offered[tenant.name]
        report = oracle.check(
            farm, offered=offered, source_endpoints=[source.endpoint]
        )
        assert report.ok, report.summary()

        # Belt and braces: probe the guards directly — the stale side
        # refuses and forwards to the active one.
        alert, _ = source.emit_to(tenant.book, "News", "probe", "body")
        incoming = IncomingAlert(
            alert=alert,
            via=ChannelType.IM,
            sender="probe",
            received_at=world.env.now,
        )
        forwarded_before = len(pair.audit.forwarded)
        assert pair.a.ack_guard(incoming) is False
        assert pair.a.route_guard(incoming) is False
        assert len(pair.audit.forwarded) == forwarded_before + 2

    def test_standby_reboot_does_not_trigger_churn_promotion(self):
        """A standby coming back from an outage holds a stale lease clock;
        booting must restart the lease timer, not promote over a healthy
        primary."""
        world, farm, tenants, source, oracle = make_replicated_farm(seed=9)
        tenant = tenants[0]
        pair = tenant.pair
        offered = start_workload(world, source, tenants, n=10, period=15.0)
        world.env.run(until=50.0)
        pair.b.host.power_failure(60.0)
        world.env.run(until=15 * MINUTE)

        assert len(pair.audit.promotions) == 1, "spurious promotion"
        assert pair.active is pair.a
        assert pair.a.role is ReplicaRole.PRIMARY
        assert tenant.user.unique_alerts_received() >= offered[tenant.name]
        report = oracle.check(
            farm, offered=offered, source_endpoints=[source.endpoint]
        )
        assert report.ok, report.summary()


class TestFencingService:
    def test_epochs_monotonic_and_per_pair(self):
        fencing = FencingService()
        assert fencing.current("u1") == 0
        assert fencing.advance("u1") == 1
        assert fencing.advance("u1") == 2
        assert fencing.current("u1") == 2
        assert fencing.current("u2") == 0
        assert fencing.advance("u2") == 1

    def test_farm_teardown_stops_controllers(self):
        world, farm, tenants, source, oracle = make_replicated_farm()
        pair = tenants[0].pair
        world.env.run(until=60.0)
        farm.teardown_all()
        assert pair.controller.running is False
