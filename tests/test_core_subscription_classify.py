"""Unit tests for SubscriptionLayer, AlertClassifier, CategoryAggregator,
FilterPolicy."""

import pytest

from repro.core import (
    Action,
    AddressBook,
    Alert,
    AlertClassifier,
    CommunicationBlock,
    DeliveryMode,
    ExtractionRule,
    FilterDecision,
    FilterPolicy,
    SubscriptionLayer,
    TimeWindow,
    UserAddress,
)
from repro.core.aggregator import CategoryAggregator
from repro.errors import AlertRejected, ConfigurationError, SubscriptionError
from repro.net import ChannelType
from repro.sim import DAY, HOUR


def make_layer():
    layer = SubscriptionLayer()
    book = AddressBook(owner="alice")
    book.add(UserAddress("IM", ChannelType.IM, "alice@im"))
    book.add(UserAddress("Email", ChannelType.EMAIL, "alice@mail"))
    layer.register_user("alice", book)
    layer.register_mode(
        "alice",
        DeliveryMode(
            "urgent",
            [CommunicationBlock([Action("IM")], require_ack=True)],
        ),
    )
    layer.register_category("Investment")
    return layer


class TestSubscriptionLayer:
    def test_register_and_subscribe(self):
        layer = make_layer()
        sub = layer.subscribe("Investment", "alice", "urgent")
        assert layer.subscriptions_for("Investment") == [sub]
        assert layer.subscriptions_of_user("alice") == [sub]

    def test_duplicate_user_rejected(self):
        layer = make_layer()
        with pytest.raises(SubscriptionError):
            layer.register_user("alice", AddressBook(owner="alice"))

    def test_unknown_user_rejected(self):
        layer = make_layer()
        with pytest.raises(SubscriptionError):
            layer.address_book("bob")
        with pytest.raises(SubscriptionError):
            layer.mode("bob", "urgent")

    def test_mode_with_unknown_address_rejected(self):
        layer = make_layer()
        with pytest.raises(SubscriptionError, match="Pager"):
            layer.register_mode(
                "alice",
                DeliveryMode("bad", [CommunicationBlock([Action("Pager")])]),
            )

    def test_subscribe_unknown_category_rejected(self):
        layer = make_layer()
        with pytest.raises(SubscriptionError):
            layer.subscribe("Sports", "alice", "urgent")

    def test_subscribe_unknown_mode_rejected(self):
        layer = make_layer()
        with pytest.raises(SubscriptionError):
            layer.subscribe("Investment", "alice", "digest")

    def test_double_subscribe_rejected(self):
        layer = make_layer()
        layer.subscribe("Investment", "alice", "urgent")
        with pytest.raises(SubscriptionError):
            layer.subscribe("Investment", "alice", "urgent")

    def test_unsubscribe_then_resubscribe_changes_mode(self):
        layer = make_layer()
        layer.register_mode(
            "alice",
            DeliveryMode("digest", [CommunicationBlock([Action("Email")])]),
        )
        layer.subscribe("Investment", "alice", "urgent")
        layer.unsubscribe("Investment", "alice")
        sub = layer.subscribe("Investment", "alice", "digest")
        assert sub.mode_name == "digest"

    def test_unsubscribe_nonexistent_rejected(self):
        layer = make_layer()
        with pytest.raises(SubscriptionError):
            layer.unsubscribe("Investment", "alice")

    def test_multiple_subscribers_per_category(self):
        layer = make_layer()
        book = AddressBook(owner="bob")
        book.add(UserAddress("IM", ChannelType.IM, "bob@im"))
        layer.register_user("bob", book)
        layer.register_mode(
            "bob", DeliveryMode("urgent", [CommunicationBlock([Action("IM")])])
        )
        layer.subscribe("Investment", "alice", "urgent")
        layer.subscribe("Investment", "bob", "urgent")
        assert {s.user for s in layer.subscriptions_for("Investment")} == {
            "alice",
            "bob",
        }

    def test_empty_category_rejected(self):
        with pytest.raises(SubscriptionError):
            make_layer().register_category("")

    def test_modes_for(self):
        layer = make_layer()
        assert [m.name for m in layer.modes_for("alice")] == ["urgent"]


def make_alert(source="yahoo", subject="MSFT up 3%", keyword="Stocks"):
    return Alert(
        source=source,
        keyword=keyword,
        subject=subject,
        body="body",
        created_at=0.0,
    )


class TestClassifier:
    def test_unaccepted_source_rejected(self):
        classifier = AlertClassifier()
        with pytest.raises(AlertRejected):
            classifier.classify(make_alert())

    def test_keyword_field_rule_uses_structured_keyword(self):
        classifier = AlertClassifier()
        classifier.accept_source("yahoo")
        assert classifier.classify(make_alert(keyword="Stocks")) == "Stocks"

    def test_sender_name_extraction_yahoo_style(self):
        # "keywords in alerts from Yahoo! appear as part of the email sender
        # name" — e.g. sender "Yahoo! Alerts (Stocks)".
        classifier = AlertClassifier()
        classifier.accept_source(
            "yahoo",
            ExtractionRule(source="yahoo", field="sender", prefix="(", suffix=")"),
        )
        keyword = classifier.classify(
            make_alert(), sender="Yahoo! Alerts (Stocks)"
        )
        assert keyword == "Stocks"

    def test_subject_extraction_msn_style(self):
        # "keywords in MSN Mobile alerts reside in the email subject field".
        classifier = AlertClassifier()
        classifier.accept_source(
            "msn-mobile",
            ExtractionRule(
                source="msn-mobile", field="subject", prefix="[", suffix="]"
            ),
        )
        alert = make_alert(source="msn-mobile", subject="[Weather] Rain today")
        assert classifier.classify(alert) == "Weather"

    def test_missing_prefix_rejected(self):
        classifier = AlertClassifier()
        classifier.accept_source(
            "msn-mobile",
            ExtractionRule(
                source="msn-mobile", field="subject", prefix="[", suffix="]"
            ),
        )
        with pytest.raises(AlertRejected):
            classifier.classify(make_alert(source="msn-mobile", subject="plain"))

    def test_empty_keyword_rejected(self):
        classifier = AlertClassifier()
        classifier.accept_source(
            "svc",
            ExtractionRule(source="svc", field="subject", prefix="[", suffix="]"),
        )
        with pytest.raises(AlertRejected):
            classifier.classify(make_alert(source="svc", subject="[ ] hm"))

    def test_service_list_maintained(self):
        classifier = AlertClassifier()
        classifier.accept_source(
            "yahoo", unsubscribe_info="visit alerts.yahoo.com"
        )
        classifier.classify(make_alert())
        classifier.classify(make_alert())
        (record,) = classifier.subscribed_services()
        assert record.alerts_seen == 2
        assert record.unsubscribe_info == "visit alerts.yahoo.com"

    def test_drop_source(self):
        classifier = AlertClassifier()
        classifier.accept_source("yahoo")
        classifier.drop_source("yahoo")
        assert not classifier.is_accepted("yahoo")
        with pytest.raises(AlertRejected):
            classifier.classify(make_alert())

    def test_rule_source_mismatch_rejected(self):
        classifier = AlertClassifier()
        with pytest.raises(ConfigurationError):
            classifier.accept_source("yahoo", ExtractionRule(source="cnn"))

    def test_invalid_field_rejected(self):
        with pytest.raises(ConfigurationError):
            ExtractionRule(source="x", field="footer")


class TestAggregator:
    def test_paper_investment_aggregation(self):
        agg = CategoryAggregator()
        agg.map_keywords(
            ["Stocks", "Financial news", "Earnings reports"], "Investment"
        )
        for keyword in ("Stocks", "Financial news", "Earnings reports"):
            assert agg.category_for(keyword) == "Investment"

    def test_case_insensitive(self):
        agg = CategoryAggregator()
        agg.map_keyword("Stocks", "Investment")
        assert agg.category_for("STOCKS") == "Investment"

    def test_default_category(self):
        agg = CategoryAggregator(default_category="Misc")
        assert agg.category_for("whatever") == "Misc"

    def test_no_default_returns_none(self):
        assert CategoryAggregator().category_for("whatever") is None

    def test_subcategorization_for_filtering(self):
        # §4.2: map "Sensor ON" and "Sensor OFF" to different subcategories.
        agg = CategoryAggregator()
        agg.map_keyword("Sensor ON", "Home Emergency")
        agg.map_keyword("Sensor OFF", "Home Routine")
        assert agg.category_for("Sensor ON") == "Home Emergency"
        assert agg.category_for("Sensor OFF") == "Home Routine"

    def test_remap_and_unmap(self):
        agg = CategoryAggregator()
        agg.map_keyword("Stocks", "Investment")
        agg.map_keyword("Stocks", "Noise")
        assert agg.category_for("Stocks") == "Noise"
        agg.unmap_keyword("Stocks")
        assert agg.category_for("Stocks") is None

    def test_keywords_for(self):
        agg = CategoryAggregator()
        agg.map_keywords(["b", "a"], "X")
        agg.map_keyword("c", "Y")
        assert agg.keywords_for("X") == ["a", "b"]

    def test_known_categories(self):
        agg = CategoryAggregator(default_category="Misc")
        agg.map_keyword("a", "X")
        assert agg.known_categories() == {"X", "Misc"}

    def test_empty_rejected(self):
        agg = CategoryAggregator()
        with pytest.raises(ConfigurationError):
            agg.map_keyword("", "X")
        with pytest.raises(ConfigurationError):
            agg.map_keyword("a", "")


class TestFilterPolicy:
    def test_default_is_deliver(self):
        assert FilterPolicy().evaluate("X", 0.0) is FilterDecision.DELIVER

    def test_disable_enable(self):
        policy = FilterPolicy()
        policy.disable_category("X")
        assert policy.evaluate("X", 0.0) is FilterDecision.CATEGORY_DISABLED
        assert policy.is_disabled("X")
        policy.enable_category("X")
        assert policy.evaluate("X", 0.0) is FilterDecision.DELIVER

    def test_delivery_window_blocks_outside(self):
        policy = FilterPolicy()
        policy.set_delivery_window("X", TimeWindow(9 * HOUR, 17 * HOUR))
        assert policy.evaluate("X", 10 * HOUR) is FilterDecision.DELIVER
        assert (
            policy.evaluate("X", 20 * HOUR)
            is FilterDecision.OUTSIDE_DELIVERY_WINDOW
        )
        # Next day, same wall time.
        assert policy.evaluate("X", DAY + 10 * HOUR) is FilterDecision.DELIVER

    def test_window_wrapping_midnight(self):
        window = TimeWindow(22 * HOUR, 7 * HOUR)
        assert window.contains(23 * HOUR)
        assert window.contains(3 * HOUR)
        assert not window.contains(12 * HOUR)

    def test_window_boundaries_half_open(self):
        window = TimeWindow(9 * HOUR, 17 * HOUR)
        assert window.contains(9 * HOUR)
        assert not window.contains(17 * HOUR)

    def test_clear_window(self):
        policy = FilterPolicy()
        policy.set_delivery_window("X", TimeWindow(9 * HOUR, 10 * HOUR))
        policy.clear_delivery_window("X")
        assert policy.evaluate("X", 0.0) is FilterDecision.DELIVER

    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeWindow(5.0, 5.0)
        with pytest.raises(ConfigurationError):
            TimeWindow(-1.0, 5.0)
        with pytest.raises(ConfigurationError):
            TimeWindow(0.0, DAY)

    def test_disabled_beats_window(self):
        policy = FilterPolicy()
        policy.disable_category("X")
        policy.set_delivery_window("X", TimeWindow(0.0, 10.0))
        assert policy.evaluate("X", 5.0) is FilterDecision.CATEGORY_DISABLED
