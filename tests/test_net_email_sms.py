"""Unit tests for the email and SMS substrates."""

import pytest

from repro.errors import ChannelUnavailable, ConfigurationError
from repro.net import ChannelType, EmailService, LatencyModel, SMSGateway
from repro.sim import Environment, RngRegistry

FIXED = LatencyModel(median=10.0, sigma=0.0, low=0.0, high=1e6)


def make_email(loss=0.0):
    env = Environment()
    rng = RngRegistry(seed=2).stream("email")
    return env, EmailService(env, rng, latency=FIXED, loss_probability=loss)


def make_sms(loss=0.0):
    env = Environment()
    rng = RngRegistry(seed=2).stream("sms")
    return env, SMSGateway(env, rng, latency=FIXED, loss_probability=loss)


class TestEmail:
    def test_delivery_lands_in_mailbox_after_latency(self):
        env, service = make_email()
        service.send("src@mail", "mab@mail", "subj", "body")
        env.run()
        box = service.mailbox("mab@mail")
        assert box.unread_count == 1
        assert box.peek_unread()[0].subject == "subj"
        assert service.stats.latencies == [10.0]

    def test_receive_marks_read(self):
        env, service = make_email()
        service.send("src@mail", "mab@mail", "subj", "body")
        got = []

        def reader(env):
            msg = yield service.mailbox("mab@mail").receive()
            got.append(msg)

        env.process(reader(env))
        env.run()
        box = service.mailbox("mab@mail")
        assert [m.body for m in got] == ["body"]
        assert box.unread_count == 0
        assert [m.body for m in box.read] == ["body"]

    def test_mailbox_exists_without_recipient_online(self):
        env, service = make_email()
        # No "login" concept: sending to a never-seen address just works.
        service.send("a@mail", "fresh@mail", "s", "b")
        env.run()
        assert service.mailbox("fresh@mail").unread_count == 1

    def test_down_relay_rejects_submission(self):
        env, service = make_email()
        service.set_available(False)
        with pytest.raises(ChannelUnavailable):
            service.send("a@mail", "b@mail", "s", "b")
        assert service.stats.rejected == 1

    def test_loss(self):
        env, service = make_email(loss=1.0)
        service.send("a@mail", "b@mail", "s", "b")
        env.run()
        assert service.stats.lost == 1
        assert service.mailbox("b@mail").unread_count == 0

    def test_importance_header(self):
        env, service = make_email()
        msg = service.send("a@mail", "b@mail", "s", "b", importance="high")
        assert msg.headers["importance"] == "high"
        assert msg.channel is ChannelType.EMAIL
        env.run()

    def test_long_tail_latency_distribution(self):
        env = Environment()
        rng = RngRegistry(seed=9).stream("email")
        service = EmailService(env, rng)  # default long-tailed model
        for i in range(300):
            service.send("a@mail", "b@mail", "s", f"b{i}")
        env.run()
        lats = sorted(service.stats.latencies)
        assert lats[0] >= 2.0
        # Median in the tens of seconds, p95 at least minutes: "seconds to days".
        median = lats[len(lats) // 2]
        assert 5.0 < median < 120.0
        assert lats[int(len(lats) * 0.95)] > 120.0


class TestSMS:
    def test_delivery_to_phone(self):
        env, gateway = make_sms()
        gateway.send("mab", "+14255550100", "alert!")
        env.run()
        phone = gateway.phone("+14255550100")
        assert len(phone.inbox) == 1

    def test_truncation_to_160_chars(self):
        env, gateway = make_sms()
        msg = gateway.send("mab", "+1", "x" * 500)
        assert len(msg.body) == 160
        env.run()

    def test_unreachable_phone_silently_drops(self):
        env, gateway = make_sms()
        gateway.set_reachable("+1", False)
        gateway.send("mab", "+1", "lost")
        env.run()
        assert gateway.stats.lost == 1
        assert len(gateway.phone("+1").inbox) == 0

    def test_gateway_accepts_submission_even_for_unreachable_phone(self):
        # The sender cannot observe unreachability — the core reason blanket
        # SMS redundancy gives no guarantee (§2.3).
        env, gateway = make_sms()
        gateway.set_reachable("+1", False)
        msg = gateway.send("mab", "+1", "lost")
        assert msg is not None
        assert gateway.stats.submitted == 1
        env.run()

    def test_reachable_again_resumes_delivery(self):
        env, gateway = make_sms()
        gateway.set_reachable("+1", False)
        gateway.set_reachable("+1", True)
        gateway.send("mab", "+1", "ok")
        env.run()
        assert len(gateway.phone("+1").inbox) == 1

    def test_down_gateway_rejects(self):
        env, gateway = make_sms()
        gateway.set_available(False)
        with pytest.raises(ChannelUnavailable):
            gateway.send("mab", "+1", "x")

    def test_loss(self):
        env, gateway = make_sms(loss=1.0)
        gateway.send("mab", "+1", "x")
        env.run()
        assert gateway.stats.lost == 1


class TestLatencyModel:
    def test_invalid_models_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(median=0.0, sigma=1.0, low=0.0, high=1.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(median=1.0, sigma=-1.0, low=0.0, high=1.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(median=1.0, sigma=1.0, low=5.0, high=1.0)

    def test_zero_sigma_is_deterministic_clipped(self):
        rng = RngRegistry(seed=0).stream("x")
        model = LatencyModel(median=100.0, sigma=0.0, low=0.0, high=50.0)
        assert model.draw(rng) == 50.0

    def test_message_reply_swaps_endpoints(self):
        from repro.net import Message

        msg = Message(
            channel=ChannelType.IM,
            sender="a",
            recipient="b",
            body="hi",
            subject="s",
            correlation="c1",
        )
        reply = msg.reply_body("ack")
        assert reply.sender == "b" and reply.recipient == "a"
        assert reply.correlation == "c1"
        assert reply.subject == "Re: s"

    def test_channel_type_from_tag(self):
        assert ChannelType.from_tag("IM") is ChannelType.IM
        assert ChannelType.from_tag("EM") is ChannelType.EMAIL
        assert ChannelType.from_tag("SMS") is ChannelType.SMS
        with pytest.raises(ValueError):
            ChannelType.from_tag("FAX")
