"""Unit tests for the chaos testkit's pure parts.

Generator determinism and taxonomy coverage, schedule/reproducer JSON
round-trips, and the ddmin shrinker against synthetic predicates.  No
simulation runs here — the harness/oracle integration lives in
``test_chaos_oracle.py`` and ``test_chaos_smoke.py``.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import HOUR
from repro.sim.failures import FaultKind, ScheduledFault
from repro.testkit import (
    ChaosIntensity,
    FaultScheduleGenerator,
    Reproducer,
    ShrinkResult,
    dump_reproducer,
    fault_from_dict,
    fault_to_dict,
    load_reproducer,
    schedule_from_json,
    schedule_to_json,
    shrink,
)
from repro.testkit.generator import (
    ADVERSARY_FAULT_KINDS,
    PER_USER_KINDS,
    per_user_target,
)
from repro.testkit.sweep import trial_seed
from repro.workloads.faultload import (
    TARGET_EMAIL_SERVICE,
    TARGET_HOST,
    TARGET_IM_SERVICE,
    TARGET_SCREEN,
)

USERS = ["user0", "user1", "user2"]


class TestChaosIntensity:
    def test_defaults_valid(self):
        ChaosIntensity()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"faults_per_hour": -1.0},
            {"burst_probability": 1.5},
            {"burst_probability": -0.1},
            {"burst_max": 0},
            {"recovery_chaser_probability": 2.0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChaosIntensity(**kwargs)


class TestFaultScheduleGenerator:
    def test_same_seed_identical_schedule(self):
        a = FaultScheduleGenerator(seed=42, users=USERS).generate()
        b = FaultScheduleGenerator(seed=42, users=USERS).generate()
        assert schedule_to_json(a) == schedule_to_json(b)

    def test_different_seeds_differ(self):
        a = FaultScheduleGenerator(seed=1, users=USERS).generate()
        b = FaultScheduleGenerator(seed=2, users=USERS).generate()
        assert schedule_to_json(a) != schedule_to_json(b)

    def test_schedule_sorted_and_after_start(self):
        gen = FaultScheduleGenerator(seed=3, users=USERS, start=300.0)
        schedule = gen.generate()
        assert schedule
        times = [f.at for f in schedule]
        assert times == sorted(times)
        assert all(t >= 300.0 for t in times)

    def test_full_taxonomy_reachable(self):
        """Every FaultKind appears somewhere across a few seeds.

        The ship-link partition only exists for replicated pairs and the
        channel-adversary pulses only for adversarial mode, so the default
        generator never draws them — schedules stay bit-for-bit stable for
        pre-replication / pre-adversary seeds.
        """
        intensity = ChaosIntensity(faults_per_hour=60.0)
        seen = set()
        for seed in range(12):
            gen = FaultScheduleGenerator(
                seed=seed, users=USERS, duration=2 * HOUR, intensity=intensity
            )
            seen.update(f.kind for f in gen.generate())
        gated = {FaultKind.REPLICATION_LINK_DOWN} | set(ADVERSARY_FAULT_KINDS)
        assert seen == set(FaultKind) - gated

    def test_replication_taxonomy_reachable(self):
        """Replication mode additionally reaches the ship-link partition."""
        intensity = ChaosIntensity(faults_per_hour=60.0)
        seen = set()
        for seed in range(12):
            gen = FaultScheduleGenerator(
                seed=seed, users=USERS, duration=2 * HOUR,
                intensity=intensity, replication=True,
            )
            seen.update(f.kind for f in gen.generate())
        assert seen == set(FaultKind) - set(ADVERSARY_FAULT_KINDS)

    def test_adversarial_taxonomy_reachable(self):
        """Adversarial + replication mode reaches the whole taxonomy."""
        intensity = ChaosIntensity(faults_per_hour=60.0)
        seen = set()
        for seed in range(12):
            gen = FaultScheduleGenerator(
                seed=seed, users=USERS, duration=2 * HOUR,
                intensity=intensity, replication=True, adversarial=True,
            )
            seen.update(f.kind for f in gen.generate())
        assert seen == set(FaultKind)

    def test_adversarial_flag_leaves_base_schedules_unchanged(self):
        """The adversarial kinds ride a separate weight table: a fixed
        seed's non-adversarial schedule is bit-for-bit what it was before
        the taxonomy grew."""
        for replication in (False, True):
            a = FaultScheduleGenerator(
                seed=11, users=USERS, replication=replication
            ).generate()
            b = FaultScheduleGenerator(
                seed=11, users=USERS, replication=replication,
                adversarial=False,
            ).generate()
            assert schedule_to_json(a) == schedule_to_json(b)

    def test_adversary_pulses_carry_knob_params(self):
        """Every pulse pins probability (and its kind-specific knob)."""
        intensity = ChaosIntensity(faults_per_hour=60.0)
        pulses = []
        for seed in range(8):
            gen = FaultScheduleGenerator(
                seed=seed, users=USERS, intensity=intensity, adversarial=True
            )
            pulses.extend(
                f for f in gen.generate()
                if f.kind in ADVERSARY_FAULT_KINDS
            )
        assert pulses
        for fault in pulses:
            assert 0.0 < fault.params["probability"] <= 1.0
            assert fault.duration > 0
            if fault.kind is FaultKind.LINK_REORDER:
                assert fault.params["horizon"] > 0
            if fault.kind is FaultKind.LINK_DUPLICATE:
                assert 2 <= fault.params["copies"] <= 5

    def test_targets_are_wireable(self):
        """Every emitted target is one the harness registers a handler for."""
        global_targets = {
            TARGET_IM_SERVICE, TARGET_EMAIL_SERVICE, TARGET_HOST, TARGET_SCREEN,
        }
        per_user = {
            per_user_target(kind, user)
            for kind in PER_USER_KINDS
            for user in USERS
        }
        intensity = ChaosIntensity(faults_per_hour=40.0)
        for seed in range(5):
            gen = FaultScheduleGenerator(
                seed=seed, users=USERS, intensity=intensity
            )
            for fault in gen.generate():
                assert fault.target in global_targets | per_user

    def test_bursts_stack_compound_faults(self):
        intensity = ChaosIntensity(
            faults_per_hour=20.0, burst_probability=1.0, burst_max=3
        )
        gen = FaultScheduleGenerator(seed=7, users=USERS, intensity=intensity)
        schedule = gen.generate()
        gaps = [
            b.at - a.at for a, b in zip(schedule, schedule[1:])
        ]
        # Every base fault seeds a burst within 45 s, so tight gaps dominate.
        assert any(g <= intensity.burst_window for g in gaps)

    def test_intensity_scales_volume(self):
        quiet = FaultScheduleGenerator(
            seed=9, users=USERS,
            intensity=ChaosIntensity(faults_per_hour=2.0),
        ).generate()
        loud = FaultScheduleGenerator(
            seed=9, users=USERS,
            intensity=ChaosIntensity(faults_per_hour=40.0),
        ).generate()
        assert len(loud) > len(quiet)

    def test_window_end_covers_durations(self):
        gen = FaultScheduleGenerator(seed=5, users=USERS)
        schedule = [
            ScheduledFault(at=100.0, kind=FaultKind.IM_SERVICE_OUTAGE,
                           target=TARGET_IM_SERVICE, duration=600.0),
            ScheduledFault(at=500.0, kind=FaultKind.CLIENT_LOGOUT,
                           target="im-client:user0"),
        ]
        assert gen.window_end(schedule) == 700.0
        assert gen.window_end([]) == gen.start

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultScheduleGenerator(seed=0, users=[])
        with pytest.raises(ConfigurationError):
            FaultScheduleGenerator(seed=0, users=USERS, duration=0.0)

    def test_trial_seed_decorrelated_and_stable(self):
        assert trial_seed(11, 0) == trial_seed(11, 0)
        seeds = {trial_seed(11, i) for i in range(50)}
        assert len(seeds) == 50


class TestScheduleSerialization:
    def _fault(self):
        return ScheduledFault(
            at=120.5,
            kind=FaultKind.MEMORY_LEAK,
            target="mab:user1",
            params={"megabytes": 250.0},
        )

    def test_fault_round_trip(self):
        fault = self._fault()
        assert fault_from_dict(fault_to_dict(fault)) == fault

    def test_schedule_round_trip(self):
        schedule = FaultScheduleGenerator(seed=21, users=USERS).generate()
        assert schedule_from_json(schedule_to_json(schedule)) == schedule

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            fault_from_dict({"at": 0.0, "kind": "gamma_ray", "target": "host"})

    def test_reproducer_round_trip(self, tmp_path):
        reproducer = Reproducer(
            seed=1234,
            schedule=[self._fault()],
            config={"seed": 1234, "n_users": 2},
            note="unit-test pin",
            violations=["exactly_once"],
        )
        path = dump_reproducer(reproducer, tmp_path / "pin" / "repro.json")
        assert path.exists()
        loaded = load_reproducer(path)
        assert loaded == reproducer
        # The on-disk form is plain reviewable JSON.
        payload = json.loads(path.read_text())
        assert payload["schedule"][0]["kind"] == "memory_leak"


def _make_schedule(n):
    return [
        ScheduledFault(
            at=float(60 * (i + 1)),
            kind=FaultKind.CLIENT_LOGOUT,
            target=f"im-client:user{i % 3}",
        )
        for i in range(n)
    ]


class TestShrink:
    def test_reduces_to_essential_pair(self):
        schedule = _make_schedule(12)
        essential = [schedule[3], schedule[9]]

        def fails(candidate):
            return all(f in candidate for f in essential)

        result = shrink(schedule, fails)
        assert result.schedule == essential
        assert result.minimal
        assert result.removed == 10
        assert result.steps[-1] == 2

    def test_single_essential_fault(self):
        schedule = _make_schedule(8)
        target = schedule[5]
        result = shrink(schedule, lambda c: target in c)
        assert result.schedule == [target]
        assert result.minimal

    def test_everything_essential_is_untouched(self):
        schedule = _make_schedule(4)
        result = shrink(schedule, lambda c: len(c) == 4)
        assert result.schedule == schedule
        assert result.minimal
        assert result.removed == 0

    def test_budget_exhaustion_reported(self):
        schedule = _make_schedule(30)
        essential = [schedule[7], schedule[23]]
        calls = []

        def fails(candidate):
            calls.append(len(candidate))
            return all(f in candidate for f in essential)

        result = shrink(schedule, fails, max_trials=3)
        assert result.trials == 3
        assert len(calls) == 3
        assert not result.minimal
        assert all(f in result.schedule for f in essential)

    def test_preserves_relative_order(self):
        schedule = _make_schedule(10)
        essential = [schedule[2], schedule[6], schedule[8]]
        result = shrink(
            schedule, lambda c: all(f in c for f in essential)
        )
        times = [f.at for f in result.schedule]
        assert times == sorted(times)

    def test_result_dataclass_accounting(self):
        result = ShrinkResult(
            schedule=_make_schedule(2), original_size=9, trials=5,
            minimal=True, steps=[5, 2],
        )
        assert result.removed == 7
