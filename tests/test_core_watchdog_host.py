"""Unit tests for the MDC watchdog and the Host machine model."""

import pytest

from repro.core.host import Host
from repro.core.watchdog import (
    MasterDaemonController,
    RestartReason,
)
from repro.sim import Environment, MINUTE


class FakeBuddy:
    """Minimal Watchable used to test the MDC protocol in isolation."""

    def __init__(self, env, behaviour="healthy"):
        self.env = env
        self.behaviour = behaviour
        self.process = None
        self.started = 0
        self.terminated = []

    def start(self):
        self.started += 1
        self.process = self.env.process(self._run(), name="fake-buddy")
        return self.process

    def _run(self):
        from repro.errors import Interrupt

        try:
            if self.behaviour == "dies-quickly":
                yield self.env.timeout(10.0)
                return
            yield self.env.timeout(10**9)
        except Interrupt:
            return  # killed — like the real buddy, exit cleanly

    def attach_mdc(self, request, reply):
        def client(env):
            yield request
            if self.behaviour != "hung":
                reply.succeed()

        self.env.process(client(self.env), name="fake-mdc-client")

    def force_terminate(self, cause):
        self.terminated.append(cause)
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(cause)


def make_mdc(env, behaviours, **kwargs):
    """MDC whose factory pops behaviours (last one repeats forever)."""
    host = Host(env, boot_delay=30.0)
    queue = list(behaviours)
    made = []

    def factory():
        behaviour = queue.pop(0) if len(queue) > 1 else queue[0]
        buddy = FakeBuddy(env, behaviour)
        made.append(buddy)
        return buddy

    mdc = MasterDaemonController(
        env, host, factory, check_interval=60.0, reply_timeout=5.0, **kwargs
    )
    return mdc, host, made


class TestWatchdog:
    def test_start_launches_buddy(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.start()
        env.run(until=10 * MINUTE)
        assert len(made) == 1
        assert made[0].started == 1
        assert mdc.restarts == []

    def test_healthy_buddy_probed_but_never_restarted(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.start()
        env.run(until=30 * MINUTE)
        assert mdc.restarts == []

    def test_termination_detected_and_restarted(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["dies-quickly", "healthy"])
        mdc.start()
        env.run(until=10 * MINUTE)
        assert any(r.reason is RestartReason.TERMINATION for r in mdc.restarts)
        assert len(made) >= 2
        assert made[-1].process.is_alive

    def test_hung_buddy_restarted_on_probe_timeout(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["hung", "healthy"])
        mdc.start()
        env.run(until=10 * MINUTE)
        assert any(
            r.reason is RestartReason.PROBE_TIMEOUT for r in mdc.restarts
        )
        # The hung incarnation was killed before relaunch.
        assert made[0].terminated

    def test_reboot_after_max_failed_restarts(self):
        env = Environment()
        mdc, host, made = make_mdc(
            env, ["dies-quickly"], max_failed_restarts=2,
            stability_window=10 * MINUTE,
        )
        mdc.start()
        env.run(until=30 * MINUTE)
        assert mdc.reboots_requested >= 1
        assert host.reboots >= 1
        # After boot, the MDC came back and launched a fresh buddy.
        assert made[-1].started == 1

    def test_stability_window_resets_failure_count(self):
        env = Environment()
        # healthy buddy; inject two manual kills far apart.
        mdc, host, made = make_mdc(
            env, ["healthy"], max_failed_restarts=2,
            stability_window=5 * MINUTE,
        )
        mdc.start()

        def killer(env):
            for _ in range(4):
                yield env.timeout(20 * MINUTE)  # > stability window apart
                buddy = mdc.buddy
                if buddy is not None and buddy.process.is_alive:
                    buddy.process.interrupt("test kill")

        env.process(killer(env))
        env.run(until=2 * 3600)
        # Four restarts but never a reboot: stability resets the counter.
        assert len(mdc.restarts) == 4
        assert mdc.reboots_requested == 0

    def test_host_down_stops_monitoring(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.start()

        def outage(env):
            yield env.timeout(5 * MINUTE)
            host.power_failure(10 * MINUTE)

        env.process(outage(env))
        env.run(until=12 * MINUTE)
        assert not made[0].process.is_alive  # killed by host-down hook
        env.run(until=40 * MINUTE)
        # Rebooted: the MDC relaunched a buddy.
        assert made[-1].process.is_alive

    def test_start_idempotent(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.start()
        mdc.start()
        env.run(until=5 * MINUTE)
        assert len(made) == 1


class TestWatchdogEdges:
    def test_plain_stop_leaves_buddy_running_unmonitored(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.start()
        env.run(until=5 * MINUTE)
        mdc.stop()
        # Hand-over semantics: the incarnation keeps running...
        assert made[0].process.is_alive
        # ...but if it dies later, nobody restarts it.
        made[0].process.interrupt("test kill")
        env.run(until=30 * MINUTE)
        assert len(made) == 1
        assert mdc.restarts == []

    def test_stop_terminate_buddy_kills_incarnation(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.start()
        env.run(until=5 * MINUTE)
        mdc.stop(terminate_buddy=True)
        env.run(until=6 * MINUTE)
        assert made[0].terminated == ["MDC stop"]
        assert not made[0].process.is_alive
        env.run(until=30 * MINUTE)
        assert len(made) == 1, "stopped MDC relaunched a buddy"

    def test_no_probe_restarts_while_host_down(self):
        """The probe cycle is a no-op for the whole outage: monitoring
        stops on shutdown and the boot-time relaunch is a start, not a
        restart."""
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.start()
        env.run(until=5 * MINUTE)
        host.power_failure(20 * MINUTE)
        assert not mdc.running
        assert mdc.buddy is None
        env.run(until=24 * MINUTE)  # still down (power back 25' + 30 s boot)
        assert mdc.restarts == []
        env.run(until=40 * MINUTE)
        assert made[-1].process.is_alive
        assert mdc.restarts == []

    def test_consecutive_failed_clears_after_stability_window(self):
        env = Environment()
        mdc, host, made = make_mdc(
            env, ["dies-quickly", "healthy"],
            max_failed_restarts=5, stability_window=5 * MINUTE,
        )
        mdc.start()
        env.run(until=2 * MINUTE)
        assert mdc._consecutive_failed == 1
        env.run(until=30 * MINUTE)
        assert mdc._consecutive_failed == 0

    def test_reboot_rearms_monitoring_after_boot(self):
        """Hitting max_failed_restarts reboots the host; the boot hook
        must bring back a *monitoring* MDC, not just a launched buddy."""
        env = Environment()
        mdc, host, made = make_mdc(
            env,
            ["dies-quickly", "dies-quickly", "dies-quickly", "healthy"],
            max_failed_restarts=2, stability_window=10 * MINUTE,
        )
        mdc.start()
        env.run(until=40 * MINUTE)
        assert mdc.reboots_requested == 1
        healthy = made[-1]
        assert healthy.process.is_alive
        # Kill the post-reboot buddy: the re-armed monitor must notice.
        healthy.process.interrupt("test kill")
        env.run(until=80 * MINUTE)
        assert made[-1] is not healthy
        assert made[-1].process.is_alive
        assert any(r.at > 40 * MINUTE for r in mdc.restarts)

    def test_resurrection_gate_blocks_boot_relaunch(self):
        env = Environment()
        mdc, host, made = make_mdc(env, ["healthy"])
        mdc.resurrection_gate = lambda: False
        mdc.start()  # explicit start is not gated — only boot-time is
        env.run(until=2 * MINUTE)
        assert len(made) == 1
        host.reboot()
        env.run(until=30 * MINUTE)
        assert len(made) == 1, "gated MDC relaunched at boot"
        assert not mdc.running


class TestHost:
    def test_defaults_up(self):
        env = Environment()
        host = Host(env)
        assert host.up and host.powered and host.booted

    def test_power_failure_without_ups(self):
        env = Environment()
        host = Host(env, boot_delay=60.0)
        down, up = [], []
        host.on_shutdown(lambda: down.append(env.now))
        host.on_boot(lambda: up.append(env.now))

        def scenario(env):
            yield env.timeout(100.0)
            assert host.power_failure(300.0) is True
            assert not host.up

        env.process(scenario(env))
        env.run(until=1000.0)
        assert down == [100.0]
        assert up == [460.0]  # restore at 400 + 60 boot
        assert host.up

    def test_ups_rides_out_outage(self):
        env = Environment()
        host = Host(env, has_ups=True)
        down = []
        host.on_shutdown(lambda: down.append(env.now))
        assert host.power_failure(300.0) is False
        assert host.up
        assert down == []
        assert host.power_events[0].survived_on_ups

    def test_reboot_cycle(self):
        env = Environment()
        host = Host(env, boot_delay=30.0)
        events = []
        host.on_shutdown(lambda: events.append(("down", env.now)))
        host.on_boot(lambda: events.append(("up", env.now)))
        host.reboot()
        assert not host.up
        env.run(until=100.0)
        assert events == [("down", 0.0), ("up", 30.0)]
        assert host.reboots == 1

    def test_reboot_while_down_ignored(self):
        env = Environment()
        host = Host(env)
        host.reboot()
        host.reboot()
        assert host.reboots == 1

    def test_invalid_outage_duration(self):
        env = Environment()
        with pytest.raises(ValueError):
            Host(env).power_failure(0.0)

    def test_going_down_clears_screen(self):
        env = Environment()
        host = Host(env)
        host.screen.pop_dialog("Stuck forever", ("OK",))
        host.reboot()
        assert host.screen.open_dialogs() == []
