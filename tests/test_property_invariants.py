"""Property-based tests on core cross-module invariants.

These are the load-bearing guarantees of the architecture:

1. **Fallback totality** — executing any delivery mode terminates with
   either a successful block or a recorded failure for *every* block;
   alerts are never silently dropped by the engine.
2. **Ack soundness** — a delivery reported as ack-confirmed implies the
   recipient actually received the message.
3. **SSS timeout algebra** — a variable times out iff its refreshes stop
   for longer than ``refresh_period * (max_missed + 1)``.
4. **Delivery-mode XML totality** — any mode the model accepts round-trips
   through XML.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.aladdin.sss import SoftStateStore
from repro.clients import Screen
from repro.core import (
    Action,
    AddressBook,
    CommunicationBlock,
    DeliveryMode,
    SimbaEndpoint,
    UserAddress,
)
from repro.core.endpoint import make_ack_body
from repro.core.router import BlockStatus
from repro.net import (
    ChannelType,
    EmailService,
    IMService,
    LatencyModel,
    SMSGateway,
)
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=0.3, sigma=0.0, low=0.0, high=5.0)

# ---------------------------------------------------------------------------
# Strategy: arbitrary delivery modes over a fixed three-address book
# ---------------------------------------------------------------------------

ADDRESS_NAMES = ["IM", "SMS", "Email", "Ghost"]  # Ghost never exists

actions = st.sampled_from(ADDRESS_NAMES)
blocks = st.builds(
    lambda refs, ack, timeout: CommunicationBlock(
        [Action(r) for r in refs], require_ack=ack, ack_timeout=timeout
    ),
    st.lists(actions, min_size=1, max_size=3, unique=True),
    st.booleans(),
    st.floats(min_value=1.0, max_value=20.0),
)
modes = st.builds(
    lambda bs: DeliveryMode("prop-mode", bs),
    st.lists(blocks, min_size=1, max_size=4),
)
# Which of the real addresses are enabled / online this run.
toggles = st.fixed_dictionaries(
    {
        "im_enabled": st.booleans(),
        "sms_enabled": st.booleans(),
        "email_enabled": st.booleans(),
        "recipient_online": st.booleans(),
        "recipient_acks": st.booleans(),
        "email_up": st.booleans(),
        "sms_up": st.booleans(),
    }
)


def build_rig(cfg):
    env = Environment()
    rngs = RngRegistry(seed=1)
    im = IMService(env, rngs.stream("im"), latency=FAST)
    email = EmailService(env, rngs.stream("email"), latency=FAST,
                         loss_probability=0.0)
    sms = SMSGateway(env, rngs.stream("sms"), latency=FAST,
                     loss_probability=0.0)
    email.set_available(cfg["email_up"])
    sms.set_available(cfg["sms_up"])
    endpoint = SimbaEndpoint(
        env, "src", Screen(env), im, email, sms, "src@im", "src@mail",
        auto_ack=False,
    )
    endpoint.start()
    im.register_account("peer@im")
    if cfg["recipient_online"]:
        session = im.login("peer@im")
        if cfg["recipient_acks"]:
            def acker(env):
                while session.active:
                    message = yield session.receive()
                    yield env.timeout(0.2)
                    session.send(message.sender, make_ack_body(message.seq))

            env.process(acker(env))
    book = AddressBook(owner="peer")
    book.add(UserAddress("IM", ChannelType.IM, "peer@im",
                         enabled=cfg["im_enabled"]))
    book.add(UserAddress("SMS", ChannelType.SMS, "+1555",
                         enabled=cfg["sms_enabled"]))
    book.add(UserAddress("Email", ChannelType.EMAIL, "peer@mail",
                         enabled=cfg["email_enabled"]))
    return env, endpoint, book


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(mode=modes, cfg=toggles)
def test_fallback_totality_and_ack_soundness(mode, cfg):
    env, endpoint, book = build_rig(cfg)
    proc = env.process(
        endpoint.engine.execute(mode, book, "s", "b", "corr")
    )
    env.run(until=proc)
    outcome = proc.value

    # 1. Totality: exactly one success (the last examined block) or every
    #    block examined and failed; never an unexamined gap before a result.
    statuses = [b.status for b in outcome.blocks]
    if outcome.delivered:
        assert statuses[-1] is BlockStatus.SUCCESS
        assert all(s is not BlockStatus.SUCCESS for s in statuses[:-1])
        assert len(outcome.blocks) <= len(mode.blocks)
    else:
        assert len(outcome.blocks) == len(mode.blocks)
        assert all(s is not BlockStatus.SUCCESS for s in statuses)

    # 2. Bookkeeping: the ack table never leaks pending entries.
    env.run(until=env.now + 60.0)
    assert len(endpoint.engine.acks) == 0

    # 3. Ack soundness: an acked block implies an online recipient that acks.
    for block in outcome.blocks:
        if block.acked_by is not None:
            assert cfg["recipient_online"] and cfg["recipient_acks"]
            assert cfg["im_enabled"]

    # 4. Disabled addresses are never submitted to.
    for block_outcome, block in zip(outcome.blocks, mode.blocks):
        for name in block_outcome.submitted:
            if name != "Ghost":
                assert book.get(name).enabled


@settings(max_examples=40, deadline=None)
@given(
    period=st.floats(min_value=0.5, max_value=20.0),
    max_missed=st.integers(min_value=0, max_value=5),
    refreshes=st.integers(min_value=0, max_value=12),
    gap_factor=st.floats(min_value=0.1, max_value=3.0),
)
def test_sss_timeout_algebra(period, max_missed, refreshes, gap_factor):
    """Timeout fires iff the silent gap exceeds period * (max_missed + 1)."""
    env = Environment()
    store = SoftStateStore(env, "pc")
    store.define_type("t")
    store.create("v", "t", 0, refresh_period=period, max_missed=max_missed)

    def refresher(env):
        for _ in range(refreshes):
            yield env.timeout(period)
            store.refresh("v")

    env.process(refresher(env))
    last_refresh_time = refreshes * period
    deadline = last_refresh_time + period * (max_missed + 1)
    observe_at = last_refresh_time + period * (max_missed + 1) * gap_factor
    env.run(until=observe_at)
    variable = store.variable("v")
    scan = SoftStateStore.SCAN_INTERVAL
    if observe_at > deadline + scan:
        assert variable.timed_out
    elif observe_at < deadline:
        assert not variable.timed_out
    # (within one scan interval of the deadline either answer is legal)
