"""Trace-golden determinism tests.

Two properties, both byte-level:

1. Installing a :class:`repro.obs.TraceSink` must not perturb the run —
   the golden farm's journal serialization with tracing ENABLED is
   byte-identical to ``tests/data/golden_farm_seed.json`` (which is
   regenerated untraced).  Tracing is pure observation; any RNG draw,
   scheduled event or ordering change inside the instrumentation shows
   up here first.
2. The trace itself is deterministic — the normalized span record is
   byte-identical to ``tests/data/trace/golden_farm_trace.json`` run
   after run.  Regenerate with ``python -m tests.golden_farm`` after an
   intentional instrumentation change.
"""

import json

import pytest

from tests.golden_farm import (
    GOLDEN_FARM_PATH,
    GOLDEN_FARM_TRACE_PATH,
    run_golden_farm,
    serialize_farm_journals,
    serialize_farm_trace,
)


@pytest.fixture(scope="module")
def traced_run():
    from repro.obs import TraceSink

    sink = TraceSink()
    farm = run_golden_farm(tracer=sink)
    return farm, sink


class TestTraceGolden:
    def test_journals_unchanged_by_tracing(self, traced_run):
        """The traced run's journals match the untraced golden byte for
        byte — the zero-perturbation contract."""
        farm, _sink = traced_run
        fresh = serialize_farm_journals(farm) + "\n"
        assert fresh == GOLDEN_FARM_PATH.read_text(), (
            "enabling tracing changed the farm's journals; the sink must "
            "never draw randomness or schedule events"
        )

    def test_trace_matches_golden(self, traced_run):
        _farm, sink = traced_run
        fresh = serialize_farm_trace(sink) + "\n"
        assert fresh == GOLDEN_FARM_TRACE_PATH.read_text(), (
            "trace diverged from tests/data/trace/golden_farm_trace.json; "
            "if the instrumentation change is intentional run "
            "`python -m tests.golden_farm`"
        )

    def test_trace_covers_the_whole_causal_path(self, traced_run):
        """Sanity floor so the golden cannot silently go hollow: the
        scripted scenario exercises sends, transits, receives, trips,
        stages, deliveries and a crash-recovery replay."""
        _farm, sink = traced_run
        names = {span.name for span in sink.all_spans()}
        for expected in (
            "source.deliver", "deliver", "block", "ack.wait", "transit.IM",
            "transit.EM", "receive", "trip", "stage.classify", "stage.route",
            "deliver.user", "recovery.replay",
        ):
            # (mdc.restart/failover spans need the chaos harness — the
            # scripted farm relaunches its crashed tenant by hand; those
            # names are asserted in test_trace_oracle.py instead.)
            assert expected in names, f"no {expected!r} span in golden farm"
        assert sink.dropped_traces == 0
        assert sink.dropped_spans == 0

    def test_golden_file_is_valid_json_with_normalized_ids(self):
        payload = json.loads(GOLDEN_FARM_TRACE_PATH.read_text())
        alert_ids = [
            t["trace_id"] for t in payload["traces"]
            if not t["trace_id"].startswith("lifecycle:")
        ]
        assert alert_ids[:3] == ["A1", "A2", "A3"]
        assert payload["dropped_traces"] == 0
        assert payload["dropped_spans"] == 0
