"""Unit tests for the tracing substrate: TraceSink, Span, render helpers.

These exercise the sink in isolation against a stub environment (all the
sink needs is ``.now`` and a ``tracer`` slot) — the end-to-end properties
(byte-identical journals, stable goldens, oracle integration) live in
``test_trace_golden.py`` / ``test_trace_oracle.py``.
"""

import pickle

import pytest

from repro.obs import (
    LIFECYCLE_PREFIX,
    Span,
    TraceSink,
    attribute_spans,
    lifecycle_trace,
    render_attribution,
    render_span_tree,
)


class FakeEnv:
    """Just enough environment for a sink: a clock and a tracer slot."""

    def __init__(self):
        self.now = 0.0
        self.tracer = None


def make_sink(**kwargs):
    env = FakeEnv()
    return TraceSink(**kwargs).install(env), env


class TestLifecycleTrace:
    def test_prefix(self):
        assert lifecycle_trace("mdc:user0") == "lifecycle:mdc:user0"
        assert lifecycle_trace("x").startswith(LIFECYCLE_PREFIX)


class TestSpan:
    def test_open_span_duration_zero(self):
        span = Span(span_id=1, trace_id="a", name="x", start=3.0)
        assert not span.closed
        assert span.duration == 0.0

    def test_closed_span_duration(self):
        span = Span(span_id=1, trace_id="a", name="x", start=3.0, end=5.5)
        assert span.closed
        assert span.duration == 2.5

    def test_to_row_omits_unset_fields(self):
        span = Span(span_id=7, trace_id="a", name="x", start=1.0)
        row = span.to_row()
        assert row == {
            "span_id": 7, "trace_id": "a", "name": "x", "start": "1.0",
        }

    def test_to_row_floats_via_repr_and_sorted_annotations(self):
        span = Span(
            span_id=1, trace_id="a", name="x", start=0.1, end=0.3,
            outcome="ok", annotations={"zeta": 0.2, "alpha": "v"},
        )
        row = span.to_row()
        assert row["start"] == repr(0.1)
        assert row["end"] == repr(0.3)
        assert list(row["annotations"]) == ["alpha", "zeta"]
        assert row["annotations"]["zeta"] == repr(0.2)

    def test_to_row_trace_id_override(self):
        span = Span(span_id=1, trace_id="alert-9", name="x", start=0.0)
        assert span.to_row("A1")["trace_id"] == "A1"


class TestTraceSinkRecording:
    def test_span_ids_are_sequential_from_one(self):
        sink, _ = make_sink()
        a = sink.begin("t", "first")
        b = sink.begin("t", "second")
        c = sink.event("u", "third")
        assert (a.span_id, b.span_id, c.span_id) == (1, 2, 3)

    def test_begin_uses_env_now_and_retroactive_start(self):
        sink, env = make_sink()
        env.now = 10.0
        live = sink.begin("t", "live")
        retro = sink.begin("t", "transit", start=4.0)
        assert live.start == 10.0
        assert retro.start == 4.0

    def test_end_records_now_outcome_and_annotations(self):
        sink, env = make_sink()
        span = sink.begin("t", "op", color="red")
        env.now = 2.0
        sink.end(span, "failed", reason="timeout")
        assert span.end == 2.0
        assert span.outcome == "failed"
        assert span.annotations == {"color": "red", "reason": "timeout"}

    def test_event_is_zero_duration(self):
        sink, env = make_sink()
        env.now = 7.0
        span = sink.event("t", "promoted", epoch=2)
        assert span.closed
        assert span.start == span.end == 7.0
        assert span.duration == 0.0
        assert span.outcome == "ok"

    def test_parent_threading(self):
        sink, _ = make_sink()
        root = sink.begin("t", "root")
        child = sink.begin("t", "child", parent=root.span_id)
        assert child.parent_id == root.span_id

    def test_reading_api(self):
        sink, _ = make_sink()
        sink.begin("b", "one")
        sink.begin("a", "two")
        sink.begin("b", "one")
        assert sink.trace_ids() == ["b", "a"]  # first-appearance order
        assert [s.name for s in sink.spans("b")] == ["one", "one"]
        assert sink.spans("missing") == []
        assert sink.span_count() == 3
        assert len(sink.find_spans("one")) == 2
        assert len(list(sink.all_spans())) == 3

    def test_spans_returns_a_copy(self):
        sink, _ = make_sink()
        sink.begin("t", "x")
        sink.spans("t").clear()
        assert sink.span_count() == 1


class TestTraceSinkBounds:
    def test_trace_eviction_is_oldest_first_and_counted(self):
        sink, _ = make_sink(max_traces=2)
        sink.begin("t1", "a")
        sink.begin("t1", "b")
        sink.begin("t2", "c")
        sink.begin("t3", "d")  # evicts t1 (2 spans)
        assert sink.trace_ids() == ["t2", "t3"]
        assert sink.dropped_traces == 1
        assert sink.dropped_spans == 2

    def test_span_cap_per_trace(self):
        sink, _ = make_sink(max_spans_per_trace=2)
        sink.begin("t", "a")
        sink.begin("t", "b")
        extra = sink.begin("t", "c")
        assert sink.span_count() == 2
        assert sink.dropped_spans == 1
        # The uncounted span is still returned so the call site can
        # end() it without a None check.
        sink.end(extra, "ok")
        assert sink.span_count() == 2

    def test_defaults_never_evict_in_small_runs(self):
        sink, _ = make_sink()
        for i in range(50):
            sink.begin(f"t{i}", "x")
        assert sink.dropped_traces == 0
        assert sink.dropped_spans == 0


class TestTraceSinkInstall:
    def test_install_sets_tracer_slot(self):
        env = FakeEnv()
        sink = TraceSink().install(env)
        assert env.tracer is sink
        assert sink.env is env

    def test_uninstall_clears_slot(self):
        sink, env = make_sink()
        sink.uninstall()
        assert env.tracer is None
        assert sink.env is None

    def test_uninstall_leaves_a_newer_tracer_alone(self):
        env = FakeEnv()
        old = TraceSink().install(env)
        new = TraceSink().install(env)
        old.uninstall()
        assert env.tracer is new

    def test_pickle_drops_env_keeps_spans(self):
        sink, env = make_sink()
        env.now = 1.5
        sink.end(sink.begin("t", "op"), "ok")
        clone = pickle.loads(pickle.dumps(sink))
        assert clone.env is None
        assert [s.name for s in clone.spans("t")] == ["op"]
        assert clone.spans("t")[0].end == 1.5


class TestTraceSinkExport:
    def _populated(self):
        sink, env = make_sink()
        root = sink.begin("alert-42", "source.deliver")
        env.now = 0.25
        sink.end(root, "delivered")
        sink.event(lifecycle_trace("mdc:user0"), "mdc.restart")
        return sink

    def test_to_payload_shape(self):
        payload = self._populated().to_payload()
        assert sorted(payload) == ["dropped_spans", "dropped_traces", "traces"]
        assert [t["trace_id"] for t in payload["traces"]] == [
            "alert-42", "lifecycle:mdc:user0",
        ]

    def test_to_payload_rename_applies_to_rows(self):
        def norm(tid):
            return "A1" if tid == "alert-42" else tid

        payload = self._populated().to_payload(rename=norm)
        first = payload["traces"][0]
        assert first["trace_id"] == "A1"
        assert all(row["trace_id"] == "A1" for row in first["spans"])

    def test_to_json_is_deterministic(self):
        assert self._populated().to_json() == self._populated().to_json()


class TestRenderSpanTree:
    def _spans(self):
        sink, env = make_sink()
        root = sink.begin("t", "root", mode="normal")
        child = sink.begin("t", "child", parent=root.span_id)
        env.now = 2.0
        sink.end(child, "done")
        sink.begin("t", "open-leaf", parent=child.span_id)
        sink.end(root, "ok")
        return sink.spans("t")

    def test_tree_indents_by_parenthood(self):
        text = render_span_tree(self._spans(), title="t")
        lines = text.splitlines()
        assert lines[0] == "trace t"
        assert lines[1].startswith("  root [ok]")
        assert lines[1].endswith("mode=normal")
        assert lines[2].startswith("    child [done]")
        assert lines[3].startswith("      open-leaf […]")
        assert "(open)" in lines[3]

    def test_orphan_parent_becomes_root(self):
        spans = [Span(span_id=5, trace_id="t", name="x", start=1.0,
                      parent_id=999, end=2.0, outcome="ok")]
        text = render_span_tree(spans)
        assert "  x [ok]" in text

    def test_empty(self):
        assert "(no spans)" in render_span_tree([])


class TestAttribution:
    def test_buckets(self):
        def closed(sid, name, start, end, parent=None, **ann):
            return Span(span_id=sid, trace_id="t", name=name, start=start,
                        end=end, parent_id=parent, outcome="ok",
                        annotations=ann)

        spans = [
            closed(1, "source.deliver", 0.0, 10.0),
            closed(2, "stage.route", 1.0, 7.0),
            closed(3, "deliver.user", 2.0, 6.0, parent=2),
            closed(4, "ack.wait", 2.0, 5.0),
            closed(5, "transit.IM", 2.0, 3.0),
            closed(6, "failover.handoff", 7.0, 9.0),
            Span(span_id=7, trace_id="t", name="stage.retry", start=9.0),
        ]
        buckets = attribute_spans(spans)
        assert buckets["end_to_end"] == 10.0
        # Route work minus the nested deliver.user wait: 6 - 4 = 2.
        assert buckets["stage:route"] == 2.0
        assert buckets["channel:ack_wait"] == 3.0
        assert buckets["channel:transit:IM"] == 1.0
        assert buckets["failover:handoff"] == 2.0
        assert "stage:retry" not in buckets  # open spans never count

    def test_end_to_end_falls_back_to_span_extent(self):
        spans = [Span(span_id=1, trace_id="t", name="stage.filter",
                      start=2.0, end=5.0, outcome="ok")]
        assert attribute_spans(spans)["end_to_end"] == 3.0

    def test_render_attribution_sorts_largest_first(self):
        text = render_attribution(
            {"end_to_end": 4.0, "stage:route": 1.0, "channel:ack_wait": 3.0}
        )
        lines = text.splitlines()
        assert lines[0] == "end_to_end: 4.00s"
        assert lines[1].startswith("  channel:ack_wait: 3.00s (75%)")
        assert lines[2].startswith("  stage:route: 1.00s (25%)")

    def test_render_attribution_empty(self):
        assert render_attribution({}) == "(no closed spans)"
