"""Scheduler-layer tests: backend contract, wheel edge cases, pooling
guards, and the explicit timer lifecycle.

The randomized equivalence suite (``test_kernel_equivalence.py``) proves
both backends match the frozen reference on whole programs; this module
pins the *local* invariants — NaN rejection, queue accounting, wheel
geometry corners, reuse-after-free guards — with small deterministic
scenarios, so a regression fails here with a readable name instead of a
30-seed trace diff.
"""

import pytest

from repro.errors import (
    ConfigurationError,
    Interrupt,
    PoolError,
    SimulationError,
)
from repro.sim import Environment
from repro.sim.pool import EventPool
from repro.sim.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULER_ENV_VAR,
    HeapScheduler,
    make_scheduler,
)
from repro.sim.wheel import WheelScheduler

BACKENDS = ("heap", "wheel")


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_explicit_names(self):
        assert isinstance(Environment(scheduler="heap").scheduler,
                          HeapScheduler)
        assert isinstance(Environment(scheduler="wheel").scheduler,
                          WheelScheduler)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            Environment(scheduler="fibonacci")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "heap")
        assert Environment().scheduler.name == "heap"
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "wheel")
        assert Environment().scheduler.name == "wheel"

    def test_argument_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "heap")
        assert Environment(scheduler="wheel").scheduler.name == "wheel"

    def test_default_is_wheel(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV_VAR, raising=False)
        assert DEFAULT_SCHEDULER == "wheel"
        assert Environment().scheduler.name == "wheel"

    def test_make_scheduler_normalizes_name(self):
        env = Environment(scheduler="heap")
        assert make_scheduler(env, " Wheel ").name == "wheel"


# ----------------------------------------------------------------------
# Satellite: NaN delays must be rejected, never enqueued
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestNaNRejection:
    """A NaN deadline never compares, so one in a heap or a wheel slot
    silently corrupts the pop order for the rest of the run.  Both
    entry points must reject it loudly instead."""

    def test_schedule_nan_delay(self, backend):
        env = Environment(scheduler=backend)
        event = env.event()
        with pytest.raises(ValueError, match="NaN"):
            env.schedule(event, delay=float("nan"))
        assert env.queue_depth == 0

    def test_timeout_nan_delay(self, backend):
        env = Environment(scheduler=backend)
        with pytest.raises(ValueError):
            env.timeout(float("nan"))
        assert env.queue_depth == 0

    def test_timeout_nan_delay_with_warm_pool(self, backend):
        # The pooled fast path guards with ``delay >= 0.0`` — NaN fails
        # that comparison and must fall through to the raising
        # constructor, not reuse a pooled timer.
        env = Environment(scheduler=backend)
        for _ in range(4):
            env.timeout(0.5)
        env.run(until=2.0)
        assert len(env.scheduler.pool.timeouts) > 0
        with pytest.raises(ValueError):
            env.timeout(float("nan"))

    def test_negative_delay_still_rejected(self, backend):
        env = Environment(scheduler=backend)
        with pytest.raises(ValueError):
            env.timeout(-1.0)
        event = env.event()
        with pytest.raises(ValueError, match="past"):
            env.schedule(event, delay=-0.25)


# ----------------------------------------------------------------------
# Satellite: run(until=event) must deregister on queue exhaustion
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestRunUntilEventExhaustion:
    def test_stop_callback_deregistered(self, backend):
        env = Environment(scheduler=backend)
        never = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError, match="exhausted"):
            env.run(until=never)
        # The stale callback is gone: triggering the event later must
        # not raise StopSimulation into an unrelated drain.
        assert env._stop_on_event not in never.callbacks

    def test_event_usable_after_exhausted_run(self, backend):
        env = Environment(scheduler=backend)
        flag = env.event()
        with pytest.raises(SimulationError):
            env.run(until=flag)

        seen = []

        def waiter(env, flag):
            value = yield flag
            seen.append(value)

        env.process(waiter(env, flag))
        flag.succeed("late")
        env.run()  # must terminate normally, not via StopSimulation
        assert seen == ["late"]

    def test_second_run_until_event_succeeds(self, backend):
        env = Environment(scheduler=backend)
        flag = env.event()
        with pytest.raises(SimulationError):
            env.run(until=flag)

        def firer(env, flag):
            yield env.timeout(3.0)
            flag.succeed(42)

        env.process(firer(env, flag))
        assert env.run(until=flag) == 42
        assert env.now == 3.0


# ----------------------------------------------------------------------
# Wheel geometry edge cases
# ----------------------------------------------------------------------


class TestWheelEdgeCases:
    """Deterministic corners of the wheel: slot/page boundaries, cascade
    levels, the overflow heap, and cancellation storms.  Each scenario
    runs under both backends and asserts identical firing orders, so a
    wheel bug shows up as a divergence from the heap."""

    @staticmethod
    def _fire_order(backend, delays, horizon):
        env = Environment(scheduler=backend)
        fired = []
        for index, delay in enumerate(delays):
            timer = env.timeout(delay, value=(index, delay))
            timer.callbacks.append(
                lambda evt: fired.append((env.now, evt.value))
            )
        env.run(until=horizon)
        return fired

    def test_slot_boundary_delays(self):
        # Exactly on, just before and just after slot boundaries, plus
        # ties inside one slot (sequence order must break them).
        delays = [255.0, 255.999, 256.0, 256.0, 256.001, 257.0,
                  511.5, 512.0, 0.5, 1.0, 1.0]
        heap = self._fire_order("heap", delays, 600.0)
        wheel = self._fire_order("wheel", delays, 600.0)
        assert wheel == heap
        assert [t for t, _ in wheel] == sorted(t for t, _ in wheel)

    def test_page_walk_past_many_boundaries(self):
        # A chain that re-arms ~1.7s ahead each hop walks the cursor
        # across dozens of level-0 pages; each staging must cascade the
        # next page correctly.
        def chained(env, log):
            for hop in range(700):
                yield env.timeout(1.7)
                log.append(env.now)

        for backend in BACKENDS:
            env = Environment(scheduler=backend)
            log = []
            env.process(chained(env, log))
            env.run()
            assert len(log) == 700
            assert log[-1] == pytest.approx(700 * 1.7)

    def test_level2_and_overflow_cascades(self):
        # One timer per wheel region: level 0 (<256s), level 1 (<65536s),
        # level 2 (<256^3 s), and the overflow heap beyond the span.
        span = 256 ** 3
        delays = [12.0, 300.0, 70_000.0, float(span - 1),
                  float(span + 10), float(span * 3)]
        heap = self._fire_order("heap", delays, float(span * 4))
        wheel = self._fire_order("wheel", delays, float(span * 4))
        assert wheel == heap
        assert len(wheel) == len(delays)

    def test_infinite_delay_never_fires(self):
        for backend in BACKENDS:
            env = Environment(scheduler=backend)
            env.timeout(float("inf"))
            env.timeout(5.0)
            env.run(until=10.0)
            assert env.now == 10.0
            # The inf sentinel stays queued but must not wedge peek().
            assert env.peek() == float("inf")

    def test_mass_cancellation_storm(self):
        # Thousands of timers cancelled mid-run force compaction while
        # the wheel still holds occupied pages; survivors must fire in
        # heap-identical order.
        def build(backend):
            env = Environment(scheduler=backend)
            fired = []
            timers = []
            for index in range(2000):
                timer = env.timeout(1.0 + (index % 500) * 0.75,
                                    value=index)
                timer.callbacks.append(
                    lambda evt: fired.append((env.now, evt.value))
                )
                timers.append(timer)

            def reaper(env, timers):
                yield env.timeout(0.5)
                for timer in timers:
                    if timer.value % 4 != 0:  # cancel 75%
                        timer.cancel()

            env.process(reaper(env, timers))
            env.run()
            return env, fired

        heap_env, heap_fired = build("heap")
        wheel_env, wheel_fired = build("wheel")
        assert wheel_fired == heap_fired
        assert len(wheel_fired) == 500
        assert wheel_env.queue_depth == 0
        assert heap_env.queue_depth == 0

    def test_cancel_storm_then_reschedule_same_slots(self):
        # After a storm, fresh timers landing in the just-vacated slots
        # must not see stale occupancy bits or tombstones.
        env = Environment(scheduler="wheel")
        doomed = [env.timeout(50.0 + i * 0.1) for i in range(64)]
        for timer in doomed:
            timer.cancel()
        fired = []
        timer = env.timeout(50.5, value="fresh")
        timer.callbacks.append(lambda evt: fired.append(evt.value))
        env.run()
        assert fired == ["fresh"]
        assert env.now == 50.5

    def test_straggler_insert_behind_cursor(self):
        # Once the wheel stages a page, a short timer created by a
        # callback inside that page lands *behind* the cursor and must
        # still fire in exact time order.
        def prober(env, log):
            yield env.timeout(100.25)
            log.append(("woke", env.now))
            yield env.timeout(0.25)  # straggler: idx 100 < staged cursor
            log.append(("straggler", env.now))

        for backend in BACKENDS:
            env = Environment(scheduler=backend)
            log = []
            env.process(prober(env, log))
            env.timeout(100.75)
            env.run()
            assert log == [("woke", 100.25), ("straggler", 100.5)]


# ----------------------------------------------------------------------
# Satellite: scheduler-owned queue accounting
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestQueueAccounting:
    def test_depth_counts_live_entries_only(self, backend):
        env = Environment(scheduler=backend)
        timers = [env.timeout(float(delay)) for delay in (5, 500, 70_000)]
        env.schedule(env.event())  # immediate FIFO entry
        assert env.queue_depth == 4
        assert env.dead_entries == 0
        timers[1].cancel()
        assert env.queue_depth == 3
        assert env.dead_entries in (0, 1)  # compaction may have fired
        env.run()
        assert env.queue_depth == 0
        assert env.dead_entries == 0

    def test_depth_restored_after_race(self, backend):
        # The router's invariant: after an ack-vs-timeout race resolves
        # inside a TimerScope, the losing guard must not linger.
        env = Environment(scheduler=backend)

        def racer(env):
            with env.timers() as timers:
                guard = timers.acquire(3600.0)
                yield env.any_of([env.timeout(1.0), guard])

        env.process(racer(env))
        env.run()
        assert env.queue_depth == 0

    def test_live_entries_sorted_and_live(self, backend):
        env = Environment(scheduler=backend)
        keep = env.timeout(7.0)
        doomed = env.timeout(3.0)
        doomed.cancel()
        entries = env.scheduler.live_entries()
        assert [entry[2] for entry in entries] == [keep]
        times = [entry[0] for entry in entries]
        assert times == sorted(times)


# ----------------------------------------------------------------------
# Pool guards
# ----------------------------------------------------------------------


class TestPoolGuards:
    def test_release_and_reuse(self):
        env = Environment(scheduler="heap")
        pool = EventPool()
        event = env.event()
        event.callbacks = None  # processed
        assert pool.release(event) is True
        assert event._pooled
        assert pool.recycled == 1

    def test_double_release_raises(self):
        env = Environment(scheduler="heap")
        pool = EventPool()
        event = env.event()
        event.callbacks = None
        pool.release(event)
        with pytest.raises(PoolError, match="double release"):
            pool.release(event)

    def test_live_event_release_raises(self):
        env = Environment(scheduler="heap")
        pool = EventPool()
        with pytest.raises(PoolError, match="live"):
            pool.release(env.event())

    def test_subclass_release_raises(self):
        env = Environment(scheduler="heap")
        pool = EventPool()
        condition = env.any_of([env.timeout(1.0)])
        with pytest.raises(PoolError, match="poolable"):
            pool.release(condition)

    def test_cancelled_timer_declined_not_raised(self):
        # A cancelled timer's tombstone may still sit in a queue —
        # recycling it would let the stale entry fire a new incarnation.
        env = Environment(scheduler="heap")
        pool = EventPool()
        timer = env.timeout(5.0)
        timer.cancel()
        assert pool.release(timer) is False
        assert pool.rejected == 1
        assert not timer._pooled

    def test_extra_reference_declined(self):
        env = Environment(scheduler="heap")
        pool = EventPool()
        event = env.event()
        event.callbacks = None
        holder = [event]  # someone else still holds it
        assert pool.release(event) is False
        assert pool.rejected == 1
        assert holder[0] is event

    def test_bounded_pool_declines_when_full(self):
        env = Environment(scheduler="heap")
        pool = EventPool(max_size=1)
        first, second = env.event(), env.event()
        first.callbacks = None
        second.callbacks = None
        assert pool.release(first) is True
        assert pool.release(second) is False
        assert len(pool) == 1

    def test_recycled_is_derived_and_survives_clear(self):
        env = Environment(scheduler="heap")
        pool = EventPool()
        for _ in range(3):
            event = env.event()
            event.callbacks = None
            pool.release(event)
        assert pool.recycled == 3
        pool.clear()
        assert len(pool) == 0
        assert pool.recycled == 3  # history is not erased
        assert pool.stats()["recycled"] == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dispatch_loop_recycles_and_factories_reuse(self, backend):
        # End-to-end: the drain loop pools processed timers, and later
        # factory calls are served from the free list.
        env = Environment(scheduler=backend)
        for _ in range(16):
            env.timeout(0.5)
        env.run(until=1.0)
        pool = env.scheduler.pool
        assert len(pool.timeouts) > 0
        before = pool.reused
        env.timeout(0.5)
        assert pool.reused == before + 1
        assert pool.recycled >= pool.reused

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pooled_timer_reuse_preserves_determinism(self, backend):
        # A recycled Timeout must behave exactly like a fresh one.
        env = Environment(scheduler=backend)
        log = []

        def chain(env, log):
            for index in range(50):
                yield env.timeout(0.25, value=index)
                log.append((env.now, index))

        env.process(chain(env, log))
        env.run()
        assert log == [(0.25 * (i + 1), i) for i in range(50)]
        assert env.scheduler.pool.reused > 0


# ----------------------------------------------------------------------
# TimerScope lifecycle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestTimerScope:
    def test_settles_loser_on_exit(self, backend):
        env = Environment(scheduler=backend)

        def racer(env):
            with env.timers() as timers:
                guard = timers.acquire(1000.0)
                yield env.any_of([env.timeout(1.0), guard])

        env.process(racer(env))
        env.run()
        assert env.queue_depth == 0
        assert env.now == 1.0  # never drained to the guard's deadline

    def test_settles_on_interrupt(self, backend):
        env = Environment(scheduler=backend)

        def sleeper(env):
            with env.timers() as timers:
                try:
                    yield timers.acquire(500.0)
                except Interrupt:
                    pass

        proc = env.process(sleeper(env))

        def interrupter(env, proc):
            yield env.timeout(2.0)
            proc.interrupt("wake up")

        env.process(interrupter(env, proc))
        env.run()
        assert env.queue_depth == 0
        assert env.now == 2.0

    def test_reusable_across_iterations(self, backend):
        env = Environment(scheduler=backend)
        scope_sizes = []

        def heartbeat(env, scope_sizes):
            with env.timers() as timers:
                for _ in range(5):
                    yield timers.acquire(1.0)
                    # acquire() prunes fired timers, so the active list
                    # never accumulates across iterations.
                    scope_sizes.append(len(timers.active))

        env.process(heartbeat(env, scope_sizes))
        env.run()
        assert env.now == 5.0
        assert all(size <= 1 for size in scope_sizes)

    def test_explicit_cancel_releases_early(self, backend):
        env = Environment(scheduler=backend)

        def prober(env):
            with env.timers() as timers:
                reply = env.event()
                guard = timers.acquire(30.0)
                reply.succeed()  # reply "arrives" immediately
                yield env.any_of([reply, guard])
                timers.cancel(guard)
                assert timers.pending == 0
                yield env.timeout(1.0)

        env.process(prober(env))
        env.run()
        assert env.now == 1.0
        assert env.queue_depth == 0

    def test_settle_is_idempotent(self, backend):
        env = Environment(scheduler=backend)
        timers = env.timers()
        timers.acquire(10.0)
        assert timers.pending == 1
        assert timers.settle() == 1
        assert timers.settle() == 0
        assert timers.pending == 0
