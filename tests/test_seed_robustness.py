"""Seed robustness: the benches' shape assertions must not be seed-lucky.

Runs the cheap latency experiments across several seeds and checks that the
paper-shape bounds hold for each — if these start flaking, the calibrated
latency models (not a bench threshold) need attention.
"""

import pytest

from repro.experiments import (
    run_ack_roundtrip,
    run_im_one_way,
    run_proxy_routing,
)

SEEDS = (1, 7, 13, 42)


@pytest.mark.parametrize("seed", SEEDS)
def test_e1_shape_across_seeds(seed):
    summary = run_im_one_way(n_alerts=80, seed=seed)
    assert summary.median < 1.0, f"seed {seed}: median {summary.median}"
    assert summary.p90 < 1.1, f"seed {seed}: p90 {summary.p90}"


@pytest.mark.parametrize("seed", SEEDS)
def test_e2_shape_across_seeds(seed):
    summary = run_ack_roundtrip(n_alerts=80, seed=seed)
    assert 1.0 < summary.mean < 2.5, f"seed {seed}: mean {summary.mean}"


@pytest.mark.parametrize("seed", SEEDS)
def test_e3_shape_across_seeds(seed):
    summary = run_proxy_routing(n_changes=30, seed=seed)
    assert 1.5 < summary.mean < 4.0, f"seed {seed}: mean {summary.mean}"
