"""Unit tests for SelfStabilizer, RejuvenationPolicy and UserEndpoint."""

import pytest

from repro.core.rejuvenation import (
    DEFAULT_KEYWORD,
    RejuvenationPolicy,
)
from repro.core.stabilizer import SelfStabilizer
from repro.net import ChannelType, LatencyModel
from repro.sim import Environment, HOUR, MINUTE
from repro.world import SimbaWorld, WorldConfig

FIXED = LatencyModel(median=5.0, sigma=0.0, low=0.0, high=100.0)


class TestSelfStabilizer:
    def test_tasks_run_on_their_intervals(self):
        env = Environment()
        stabilizer = SelfStabilizer(env)
        stabilizer.add_task("fast", 10.0, lambda: [])
        stabilizer.add_task("slow", 60.0, lambda: [])
        stabilizer.start()
        env.run(until=120.0)
        assert stabilizer.records["fast"].runs == 12
        assert stabilizer.records["slow"].runs == 2

    def test_corrections_recorded(self):
        env = Environment()
        stabilizer = SelfStabilizer(env)
        flips = iter([["re-logon"], [], ["restart", "re-logon"]])
        stabilizer.add_task("check", 10.0, lambda: next(flips, []))
        stabilizer.start()
        env.run(until=35.0)
        assert stabilizer.total_corrections() == 3
        record = stabilizer.records["check"]
        assert [c[1] for c in record.corrections] == [
            "re-logon", "restart", "re-logon",
        ]

    def test_unrectifiable_escalates(self):
        env = Environment()
        escalations = []
        stabilizer = SelfStabilizer(
            env, on_unrectifiable=lambda name, exc: escalations.append(name)
        )

        def broken():
            raise RuntimeError("invariant broken")

        stabilizer.add_task("broken", 10.0, broken)
        stabilizer.start()
        env.run(until=25.0)
        assert escalations == ["broken", "broken"]
        assert len(stabilizer.records["broken"].failures) == 2

    def test_stop_halts_tasks(self):
        env = Environment()
        stabilizer = SelfStabilizer(env)
        stabilizer.add_task("t", 10.0, lambda: [])
        stabilizer.start()
        env.run(until=15.0)
        stabilizer.stop()
        env.run(until=100.0)
        assert stabilizer.records["t"].runs == 1

    def test_run_task_now(self):
        env = Environment()
        stabilizer = SelfStabilizer(env)
        stabilizer.add_task("t", 10.0, lambda: ["fixed"])
        assert stabilizer.run_task_now("t") == ["fixed"]
        assert stabilizer.records["t"].runs == 1

    def test_duplicate_and_invalid_tasks_rejected(self):
        env = Environment()
        stabilizer = SelfStabilizer(env)
        stabilizer.add_task("t", 10.0, lambda: [])
        with pytest.raises(ValueError):
            stabilizer.add_task("t", 10.0, lambda: [])
        with pytest.raises(ValueError):
            stabilizer.add_task("bad", 0.0, lambda: [])


class TestRejuvenationPolicy:
    def test_keyword_matching(self):
        policy = RejuvenationPolicy()
        assert policy.matches_keyword(f"please {DEFAULT_KEYWORD} now")
        assert not policy.matches_keyword("ordinary message")

    def test_custom_keywords(self):
        policy = RejuvenationPolicy(keywords={"RESET-ME"})
        assert policy.matches_keyword("RESET-ME")
        assert not policy.matches_keyword(DEFAULT_KEYWORD)

    def test_default_nightly_time(self):
        assert RejuvenationPolicy().nightly_time == 23.5 * HOUR


def make_world():
    return SimbaWorld(
        WorldConfig(
            seed=4,
            im_latency=LatencyModel(median=0.4, sigma=0.0, low=0.0, high=5.0),
            email_latency=FIXED,
            email_loss=0.0,
            sms_latency=FIXED,
            sms_loss=0.0,
        )
    )


def send_alert_im(world, user, alert):
    """Send an encoded alert straight to the user's IM (no MAB)."""
    world.im.register_account("tester@im")
    session = world.im.login("tester@im")
    session.send(user.im_address, alert.encode(), correlation=alert.alert_id)


class TestUserEndpoint:
    def _alert(self, world, alert_id=None):
        from repro.core import Alert

        kwargs = {}
        if alert_id:
            kwargs["alert_id"] = alert_id
        return Alert(
            source="s", keyword="k", subject="subj", body="b",
            created_at=world.env.now, **kwargs,
        )

    def test_present_user_receives_and_acks_im(self):
        world = make_world()
        user = world.create_user("u", present=True)
        alert = self._alert(world)
        send_alert_im(world, user, alert)
        world.run(until=60.0)
        assert [r.channel for r in user.receipts] == [ChannelType.IM]
        # The ack came back to the tester's session as an IM... the session
        # inbox should hold one SIMBA-ACK message.
        tester = world.im.session_for("tester@im")
        assert len(tester.inbox) == 1
        assert tester.inbox.items[0].body.startswith("SIMBA-ACK")

    def test_absent_user_not_reachable_by_im(self):
        world = make_world()
        user = world.create_user("u", present=False)
        from repro.errors import DeliveryFailure

        world.im.register_account("tester@im")
        session = world.im.login("tester@im")
        with pytest.raises(DeliveryFailure):
            session.send(user.im_address, "hello")

    def test_presence_toggle_logs_in_and_out(self):
        world = make_world()
        user = world.create_user("u", present=True)
        world.run(until=1.0)
        assert world.im.presence.is_online(user.im_address)
        user.set_present(False)
        assert not world.im.presence.is_online(user.im_address)
        user.set_present(True)
        assert world.im.presence.is_online(user.im_address)

    def test_duplicate_detection_across_channels(self):
        world = make_world()
        user = world.create_user("u", present=True)
        alert = self._alert(world, alert_id="same-alert")
        send_alert_im(world, user, alert)
        world.email.send("s@mail", user.email_address, alert.subject,
                         alert.encode(), correlation=alert.alert_id)
        world.run(until=60.0)
        assert len(user.receipts) == 2
        assert user.duplicates_discarded() == 1
        assert user.unique_alerts_received() == {"same-alert"}

    def test_sms_truncated_alert_recorded_via_correlation(self):
        world = make_world()
        user = world.create_user("u", present=True)
        alert = self._alert(world)
        world.sms.send("simba", user.phone_number,
                       "X" * 300, correlation=alert.alert_id)
        world.run(until=60.0)
        assert [r.channel for r in user.receipts] == [ChannelType.SMS]
        assert user.receipts[0].alert_id == alert.alert_id

    def test_non_alert_im_ignored(self):
        world = make_world()
        user = world.create_user("u", present=True)
        world.im.register_account("friend@im")
        session = world.im.login("friend@im")
        session.send(user.im_address, "hey, lunch?")
        world.run(until=30.0)
        assert user.receipts == []

    def test_reconnect_after_outage(self):
        world = make_world()
        user = world.create_user("u", present=True)
        world.run(until=5.0)
        world.im.outage(2 * MINUTE)
        world.run(until=10 * MINUTE)
        assert world.im.presence.is_online(user.im_address)

    def test_receipts_for_and_counts(self):
        world = make_world()
        user = world.create_user("u", present=True)
        a1 = self._alert(world, "a1")
        a2 = self._alert(world, "a2")
        send_alert_im(world, user, a1)
        send_alert_im(world, user, a2)
        world.run(until=60.0)
        assert len(user.receipts_for("a1")) == 1
        assert user.messages_received() == 2
