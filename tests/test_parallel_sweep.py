"""The parallel-sweep contract: N workers, bit-identical results.

Every sweep layered on :func:`repro.testkit.parallel.fanout` promises that
``jobs > 1`` changes wall-clock time and nothing else.  These tests run
each sweep both ways and compare the *entire* result — fingerprints for
chaos sweeps (they digest every trial), dataclass equality for the
failover and farm sweeps — plus the fanout primitive's own semantics.
"""

import pytest

from repro.experiments.ablations import run_farm_throughput_sweep
from repro.experiments.failover import run_failover_comparison
from repro.sim.clock import MINUTE
from repro.testkit import chaos_sweep
from repro.testkit.parallel import (
    JOBS_ENV_VAR,
    SweepPool,
    default_jobs,
    fanout,
    resolve_jobs,
    sweep_pool,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three")
    return x


class TestFanoutPrimitive:
    def test_results_come_back_in_item_order(self):
        items = list(range(17))
        assert fanout(_square, items, jobs=4) == [x * x for x in items]

    def test_sequential_path_matches_parallel(self):
        items = [5, 1, 9, 2]
        assert fanout(_square, items, jobs=1) == fanout(_square, items, jobs=3)

    def test_single_item_skips_the_pool(self):
        assert fanout(_square, [7], jobs=8) == [49]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="three"):
            fanout(_fail_on_three, [1, 2, 3], jobs=2)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert default_jobs() == 3
        assert resolve_jobs(None) == 3
        monkeypatch.setenv(JOBS_ENV_VAR, "not-a-number")
        assert default_jobs() == 1
        monkeypatch.delenv(JOBS_ENV_VAR)
        assert default_jobs() == 1


class TestSweepPool:
    def test_pool_results_bit_identical_to_one_shot_path(self):
        items = list(range(23))
        expected = fanout(_square, items, jobs=3)
        with sweep_pool(jobs=3):
            pooled_a = fanout(_square, items)
            pooled_b = fanout(_square, items)  # same workers, second call
        assert pooled_a == expected
        assert pooled_b == expected

    def test_workers_are_reused_across_calls(self):
        import os

        with sweep_pool(jobs=2) as pool:
            first = set(fanout(_pid, range(8)))
            second = set(fanout(_pid, range(8)))
        # Both maps were served by the same two pool workers (not the
        # parent, and no per-call pool — that would mint fresh pids).
        assert len(first | second) <= 2
        assert os.getpid() not in (first | second)

    def test_explicit_jobs_bypasses_the_active_pool(self):
        with sweep_pool(jobs=2):
            # jobs=1 forces the sequential in-process reference path even
            # while a pool is active.
            import os

            assert fanout(_pid, [0, 1], jobs=1) == [os.getpid()] * 2

    def test_jobs_one_pool_never_forks(self):
        import os

        with sweep_pool(jobs=1) as pool:
            assert fanout(_pid, range(4)) == [os.getpid()] * 4
            assert pool._pool is None

    def test_nested_pools_restore_the_outer_one(self):
        with sweep_pool(jobs=1) as outer:
            with sweep_pool(jobs=2):
                fanout(_square, range(4))
            # Inner pool closed; outer is active again and still usable.
            assert fanout(_square, [3]) == [9]
            assert not outer._closed

    def test_closed_pool_rejects_maps(self):
        pool = SweepPool(jobs=2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.map(_square, [1])

    def test_worker_exception_propagates_through_pool(self):
        with sweep_pool(jobs=2):
            with pytest.raises(ValueError, match="three"):
                fanout(_fail_on_three, [1, 2, 3])

    def test_sweep_through_pool_matches_sequential(self):
        kwargs = dict(
            user_counts=(1, 4),
            per_user_rate=0.05,
            duration=4 * MINUTE,
            seed=3,
        )
        sequential = run_farm_throughput_sweep(jobs=1, **kwargs)
        with sweep_pool(jobs=2):
            pooled = run_farm_throughput_sweep(**kwargs)
        assert sequential == pooled


def _pid(_x):
    import os

    return os.getpid()


class TestChaosSweepParallel:
    KWARGS = dict(
        seed=11,
        trials=3,
        n_users=2,
        duration=20 * MINUTE,
        settle=10 * MINUTE,
        shrink_failures=False,
    )

    def test_two_workers_bit_identical_to_sequential(self):
        sequential = chaos_sweep(jobs=1, **self.KWARGS)
        parallel = chaos_sweep(jobs=2, **self.KWARGS)
        assert sequential.fingerprint() == parallel.fingerprint()
        assert [t.ok for t in sequential.trials] == [
            t.ok for t in parallel.trials
        ]

    def test_env_var_routes_existing_call_sites(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        via_env = chaos_sweep(**self.KWARGS)  # jobs=None -> env default
        monkeypatch.delenv(JOBS_ENV_VAR)
        sequential = chaos_sweep(**self.KWARGS)
        assert via_env.fingerprint() == sequential.fingerprint()


class TestFailoverSweepParallel:
    def test_parallel_variants_identical_to_sequential(self):
        kwargs = dict(
            seed=4,
            n_users=2,
            n_crashes=1,
            window=10 * MINUTE,
            settle=8 * MINUTE,
            variants=("mdc", "replicated"),
        )
        sequential = run_failover_comparison(jobs=1, **kwargs)
        parallel = run_failover_comparison(jobs=2, **kwargs)
        # FailoverVariant/Summary/ScheduledFault are plain dataclasses:
        # full structural equality, not just headline numbers.
        assert sequential.variants == parallel.variants
        assert sequential.schedule == parallel.schedule


class TestFarmThroughputSweepParallel:
    def test_parallel_points_identical_to_sequential(self):
        kwargs = dict(
            user_counts=(1, 5),
            per_user_rate=0.05,
            duration=4 * MINUTE,
            seed=3,
        )
        sequential = run_farm_throughput_sweep(jobs=1, **kwargs)
        parallel = run_farm_throughput_sweep(jobs=2, **kwargs)
        assert sequential == parallel
        assert [p.users for p in parallel] == [1, 5]
