"""Edge-case tests for channel plumbing: stats, listeners, presence."""

import math

import pytest

from repro.net import (
    ChannelType,
    EmailService,
    IMService,
    LatencyModel,
    PresenceService,
    SMSGateway,
)
from repro.net.channel import ChannelStats
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=1.0, sigma=0.0, low=0.0, high=10.0)


class TestChannelStats:
    def test_empty_stats_are_nan(self):
        stats = ChannelStats()
        assert math.isnan(stats.mean_latency)
        assert math.isnan(stats.delivery_ratio)

    def test_record_delivery(self):
        stats = ChannelStats()
        stats.submitted = 4
        stats.record_delivery(2.0)
        stats.record_delivery(4.0)
        assert stats.delivered == 2
        assert stats.mean_latency == 3.0
        assert stats.delivery_ratio == 0.5


class TestAvailabilityListeners:
    def test_listener_sees_both_transitions(self):
        env = Environment()
        service = EmailService(env, RngRegistry(seed=1).stream("e"),
                               latency=FAST)
        transitions = []
        service.on_availability_change(transitions.append)
        service.set_available(False)
        service.set_available(False)  # no-op: no duplicate notification
        service.set_available(True)
        assert transitions == [False, True]

    def test_outage_notifies_listeners_at_both_ends(self):
        env = Environment()
        service = IMService(env, RngRegistry(seed=1).stream("im"),
                            latency=FAST)
        transitions = []
        service.on_availability_change(
            lambda up: transitions.append((env.now, up))
        )
        service.outage(60.0)
        env.run(until=120.0)
        assert transitions == [(0.0, False), (60.0, True)]


class TestPresenceService:
    def test_watchers_fire_on_transitions_only(self):
        presence = PresenceService()
        seen = []
        presence.watch(lambda addr, online: seen.append((addr, online)))
        presence.set_online("a@im", True)
        presence.set_online("a@im", True)  # no transition
        presence.set_online("a@im", False)
        assert seen == [("a@im", True), ("a@im", False)]

    def test_online_addresses_snapshot(self):
        presence = PresenceService()
        presence.set_online("a@im", True)
        presence.set_online("b@im", True)
        snapshot = presence.online_addresses()
        presence.set_online("a@im", False)
        assert snapshot == frozenset({"a@im", "b@im"})  # frozen copy
        assert presence.online_addresses() == frozenset({"b@im"})


class TestSMSDetails:
    def test_phone_objects_are_cached(self):
        env = Environment()
        gateway = SMSGateway(env, RngRegistry(seed=1).stream("s"),
                             latency=FAST, loss_probability=0.0)
        assert gateway.phone("+1") is gateway.phone("+1")

    def test_message_channel_type(self):
        env = Environment()
        gateway = SMSGateway(env, RngRegistry(seed=1).stream("s"),
                             latency=FAST, loss_probability=0.0)
        message = gateway.send("a", "+1", "hi")
        assert message.channel is ChannelType.SMS
        env.run()

    def test_delivery_in_flight_when_phone_goes_unreachable(self):
        env = Environment()
        gateway = SMSGateway(env, RngRegistry(seed=1).stream("s"),
                             latency=FAST, loss_probability=0.0)
        gateway.send("a", "+1", "doomed")

        def kill_coverage(env):
            yield env.timeout(0.5)  # before the 1 s delivery
            gateway.set_reachable("+1", False)

        env.process(kill_coverage(env))
        env.run()
        assert gateway.stats.lost == 1


class TestEmailDetails:
    def test_mailboxes_cached(self):
        env = Environment()
        service = EmailService(env, RngRegistry(seed=1).stream("e"),
                               latency=FAST, loss_probability=0.0)
        assert service.mailbox("x@mail") is service.mailbox("x@mail")

    def test_put_back_restores_unread_order(self):
        env = Environment()
        service = EmailService(env, RngRegistry(seed=1).stream("e"),
                               latency=FAST, loss_probability=0.0)
        service.send("a", "x@mail", "first", "1")
        service.send("a", "x@mail", "second", "2")
        env.run()
        box = service.mailbox("x@mail")
        got = []

        def reader(env):
            message = yield box.receive()
            got.append(message)

        env.process(reader(env))
        env.run()
        box.put_back(got[0])
        assert [m.subject for m in box.peek_unread()] == ["first", "second"]
        assert box.read == []
