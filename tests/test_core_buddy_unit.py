"""Focused unit tests for MyAlertBuddy internals: retries, rejuvenation
timing, memory accounting, duplicate handling, recovery ordering."""

import pytest

from repro.core.rejuvenation import RejuvenationKind
from repro.net import ChannelType, LatencyModel
from repro.sim import DAY, HOUR, MINUTE
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
EMAIL_FIXED = LatencyModel(median=20.0, sigma=0.0, low=0.0, high=100.0)


def make_rig(seed=1, **config_overrides):
    world = SimbaWorld(
        WorldConfig(
            seed=seed,
            im_latency=IM_FIXED,
            email_latency=EMAIL_FIXED,
            email_loss=0.0,
            sms_loss=0.0,
        )
    )
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    for key, value in config_overrides.items():
        setattr(deployment.config, key, value)
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")
    return world, user, deployment, source


class TestDeliveryRetry:
    def test_total_block_failure_retries_and_succeeds(self):
        world, user, deployment, source = make_rig(
            delivery_retry_delay=60.0
        )
        deployment.launch()
        # Take BOTH outgoing channels for the user down: IM (user logs out)
        # and email relay.
        user.set_present(False)
        world.email.set_available(False)
        source.emit("News", "h", "b")
        world.run(until=2 * MINUTE)
        assert deployment.journal.count("retry_scheduled") >= 1
        assert user.receipts == []
        # Email comes back: a retry succeeds.
        world.email.set_available(True)
        world.run(until=10 * MINUTE)
        assert len(user.receipts) == 1
        # And the log entry is finally marked processed.
        entry = deployment.log.unprocessed()
        assert entry == []

    def test_retry_gives_up_after_max_attempts(self):
        world, user, deployment, source = make_rig(
            delivery_retry_delay=30.0, delivery_max_attempts=3
        )
        deployment.launch()
        user.set_present(False)
        world.email.set_available(False)
        source.emit("News", "h", "b")
        world.run(until=30 * MINUTE)
        assert deployment.journal.count("retry_scheduled") == 2  # attempts 1,2
        assert deployment.journal.count("delivery_abandoned") == 1
        assert user.receipts == []
        # Abandoned => marked processed so recovery will not replay forever.
        assert deployment.log.unprocessed() == []

    def test_partial_success_retries_only_failed_subscriber(self):
        world, user, deployment, source = make_rig(delivery_retry_delay=60.0)
        bob = world.create_user("bob", present=True)
        deployment.register_user_endpoint(bob)
        deployment.config.subscriptions.subscribe("News", "bob", "digest")
        deployment.launch()
        # Bob's digest mode is email-only; kill the relay so only he fails.
        world.email.set_available(False)
        source.emit("News", "h", "b")
        world.run(until=30.0)
        assert len(user.receipts) == 1  # alice got IM
        assert bob.receipts == []
        world.email.set_available(True)
        world.run(until=10 * MINUTE)
        assert len(bob.receipts) == 1
        # Alice did NOT receive a second copy from the retry.
        assert len(user.receipts) == 1


class TestRejuvenationTiming:
    def test_nightly_fires_at_2330_every_day(self):
        world, user, deployment, source = make_rig()
        world.start_mdc(deployment)
        world.run(until=3 * DAY)
        nightly = [
            r for r in deployment.journal.rejuvenations
            if r.kind is RejuvenationKind.NIGHTLY
        ]
        assert len(nightly) == 3
        for index, record in enumerate(nightly):
            assert record.at == pytest.approx(
                index * DAY + 23.5 * HOUR, abs=2.0
            )

    def test_nightly_disabled(self):
        world, user, deployment, source = make_rig()
        deployment.config.rejuvenation.nightly_enabled = False
        world.start_mdc(deployment)
        world.run(until=2 * DAY)
        assert deployment.journal.rejuvenations == []

    def test_nightly_shuts_clients_down_orderly(self):
        world, user, deployment, source = make_rig()
        world.start_mdc(deployment, check_interval=60.0)
        world.run(until=23.5 * HOUR + 10 * MINUTE)
        # The nightly rejuvenation terminated the client software ("orderly
        # shutdown of all the communication client software")...
        assert deployment.endpoint.im_client.terminations >= 1
        assert len(deployment.incarnations) == 2
        # ...and the MDC restart brought everything back.
        assert deployment.endpoint.im_client.running
        assert world.im.presence.is_online(deployment.im_address)

    def test_memory_accounting_grows_with_alerts(self):
        world, user, deployment, source = make_rig()
        buddy = deployment.launch()
        before = buddy.memory_mb
        for index in range(5):
            source.emit("News", f"h{index}", "b")
        world.run(until=10 * MINUTE)
        assert buddy.memory_mb > before

    def test_remote_keyword_via_email(self):
        world, user, deployment, source = make_rig()
        world.start_mdc(deployment)
        world.run(until=60.0)
        world.email.send(
            "admin@mail", deployment.email_address, "admin",
            "SIMBA-REJUVENATE please",
        )
        world.run(until=10 * MINUTE)
        kinds = [r.kind for r in deployment.journal.rejuvenations]
        assert RejuvenationKind.REMOTE in kinds


class TestDuplicateHandling:
    def test_same_alert_via_im_and_email_routed_once(self):
        world, user, deployment, source = make_rig()
        deployment.launch()
        alert, _procs = source.emit("News", "h", "b")
        # Simulate the email fallback arriving as well (sender thought the
        # ack was lost): deliver the same payload by email directly.
        world.email.send(
            "portal@mail", deployment.email_address, alert.subject,
            alert.encode(), correlation=alert.alert_id,
        )
        world.run(until=5 * MINUTE)
        assert deployment.journal.count("duplicate_incoming") == 1
        assert len(user.receipts_for(alert.alert_id)) == 1

    def test_recovery_replay_order_is_fifo(self):
        world, user, deployment, source = make_rig()
        world.start_mdc(deployment, check_interval=30.0)
        buddy = deployment.current

        def scenario(env):
            for index in range(3):
                source.emit("News", f"h{index}", "b")
                yield env.timeout(2.0)
            # All three are logged (ack at ~1.3s each); crash before the
            # first finishes routing of the third.
            buddy.crash()

        world.env.process(scenario(world.env))
        world.run(until=20 * MINUTE)
        replays = deployment.journal.of_kind("recovery_replay")
        assert len(replays) >= 1
        received = [r.alert_id for r in user.receipts if not r.duplicate]
        assert len(received) == 3
