"""Edge-branch coverage: small behaviors not exercised elsewhere."""

import pytest

from repro.clients import IMClient, Screen
from repro.core import IMManager, MonkeyThread, SMSManager
from repro.core.classifier import ExtractionRule
from repro.errors import AlertRejected, SimulationError
from repro.net import IMService, LatencyModel, SMSGateway
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=0.2, sigma=0.0, low=0.0, high=5.0)


def test_run_until_event_with_exhausted_queue_raises():
    env = Environment()
    never = env.event()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(SimulationError, match="exhausted the queue"):
        env.run(until=never)


def test_monkey_rules_snapshot_is_a_copy():
    env = Environment()
    monkey = MonkeyThread(env, Screen(env))
    rules = monkey.rules()
    rules["Injected"] = "OK"
    assert "Injected" not in monkey.rules()


def test_is_recipient_online_false_when_service_down():
    env = Environment()
    im = IMService(env, RngRegistry(seed=1).stream("im"), latency=FAST)
    im.register_account("mab@im")
    im.register_account("peer@im")
    manager = IMManager(env, IMClient(env, Screen(env), im, "mab@im"))
    manager.ensure_started()
    im.login("peer@im")
    assert manager.is_recipient_online("peer@im") is True
    im.set_available(False)
    assert manager.is_recipient_online("peer@im") is False


def test_sms_manager_noop_lifecycle():
    env = Environment()
    gateway = SMSGateway(env, RngRegistry(seed=1).stream("sms"), latency=FAST)
    manager = SMSManager(env, gateway)
    manager.ensure_started()  # must not raise
    manager.shutdown()        # must not raise
    assert manager.sanity_check().healthy


def test_extraction_rule_suffix_missing_rejected():
    from repro.core import Alert

    rule = ExtractionRule(source="s", field="subject", prefix="[", suffix="]")
    alert = Alert(source="s", keyword="k", subject="[Stocks no closer",
                  body="b", created_at=0.0)
    with pytest.raises(AlertRejected, match="suffix"):
        rule.extract(alert, sender="")


def test_extraction_rule_no_decoration_takes_whole_field():
    from repro.core import Alert

    rule = ExtractionRule(source="s", field="subject")
    alert = Alert(source="s", keyword="k", subject="  Weather  ",
                  body="b", created_at=0.0)
    assert rule.extract(alert, sender="") == "Weather"


def test_im_message_repr_and_session_repr():
    env = Environment()
    im = IMService(env, RngRegistry(seed=1).stream("im"), latency=FAST)
    im.register_account("a@im")
    session = im.login("a@im")
    assert "a@im" in repr(session)
    session.logout()
    assert "dead" in repr(session)


def test_automation_handle_repr_shows_staleness():
    env = Environment()
    im = IMService(env, RngRegistry(seed=1).stream("im"), latency=FAST)
    im.register_account("a@im")
    client = IMClient(env, Screen(env), im, "a@im")
    handle = client.start()
    assert "valid" in repr(handle)
    client.terminate()
    assert "STALE" in repr(handle)


def test_peek_and_process_repr():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    p = env.process(proc(env), name="named-proc")
    assert "named-proc" in repr(p)
    assert env.peek() == 0.0  # the process-init event is queued at t=0
