"""The sharded farm-of-farms: partitioning, bridge, invariance, rollups.

The headline property is **shard-count invariance**: for a fixed seed the
merged journal fingerprint, aggregate counts and receipt totals are
bit-identical however the tenant population is partitioned — including the
degenerate shards=1 layout, which runs the same epoch-drain protocol.
Everything else here pins the mechanisms that property rests on: complete
disjoint partitions, conservative bridge timestamps, deterministic drain
ordering, load accounting and the hot-shard detector's recommendations.
"""

import pytest

from repro.core.shard import (
    BridgeEnvelope,
    ConsistentHashRing,
    HotShardDetector,
    ShardLoad,
    ShardProtocolError,
    ShardSpec,
    ShardWorker,
    ShardedFarm,
)
from repro.errors import ConfigurationError
from repro.experiments.sharded import (
    E13_WORKLOAD,
    E13_PROFILE,
    e13_world_config,
    run_sharded_throughput,
)
from repro.sim.clock import epoch_end, epoch_index, epochs_until
from repro.testkit import check_shard_count_invariance

#: Small but non-trivial: ~30% senders over 48 users, fan-out 2 → every
#: epoch carries cross-shard traffic in both directions.
SMALL = dict(
    users=48,
    seed=7,
    duration=120.0,
    epoch=30.0,
    drain=120.0,
    workload_kwargs={
        "active_permille": 300,
        "alerts_per_sender": 2,
        "fanout_width": 2,
    },
)


def small_run(shards: int, inline: bool = True, **overrides):
    kwargs = dict(SMALL)
    kwargs.update(overrides)
    return run_sharded_throughput(shards=shards, inline=inline, **kwargs)


def small_farm(shards: int, inline: bool = True, **overrides) -> ShardedFarm:
    return ShardedFarm(
        shards=shards,
        seed=SMALL["seed"],
        population=SMALL["users"],
        workload=E13_WORKLOAD,
        workload_kwargs={"duration": SMALL["duration"],
                         **SMALL["workload_kwargs"]},
        epoch=SMALL["epoch"],
        world_config=e13_world_config(SMALL["seed"]),
        profile=E13_PROFILE,
        inline=inline,
        **overrides,
    )


# ---------------------------------------------------------------------------
# Shard-count invariance
# ---------------------------------------------------------------------------


class TestShardCountInvariance:
    def test_inline_layouts_are_bit_identical(self):
        runs = [small_run(shards) for shards in (1, 2, 3)]
        report = check_shard_count_invariance(results=runs)
        assert report.ok, report.summary()
        fingerprints = {r.merged_fingerprint for r in runs}
        assert len(fingerprints) == 1
        assert runs[0].delivered > 0  # the runs actually did something

    def test_worker_processes_match_inline(self):
        inline = small_run(1, inline=True)
        forked = small_run(2, inline=False)
        assert forked.merged_fingerprint == inline.merged_fingerprint
        assert forked.counts == inline.counts

    def test_different_seed_changes_the_fingerprint(self):
        assert (
            small_run(1).merged_fingerprint
            != small_run(1, seed=8).merged_fingerprint
        )

    def test_oracle_reports_a_forged_mismatch(self):
        runs = [small_run(1), small_run(2)]
        runs[1].merged_fingerprint = "0" * 64
        runs[1].receipts += 1
        report = check_shard_count_invariance(results=runs)
        assert not report.ok
        invariants = {v.invariant for v in report.violations}
        assert invariants == {"shard_count_invariance"}
        assert len(report.violations) == 2  # fingerprint + receipts

    def test_oracle_self_run_mode(self):
        report = check_shard_count_invariance(
            shard_counts=(1, 2),
            population=SMALL["users"],
            seed=SMALL["seed"],
            duration=SMALL["duration"],
            epoch=SMALL["epoch"],
            drain=SMALL["drain"],
            workload_kwargs=SMALL["workload_kwargs"],
        )
        assert report.ok, report.summary()
        assert report.checked["shard_layouts"] == 2


# ---------------------------------------------------------------------------
# Partitioning and lazy tenancy
# ---------------------------------------------------------------------------


class TestPartitioning:
    def test_local_names_are_a_complete_disjoint_partition(self):
        specs = [
            ShardSpec(
                shard=shard, shards=3, seed=7, population=60,
                workload=E13_WORKLOAD,
                workload_kwargs={"duration": 60.0},
                world_config=e13_world_config(7), profile=E13_PROFILE,
            )
            for shard in range(3)
        ]
        workers = [ShardWorker(spec) for spec in specs]
        slices = [set(w.local_names) for w in workers]
        assert set.union(*slices) == {f"user{i}" for i in range(60)}
        assert sum(len(s) for s in slices) == 60  # pairwise disjoint

    def test_tenants_materialize_lazily(self):
        result = small_run(2)
        # Senders are never materialized; only recipients cost a MAB.
        assert 0 < result.tenants < result.population

    def test_merged_latencies_arrive_sorted(self):
        farm = small_farm(2)
        with farm:
            farm.run(until=SMALL["duration"] + SMALL["drain"])
            rollup = farm.merged_rollup()
        assert rollup.latencies == sorted(rollup.latencies)
        assert rollup.receipts == len(rollup.latencies)
        assert rollup.shards == 2


# ---------------------------------------------------------------------------
# Bridge protocol
# ---------------------------------------------------------------------------


class TestBridge:
    def test_bridge_latency_below_epoch_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardSpec(
                shard=0, shards=1, seed=0, population=1,
                workload=E13_WORKLOAD, epoch=60.0, bridge_latency=30.0,
            )

    def test_envelope_sort_key_is_deliver_at_then_origin_then_seq(self):
        envelopes = [
            BridgeEnvelope(90.0, "user2", 0, "r", "News", "s", "b", "a3"),
            BridgeEnvelope(60.0, "user9", 1, "r", "News", "s", "b", "a2"),
            BridgeEnvelope(60.0, "user9", 0, "r", "News", "s", "b", "a1"),
            BridgeEnvelope(60.0, "user1", 5, "r", "News", "s", "b", "a0"),
        ]
        assert [e.alert_id for e in sorted(envelopes)] == [
            "a0", "a1", "a2", "a3",
        ]

    def test_unknown_command_raises_protocol_error(self):
        farm = small_farm(1)
        with farm:
            farm._workers[0].send(("frobnicate",))
            with pytest.raises(ShardProtocolError, match="unknown command"):
                farm._workers[0].recv()
            # The worker survives a bad command; the loop keeps serving.
            farm.run_epoch()

    def test_undelivered_envelopes_are_accounted(self):
        # Horizon ends exactly at the traffic window: the last epoch's
        # outbound envelopes are still in the coordinator's hands.
        result = small_run(2, drain=0.0)
        settled = small_run(2)
        assert result.undelivered_envelopes > 0
        assert settled.undelivered_envelopes == 0
        assert result.receipts < settled.receipts

    def test_run_covers_partial_final_epoch(self):
        farm = small_farm(1)
        with farm:
            farm.run(until=SMALL["epoch"] * 1.5)
            assert farm.now == SMALL["epoch"] * 2


# ---------------------------------------------------------------------------
# Epoch helpers
# ---------------------------------------------------------------------------


class TestEpochHelpers:
    def test_boundaries(self):
        assert epoch_index(0.0, 60.0) == 0
        assert epoch_index(59.9, 60.0) == 0
        assert epoch_index(60.0, 60.0) == 1
        assert epoch_end(0.0, 60.0) == 60.0
        assert epoch_end(60.0, 60.0) == 120.0

    def test_epochs_until(self):
        assert epochs_until(0.0, 60.0) == 0
        assert epochs_until(1.0, 60.0) == 1
        assert epochs_until(60.0, 60.0) == 1
        assert epochs_until(61.0, 60.0) == 2

    def test_bad_epoch_rejected(self):
        with pytest.raises(ValueError):
            epoch_index(1.0, 0.0)
        with pytest.raises(ValueError):
            epochs_until(1.0, -1.0)


# ---------------------------------------------------------------------------
# Hot-shard detector
# ---------------------------------------------------------------------------


def _load(shard, events, vnode_events):
    return ShardLoad(
        shard=shard, journal_events=events, vnode_events=vnode_events
    )


class TestHotShardDetector:
    def test_balanced_loads_produce_no_moves(self):
        report = HotShardDetector().analyze(
            [
                _load(0, 100, {(0, 0): 100}),
                _load(1, 110, {(1, 0): 110}),
            ]
        )
        assert report.balanced
        assert report.moves == []
        assert "balanced" in report.summary()

    def test_hot_shard_gets_vnode_moves_to_coolest(self):
        report = HotShardDetector(threshold=1.25).analyze(
            [
                _load(0, 300, {(0, 0): 200, (0, 1): 100}),
                _load(1, 60, {(1, 0): 60}),
                _load(2, 60, {(2, 0): 60}),
            ]
        )
        assert report.hot_shards == [0]
        assert report.moves, report.summary()
        move = report.moves[0]
        assert move.vnode == (0, 0) and move.from_shard == 0
        assert move.to_shard in (1, 2)
        # Recommendations are directly usable as ring overrides.
        ring = ConsistentHashRing(3).with_overrides(report.overrides())
        assert ring.overrides[move.vnode] == move.to_shard

    def test_single_vnode_shard_cannot_be_split(self):
        report = HotShardDetector().analyze(
            [
                _load(0, 500, {(0, 3): 500}),
                _load(1, 50, {(1, 0): 50}),
            ]
        )
        assert report.hot_shards == [0]
        assert report.moves == []  # one oversized tenant is indivisible

    def test_detector_rejects_non_amplifying_threshold(self):
        with pytest.raises(ConfigurationError):
            HotShardDetector(threshold=1.0)

    def test_e13_rollup_carries_vnode_attribution(self):
        farm = small_farm(2)
        with farm:
            farm.run(until=SMALL["duration"] + SMALL["drain"])
            rollup = farm.merged_rollup()
        assert sum(
            sum(load.vnode_events.values()) for load in rollup.loads
        ) == sum(load.journal_events for load in rollup.loads)
        assert rollup.placement.per_shard_events.keys() == {0, 1}
