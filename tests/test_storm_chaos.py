"""Alert-storm chaos tier: end-to-end hardening under burst traffic.

The storm workload (:class:`repro.testkit.generator.StormTrafficGenerator`)
replaces the polite round-robin chaos workload with what production portals
actually see: many sources bursting at once, a fraction of arrivals
re-submitted as duplicate copies.  These tests drive it through
:func:`repro.testkit.run_chaos` with hardening on and assert the extended
oracle (rate-limit fairness, no duplicate past dedup, every shed
journalled) holds, fingerprints are bit-reproducible, reproducer pins
round-trip the nested admission/storm configs, and the E12 sweep is
bit-identical under a worker pool.
"""

import pytest

from repro.core.admission import AdmissionConfig
from repro.experiments.storm import run_storm_comparison, run_storm_sweep
from repro.sim.clock import MINUTE
from repro.sim.failures import FaultKind, ScheduledFault
from repro.testkit import (
    ChaosRunConfig,
    StormConfig,
    StormTrafficGenerator,
    dump_reproducer,
    replay_reproducer,
    run_chaos,
)
from repro.testkit.schedule import make_reproducer
from repro.workloads.faultload import TARGET_IM_SERVICE

#: Small but violent: one burst intense enough (vs 2 tenants) to trip the
#: hardened per-tenant storm detector and drain the recipient buckets.
STORM = StormConfig(
    n_sources=3,
    base_rate=0.02,
    burst_rate=2.5,
    n_bursts=1,
    burst_duration=60.0,
    duplicate_probability=0.3,
)

HARDENED = AdmissionConfig.hardened()


def storm_config(admission=HARDENED, seed=17):
    return ChaosRunConfig(
        seed=seed,
        n_users=2,
        duration=10 * MINUTE,
        settle=15 * MINUTE,
        admission=admission,
        storm=STORM,
    )


def mid_burst_outage(config):
    """An IM outage over the storm's burst window (same seeded draw the
    workload uses, so it always lands on the real burst)."""
    windows = StormTrafficGenerator(
        config.seed, [f"user{i}" for i in range(config.n_users)], STORM,
        duration=config.duration, start=config.start,
    ).burst_windows()
    first = min(windows, key=lambda w: w.start)
    return [
        ScheduledFault(at=first.start, kind=FaultKind.IM_SERVICE_OUTAGE,
                       target=TARGET_IM_SERVICE, duration=first.duration)
    ]


class TestStormRun:
    def test_hardened_storm_oracle_green(self):
        config = storm_config()
        report = run_chaos(mid_burst_outage(config), config)
        assert report.ok, report.oracle.summary()
        # The extended invariants actually ran: per-tenant controllers
        # were audited, buckets fairness-checked.
        assert report.oracle.checked.get("admission_tenants") == 2
        assert report.oracle.checked.get("buckets", 0) > 0

    def test_storm_exercises_the_hardening_paths(self):
        config = storm_config()
        report = run_chaos(mid_burst_outage(config), config)
        rollup = report.admission
        # Duplicate upstream copies were suppressed by dedup keys...
        assert rollup["dedup_suppressed"] > 0
        # ...and the burst tripped storm mode and shed/coalesced traffic.
        assert rollup["storm_entries"] > 0
        assert rollup["shed"] + rollup["coalesced"] > 0
        # Sheds are explicit journalled outcomes, never silent drops
        # (the oracle cross-checks counts; spot-check the journal kinds).
        journalled = (
            report.outcome_counts.get("shed", 0)
            + report.outcome_counts.get("coalesced", 0)
        )
        assert journalled == rollup["shed"] + rollup["coalesced"]

    def test_storm_fingerprint_bit_reproducible(self):
        config = storm_config()
        schedule = mid_burst_outage(config)
        first = run_chaos(schedule, config)
        second = run_chaos(schedule, config)
        assert first.fingerprint() == second.fingerprint()

    def test_legacy_storm_run_still_green(self):
        """The storm workload alone (no hardening) must not break the
        pre-PR pipeline — duplicates die at the routed_ids guard."""
        config = storm_config(admission=None)
        report = run_chaos(mid_burst_outage(config), config)
        assert report.ok, report.oracle.summary()
        assert report.admission is None
        assert report.outcome_counts.get("duplicate_incoming", 0) > 0

    def test_hardened_and_legacy_fingerprints_differ(self):
        """Hardening on identical traffic is observable — same offered
        set, different outcome mix."""
        hardened = run_chaos([], storm_config())
        legacy = run_chaos([], storm_config(admission=None))
        assert hardened.offered == legacy.offered
        assert hardened.fingerprint() != legacy.fingerprint()


class TestStormReproducerRoundTrip:
    def test_pin_round_trips_nested_configs(self, tmp_path):
        config = storm_config()
        schedule = mid_burst_outage(config)
        report = run_chaos(schedule, config)
        path = tmp_path / "storm_pin.json"
        dump_reproducer(
            make_reproducer(report, schedule, note="storm round-trip"),
            path,
        )
        replayed = replay_reproducer(path)
        assert replayed.config.admission == config.admission
        assert replayed.config.storm == config.storm
        assert replayed.fingerprint() == report.fingerprint()


class TestStormSweepParallel:
    KWARGS = dict(
        n_users=2,
        storm=STORM,
        duration=10 * MINUTE,
        settle=15 * MINUTE,
    )

    def test_two_workers_bit_identical_to_sequential(self):
        seeds = [0, 1, 2]
        sequential = run_storm_sweep(seeds, jobs=1, **self.KWARGS)
        parallel = run_storm_sweep(seeds, jobs=2, **self.KWARGS)
        assert sequential == parallel
        for result in sequential:
            assert result.ok, result.variant("hardened").violations


class TestStormComparison:
    def test_e12_small_scale_contract(self):
        """The E12 verdict on a test-size storm: hardened accounts for
        everything, suppresses every duplicate copy, oracle green on
        both variants."""
        result = run_storm_comparison(seed=3, **TestStormSweepParallel.KWARGS)
        hardened = result.variant("hardened")
        permissive = result.variant("permissive")
        assert result.ok
        assert hardened.user_duplicates == 0
        assert hardened.unaccounted == 0
        assert permissive.unaccounted == 0
        # Identical traffic by construction.
        assert hardened.offered == permissive.offered
        # Hardening visibly engaged.
        assert hardened.shed + hardened.coalesced + hardened.rate_limited > 0
        assert hardened.dedup_suppressed > 0

    def test_jobs_flag_bit_identical(self):
        sequential = run_storm_comparison(
            seed=3, jobs=1, **TestStormSweepParallel.KWARGS
        )
        parallel = run_storm_comparison(
            seed=3, jobs=2, **TestStormSweepParallel.KWARGS
        )
        assert sequential == parallel


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
