"""End-to-end integration tests: source → MyAlertBuddy → user.

Uses fixed (sigma=0) channel latencies so every assertion is deterministic:
IM one-way 0.4 s, email 30 s, SMS 20 s, pessimistic-log write 0.5 s.
"""

import pytest

from repro.core import AlertSeverity, TimeWindow
from repro.core.rejuvenation import RejuvenationKind
from repro.net import ChannelType, LatencyModel
from repro.sim import HOUR, MINUTE
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
EMAIL_FIXED = LatencyModel(median=30.0, sigma=0.0, low=0.0, high=100.0)
SMS_FIXED = LatencyModel(median=20.0, sigma=0.0, low=0.0, high=100.0)


def make_world(seed=1, **overrides):
    config = WorldConfig(
        seed=seed,
        im_latency=IM_FIXED,
        email_latency=EMAIL_FIXED,
        email_loss=0.0,
        sms_latency=SMS_FIXED,
        sms_loss=0.0,
        **overrides,
    )
    return SimbaWorld(config)


def standard_rig(seed=1, present=True, with_mdc=False, **overrides):
    """World + user + configured buddy + one portal-style source."""
    world = make_world(seed=seed, **overrides)
    user = world.create_user("alice", present=present)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe(
        "Investment", user, "normal",
        keywords=["Stocks", "Financial news", "Earnings reports"],
    )
    deployment.subscribe("Home Safety", user, "critical", keywords=["Sensor ON"])
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")
    mdc = None
    if with_mdc:
        mdc = world.start_mdc(deployment)
    else:
        deployment.launch()
    return world, user, deployment, source, mdc


class TestHappyPath:
    def test_alert_reaches_user_via_im(self):
        world, user, deployment, source, _ = standard_rig()
        source.emit("Stocks", "MSFT up 3%", "details")
        world.run(until=60.0)
        receipts = user.receipts
        assert len(receipts) == 1
        assert receipts[0].channel is ChannelType.IM
        assert not receipts[0].duplicate
        # source→MAB IM 0.4 + log 0.5 + processing/routing ~0.8 + IM 0.4.
        assert 1.5 < receipts[0].latency < 5.0

    def test_source_got_ack_from_mab(self):
        world, user, deployment, source, _ = standard_rig()
        source.emit("Stocks", "MSFT", "x")
        world.run(until=60.0)
        (outcome,) = source.outcomes
        assert outcome.delivered
        assert outcome.delivered_via == 0  # IM block, no email fallback
        # Ack RTT = 0.4 + 0.5 (log) + 0.4 ≈ 1.3.
        assert outcome.blocks[0].elapsed == pytest.approx(1.3, abs=0.05)

    def test_journal_and_log_updated(self):
        world, user, deployment, source, _ = standard_rig()
        alert, _ = source.emit("Stocks", "MSFT", "x")
        world.run(until=60.0)
        assert deployment.journal.count("routed") == 1
        assert alert.alert_id in deployment.journal.routed_ids
        entry = deployment.log.entry_for_alert(alert.alert_id)
        assert entry is not None and entry.processed

    def test_unaccepted_source_rejected(self):
        world, user, deployment, source, _ = standard_rig()
        rogue = world.create_source("spammer")
        rogue.add_target(deployment.source_facing_book())
        rogue.emit("Stocks", "BUY NOW", "spam")
        world.run(until=60.0)
        assert user.receipts == []
        assert deployment.journal.count("rejected") == 1

    def test_unmapped_keyword_dropped(self):
        world, user, deployment, source, _ = standard_rig()
        source.emit("Gardening", "tulips", "x")
        world.run(until=60.0)
        assert user.receipts == []
        assert deployment.journal.count("unmapped") == 1

    def test_alert_sharing_multiple_subscribers(self):
        world, user, deployment, source, _ = standard_rig()
        bob = world.create_user("bob", present=True)
        deployment.register_user_endpoint(bob)
        deployment.config.subscriptions.subscribe("Investment", "bob", "normal")
        source.emit("Stocks", "MSFT", "x")
        world.run(until=60.0)
        assert len(user.receipts) == 1
        assert len(bob.receipts) == 1


class TestFallbacks:
    def test_user_away_falls_back_to_email(self):
        world, user, deployment, source, _ = standard_rig(present=False)
        source.emit("Stocks", "MSFT", "x")
        world.run(until=120.0)
        assert len(user.receipts) == 1
        assert user.receipts[0].channel is ChannelType.EMAIL

    def test_critical_mode_falls_back_to_sms_and_email(self):
        world, user, deployment, source, _ = standard_rig(present=False)
        source.emit("Sensor ON", "Basement water", "!!!", AlertSeverity.CRITICAL)
        world.run(until=120.0)
        channels = sorted(r.channel.value for r in user.receipts)
        assert channels == ["EM", "SMS"]

    def test_im_outage_source_falls_back_to_email_to_mab(self):
        world, user, deployment, source, _ = standard_rig()
        world.run(until=5.0)
        world.im.outage(10 * MINUTE)
        source.emit("Stocks", "MSFT", "x")
        world.run(until=5 * MINUTE)
        (outcome,) = source.outcomes
        assert outcome.delivered_via == 1  # email block to MAB
        # MAB got it by email (30 s) and the user's IM is also down, so the
        # user also gets it by email eventually.
        assert len(user.receipts) == 1
        assert user.receipts[0].channel is ChannelType.EMAIL

    def test_sanity_check_relogs_in_after_outage_ends(self):
        world, user, deployment, source, _ = standard_rig()
        world.run(until=5.0)
        world.im.outage(5 * MINUTE)
        world.run(until=20 * MINUTE)
        # The minutely IM sanity check re-logged MAB in after the outage.
        assert world.im.presence.is_online(deployment.im_address)
        assert deployment.endpoint.im_manager.stats.relogons >= 1
        # And alerts flow by IM again.
        source.emit("Stocks", "MSFT", "x")
        world.run(until=25 * MINUTE)
        assert user.receipts[-1].channel is ChannelType.IM

    def test_disabled_sms_address_falls_back(self):
        # §3.3: cell phone dead → disable SMS at MAB; critical block 2 then
        # delivers by email only.
        world, user, deployment, source, _ = standard_rig(present=False)
        deployment.config.subscriptions.address_book("alice").set_enabled(
            "SMS", False
        )
        source.emit("Sensor ON", "Basement water", "!")
        world.run(until=120.0)
        channels = [r.channel for r in user.receipts]
        assert channels == [ChannelType.EMAIL]
        assert world.sms.stats.submitted == 0


class TestFiltering:
    def test_disabled_category_suppressed(self):
        world, user, deployment, source, _ = standard_rig()
        deployment.config.filters.disable_category("Investment")
        source.emit("Stocks", "MSFT", "x")
        world.run(until=60.0)
        assert user.receipts == []
        assert deployment.journal.count("filtered") == 1

    def test_delivery_window_blocks_night_alerts(self):
        world, user, deployment, source, _ = standard_rig()
        deployment.config.filters.set_delivery_window(
            "Investment", TimeWindow(9 * HOUR, 17 * HOUR)
        )
        source.emit("Stocks", "midnight news", "x")  # t=0 is midnight
        world.run(until=60.0)
        assert user.receipts == []
        assert deployment.journal.count("filtered") == 1

    def test_dynamic_mode_switch(self):
        # §3.3: temporarily switch Investment delivery from digest to IM.
        world, user, deployment, source, _ = standard_rig()
        subs = deployment.config.subscriptions
        subs.unsubscribe("Investment", "alice")
        subs.subscribe("Investment", "alice", "digest")
        source.emit("Stocks", "slow news", "x")
        world.run(until=60.0)
        assert user.receipts[0].channel is ChannelType.EMAIL
        subs.unsubscribe("Investment", "alice")
        subs.subscribe("Investment", "alice", "normal")
        source.emit("Stocks", "fast news", "x")
        world.run(until=120.0)
        assert user.receipts[-1].channel is ChannelType.IM


class TestCrashRecovery:
    def test_crash_after_ack_alert_recovered_from_log(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)

        def scenario(env):
            source.emit("Stocks", "MSFT", "x")
            # Crash right after the pessimistic log write + ack (t≈1),
            # before MAB finishes routing (t≈2.5).
            yield env.timeout(1.1)
            deployment.current.crash()

        world.env.process(scenario(world.env))
        world.run(until=15 * MINUTE)
        # MDC restarted MAB; recovery replayed the logged alert.
        assert len(mdc.restarts) >= 1
        assert deployment.journal.count("recovery_replay") == 1
        assert len(user.unique_alerts_received()) == 1

    def test_crash_after_send_before_mark_causes_flagged_duplicate(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)
        alert_holder = {}

        def scenario(env):
            alert, _ = source.emit("Stocks", "MSFT", "x")
            alert_holder["alert"] = alert
            # Wait until the user received it but before MAB marks the log
            # entry processed... mark happens right after routing; instead,
            # delete the processed mark to emulate the race, then crash.
            yield env.timeout(30.0)
            entry = deployment.log.entry_for_alert(alert.alert_id)
            entry.processed = False
            deployment.journal.routed_ids.discard(alert.alert_id)
            deployment.current.crash()

        world.env.process(scenario(world.env))
        world.run(until=20 * MINUTE)
        receipts = user.receipts_for(alert_holder["alert"].alert_id)
        assert len(receipts) == 2
        assert [r.duplicate for r in receipts] == [False, True]
        assert user.duplicates_discarded() == 1

    def test_hang_detected_by_probe_and_restarted(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)

        def scenario(env):
            yield env.timeout(30.0)
            deployment.current.hang()

        world.env.process(scenario(world.env))
        world.run(until=20 * MINUTE)
        from repro.core.watchdog import RestartReason

        assert any(
            r.reason is RestartReason.PROBE_TIMEOUT for r in mdc.restarts
        )
        # Alerts flow again after the restart.
        source.emit("Stocks", "after recovery", "x")
        world.run(until=25 * MINUTE)
        assert len(user.receipts) == 1

    def test_repeated_crashes_trigger_reboot(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)

        def crasher(env):
            # Crash the buddy every minute, faster than the 10-minute
            # stability window: after >3 failed restarts the MDC reboots.
            for _ in range(12):
                yield env.timeout(MINUTE)
                current = deployment.current
                if current is not None and current.alive:
                    current.crash()

        world.env.process(crasher(world.env))
        world.run(until=2 * HOUR)
        assert world.host.reboots >= 1
        assert mdc.reboots_requested >= 1
        # After the reboot the stack came back: MAB is routing again.
        source.emit("Stocks", "post-reboot", "x")
        world.run(until=2 * HOUR + 5 * MINUTE)
        assert len(user.receipts) == 1


class TestRejuvenation:
    def test_nightly_rejuvenation_at_2330(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)
        world.run(until=24 * HOUR)
        kinds = [r.kind for r in deployment.journal.rejuvenations]
        assert RejuvenationKind.NIGHTLY in kinds
        nightly = next(
            r for r in deployment.journal.rejuvenations
            if r.kind is RejuvenationKind.NIGHTLY
        )
        assert nightly.at == pytest.approx(23.5 * HOUR, abs=1.0)
        # MDC restarted it; alerts still flow on day 2.
        source.emit("Stocks", "day two", "x")
        world.run(until=24 * HOUR + 10 * MINUTE)
        assert len(user.receipts) == 1

    def test_remote_keyword_rejuvenation_via_im(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)

        def admin(env):
            yield env.timeout(60.0)
            session = world.im.login("alice@im-admin")
            session.send(deployment.im_address, "SIMBA-REJUVENATE please")

        world.im.register_account("alice@im-admin")
        world.env.process(admin(world.env))
        world.run(until=30 * MINUTE)
        kinds = [r.kind for r in deployment.journal.rejuvenations]
        assert RejuvenationKind.REMOTE in kinds

    def test_memory_leak_triggers_rejuvenation(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)

        def leaker(env):
            yield env.timeout(60.0)
            deployment.current.leak_memory(500.0)

        world.env.process(leaker(world.env))
        world.run(until=30 * MINUTE)
        kinds = [r.kind for r in deployment.journal.rejuvenations]
        assert RejuvenationKind.EXCEPTION in kinds


class TestPowerAndDialogs:
    def test_power_outage_without_ups_comes_back_after_boot(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)

        def outage(env):
            yield env.timeout(5 * MINUTE)
            world.host.power_failure(10 * MINUTE)

        world.env.process(outage(world.env))
        world.run(until=HOUR)
        assert len(world.host.power_events) == 1
        assert world.host.up
        # Alerts delivered after recovery.
        source.emit("Stocks", "after power", "x")
        world.run(until=HOUR + 5 * MINUTE)
        assert len(user.receipts) == 1

    def test_power_outage_with_ups_is_a_nonevent(self):
        world, user, deployment, source, mdc = standard_rig(
            with_mdc=True, host_has_ups=True
        )

        def outage(env):
            yield env.timeout(5 * MINUTE)
            assert world.host.power_failure(10 * MINUTE) is False

        world.env.process(outage(world.env))
        source.emit("Stocks", "during outage?", "x")
        world.run(until=30 * MINUTE)
        assert world.host.power_events[0].survived_on_ups
        assert len(user.receipts) == 1

    def test_unknown_system_dialog_blocks_until_rule_registered(self):
        world, user, deployment, source, mdc = standard_rig(with_mdc=True)

        def scenario(env):
            yield env.timeout(60.0)
            # A dialog from "other parts of the system", unknown caption.
            world.host.screen.pop_dialog(
                "Strange driver warning", ("Ignore",), owner=None
            )
            yield env.timeout(10 * MINUTE)
            # Nothing could click it; IM sends from MAB are blocked.
            assert world.host.screen.open_dialogs()
            # Operator applies the paper's fix: register the pair.
            deployment.endpoint.im_manager.register_dialog_rule(
                "Strange driver warning", "Ignore"
            )

        world.env.process(scenario(world.env))
        world.run(until=30 * MINUTE)
        assert world.host.screen.open_dialogs() == []
        source.emit("Stocks", "after dialog fixed", "x")
        world.run(until=40 * MINUTE)
        assert len(user.receipts) == 1
