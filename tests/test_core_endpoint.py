"""Unit tests for the SimbaEndpoint runtime (receive loops, ack protocol,
pre-ack hooks, restart semantics)."""

import pytest

from repro.clients import Screen
from repro.core import Alert, SimbaEndpoint
from repro.core.endpoint import (
    ACK_PREFIX,
    IncomingAlert,
    make_ack_body,
    parse_ack_body,
)
from repro.net import (
    ChannelType,
    EmailService,
    IMService,
    LatencyModel,
    SMSGateway,
)
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=0.3, sigma=0.0, low=0.0, high=10.0)


class Rig:
    def __init__(self, seed=0, auto_ack=True, maintenance=None):
        self.env = Environment()
        rngs = RngRegistry(seed=seed)
        self.im = IMService(self.env, rngs.stream("im"), latency=FAST)
        self.email = EmailService(
            self.env, rngs.stream("email"), latency=FAST, loss_probability=0.0
        )
        self.sms = SMSGateway(
            self.env, rngs.stream("sms"), latency=FAST, loss_probability=0.0
        )
        self.screen = Screen(self.env)
        self.endpoint = SimbaEndpoint(
            self.env, "node", self.screen, self.im, self.email, self.sms,
            "node@im", "node@mail", auto_ack=auto_ack,
            maintenance_interval=maintenance,
        )

    def alert(self, alert_id=None):
        kwargs = {"alert_id": alert_id} if alert_id else {}
        return Alert(source="s", keyword="k", subject="subj", body="b",
                     created_at=self.env.now, **kwargs)

    def peer_session(self, address="peer@im"):
        self.im.register_account(address)
        return self.im.login(address)


class TestAckProtocol:
    def test_make_and_parse(self):
        assert parse_ack_body(make_ack_body(7)) == 7
        assert parse_ack_body(f"{ACK_PREFIX} ") is None
        assert parse_ack_body("") is None

    def test_incoming_im_alert_is_acked_and_queued(self):
        rig = Rig(auto_ack=True)
        rig.endpoint.start()
        peer = rig.peer_session()
        alert = rig.alert()
        got = []

        def consumer(env):
            incoming = yield rig.endpoint.alert_inbox.get()
            got.append(incoming)

        rig.env.process(consumer(rig.env))
        peer.send("node@im", alert.encode(), correlation=alert.alert_id)
        rig.env.run(until=30.0)
        assert len(got) == 1
        assert got[0].via is ChannelType.IM
        assert got[0].alert.alert_id == alert.alert_id
        # The peer received the ack referencing the original seq (1).
        ack = peer.inbox.items[0]
        assert parse_ack_body(ack.body) == 1

    def test_auto_ack_disabled(self):
        rig = Rig(auto_ack=False)
        rig.endpoint.start()
        peer = rig.peer_session()
        peer.send("node@im", rig.alert().encode())
        rig.env.run(until=30.0)
        assert len(peer.inbox) == 0
        assert len(rig.endpoint.alert_inbox) == 1

    def test_pre_ack_hook_runs_before_ack(self):
        rig = Rig(auto_ack=True)
        order = []

        def hook(incoming: IncomingAlert):
            order.append(("hook", rig.env.now))
            yield rig.env.timeout(1.0)  # a slow durable write

        rig.endpoint.pre_ack_hook = hook
        rig.endpoint.start()
        peer = rig.peer_session()
        peer.send("node@im", rig.alert().encode())
        rig.env.run(until=30.0)
        ack_sent_at = rig.im.stats.latencies  # deliveries: alert + ack
        assert order and order[0][0] == "hook"
        # Ack was delivered to the peer strictly after the 1 s hook.
        ack = peer.inbox.items[0]
        assert ack.created_at >= order[0][1] + 1.0

    def test_email_alert_reaches_inbox_without_ack(self):
        rig = Rig()
        rig.endpoint.start()
        alert = rig.alert()
        rig.email.send("s@mail", "node@mail", alert.subject, alert.encode())
        got = []

        def consumer(env):
            incoming = yield rig.endpoint.alert_inbox.get()
            got.append(incoming)

        rig.env.process(consumer(rig.env))
        rig.env.run(until=30.0)
        assert got[0].via is ChannelType.EMAIL
        assert got[0].seq is None

    def test_non_alert_messages_go_to_command_handler(self):
        rig = Rig()
        commands = []
        rig.endpoint.command_handler = commands.append
        rig.endpoint.start()
        peer = rig.peer_session()
        peer.send("node@im", "SIMBA-REJUVENATE")
        rig.email.send("a@mail", "node@mail", "hello", "just a mail")
        rig.env.run(until=30.0)
        assert len(commands) == 2
        assert len(rig.endpoint.alert_inbox) == 0

    def test_garbled_alert_payload_dropped(self):
        rig = Rig()
        rig.endpoint.start()
        peer = rig.peer_session()
        peer.send("node@im", "SIMBA-ALERT/1\nid=x\n\nbroken")  # missing fields
        rig.env.run(until=30.0)
        assert len(rig.endpoint.alert_inbox) == 0

    def test_ack_resolution_via_engine(self):
        """An outgoing ack-block delivery resolves from the receive loop."""
        rig = Rig(auto_ack=False)
        rig.endpoint.start()
        peer = rig.peer_session()

        def acker(env):
            message = yield peer.receive()
            yield env.timeout(0.5)
            peer.send(message.sender, make_ack_body(message.seq))

        rig.env.process(acker(rig.env))

        from repro.core import AddressBook, UserAddress
        from repro.core.delivery_modes import im_ack_then_email

        book = AddressBook(owner="peer")
        book.add(UserAddress("IM", ChannelType.IM, "peer@im"))
        book.add(UserAddress("Email", ChannelType.EMAIL, "peer@mail"))
        mode = im_ack_then_email()
        proc = rig.env.process(
            rig.endpoint.deliver_alert(rig.alert(), mode, book)
        )
        rig.env.run(until=proc)
        outcome = proc.value
        assert outcome.delivered and outcome.delivered_via == 0
        # RTT: 0.3 out + 0.5 think + 0.3 back.
        assert outcome.blocks[0].elapsed == pytest.approx(1.1, abs=0.01)


class TestEndpointLifecycle:
    def test_start_idempotent(self):
        rig = Rig()
        rig.endpoint.start()
        generation = rig.endpoint._generation
        rig.endpoint.start()
        assert rig.endpoint._generation == generation

    def test_stop_and_restart_does_not_lose_queued_messages(self):
        rig = Rig(auto_ack=False)
        rig.endpoint.start()
        peer = rig.peer_session()

        def scenario(env):
            yield env.timeout(1.0)
            rig.endpoint.stop()
            # Message arrives while stopped: it stays in the client queue
            # until a new generation (or is consumed+returned by the stale
            # loop).
            peer.send("node@im", rig.alert().encode())
            yield env.timeout(5.0)
            rig.endpoint.start()
            yield env.timeout(5.0)

        done = rig.env.process(scenario(rig.env))
        rig.env.run(until=done)
        rig.env.run(until=30.0)
        assert len(rig.endpoint.alert_inbox) == 1

    def test_maintenance_loop_relogs_in(self):
        rig = Rig(maintenance=30.0)
        rig.endpoint.start()
        rig.env.run(until=1.0)
        rig.im.force_logout("node@im")
        rig.env.run(until=2 * 60.0)
        assert rig.im.presence.is_online("node@im")
        assert rig.endpoint.im_manager.stats.relogons >= 1

    def test_stop_with_shutdown_terminates_clients(self):
        rig = Rig()
        rig.endpoint.start()
        rig.env.run(until=1.0)
        rig.endpoint.stop(shutdown_clients=True)
        assert not rig.endpoint.im_client.running
        assert not rig.endpoint.email_client.running
        assert not rig.im.presence.is_online("node@im")
