"""Test-debt sweep: focused units for the least-covered core corners.

Three modules had real branch gaps — the XML codec's malformed-document
paths (every ``ConfigurationError`` branch), the rejuvenation policy's
scheduling boundaries, and the monkey thread's unmatched-dialog handling
(the paper's own residual failure mode).  Plus the
:class:`~repro.metrics.collector.LatencyCollector` fix: ``extend`` takes
any iterable and materializes it exactly once.
"""

import pytest

from repro.core.addresses import AddressBook, UserAddress
from repro.core.delivery_modes import Action, CommunicationBlock, DeliveryMode
from repro.core.monkey import SYSTEM_GENERIC_RULES, MonkeyThread
from repro.core.rejuvenation import (
    DEFAULT_KEYWORD,
    DEFAULT_NIGHTLY_TIME,
    RejuvenationPolicy,
)
from repro.core.xml_codec import (
    address_book_from_xml,
    address_book_to_xml,
    delivery_mode_from_xml,
    delivery_mode_to_xml,
)
from repro.errors import ConfigurationError
from repro.metrics.collector import LatencyCollector
from repro.net.message import ChannelType
from repro.sim.clock import DAY, HOUR
from repro.sim.clock import seconds_until_time_of_day as until


# ---------------------------------------------------------------------------
# XML codec
# ---------------------------------------------------------------------------


class TestAddressXmlErrors:
    def test_unparseable_document(self):
        with pytest.raises(ConfigurationError, match="malformed address XML"):
            address_book_from_xml("<userAddresses owner='a'>")

    def test_wrong_root_tag(self):
        with pytest.raises(ConfigurationError, match="expected <userAddresses>"):
            address_book_from_xml("<addresses owner='a'/>")

    def test_missing_owner(self):
        with pytest.raises(ConfigurationError, match="owner attribute"):
            address_book_from_xml("<userAddresses/>")

    def test_unexpected_child_element(self):
        with pytest.raises(ConfigurationError, match="unexpected element"):
            address_book_from_xml(
                "<userAddresses owner='a'><phone/></userAddresses>"
            )

    def test_address_missing_type_or_name(self):
        for attrs in ("name='x'", "type='IM'"):
            with pytest.raises(ConfigurationError, match="type and name"):
                address_book_from_xml(
                    f"<userAddresses owner='a'><address {attrs}>v</address>"
                    "</userAddresses>"
                )

    def test_unknown_channel_tag(self):
        with pytest.raises(ConfigurationError):
            address_book_from_xml(
                "<userAddresses owner='a'>"
                "<address type='FAX' name='f'>v</address></userAddresses>"
            )

    def test_invalid_enabled_boolean(self):
        with pytest.raises(ConfigurationError, match="invalid boolean"):
            address_book_from_xml(
                "<userAddresses owner='a'><address type='IM' name='i' "
                "enabled='maybe'>v</address></userAddresses>"
            )

    def test_round_trip_preserves_disabled_and_whitespace(self):
        book = AddressBook(owner="alice")
        book.add(UserAddress(friendly_name="MSN IM", channel=ChannelType.IM,
                             address="alice@im", enabled=False))
        parsed = address_book_from_xml(address_book_to_xml(book))
        restored = parsed.get("MSN IM")
        assert restored.enabled is False
        assert restored.address == "alice@im"


class TestDeliveryModeXmlErrors:
    def test_unparseable_document(self):
        with pytest.raises(ConfigurationError, match="malformed delivery-mode"):
            delivery_mode_from_xml("<deliveryMode name='x'")

    def test_wrong_root_tag(self):
        with pytest.raises(ConfigurationError, match="expected <deliveryMode>"):
            delivery_mode_from_xml("<mode name='x'/>")

    def test_missing_name(self):
        with pytest.raises(ConfigurationError, match="name attribute"):
            delivery_mode_from_xml("<deliveryMode/>")

    def test_empty_blocks_rejected(self):
        """A mode with no communication blocks has no way to deliver
        anything — §4.1 requires "one or more" blocks."""
        with pytest.raises(ConfigurationError, match=">= 1 communication"):
            delivery_mode_from_xml("<deliveryMode name='x'></deliveryMode>")

    def test_block_with_no_actions_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 1 action"):
            delivery_mode_from_xml(
                "<deliveryMode name='x'><block/></deliveryMode>"
            )

    def test_unexpected_elements(self):
        with pytest.raises(ConfigurationError, match="unexpected element"):
            delivery_mode_from_xml(
                "<deliveryMode name='x'><step/></deliveryMode>"
            )
        with pytest.raises(ConfigurationError, match="unexpected element"):
            delivery_mode_from_xml(
                "<deliveryMode name='x'><block><go/></block></deliveryMode>"
            )

    def test_action_requires_address(self):
        with pytest.raises(ConfigurationError, match="requires an address"):
            delivery_mode_from_xml(
                "<deliveryMode name='x'><block><action/></block>"
                "</deliveryMode>"
            )

    def test_invalid_ack_timeout(self):
        with pytest.raises(ConfigurationError, match="invalid ackTimeout"):
            delivery_mode_from_xml(
                "<deliveryMode name='x'>"
                "<block requireAck='true' ackTimeout='soon'>"
                "<action address='IM'/></block></deliveryMode>"
            )

    def test_invalid_require_ack_boolean(self):
        with pytest.raises(ConfigurationError, match="invalid boolean"):
            delivery_mode_from_xml(
                "<deliveryMode name='x'><block requireAck='si'>"
                "<action address='IM'/></block></deliveryMode>"
            )

    def test_round_trip_preserves_ack_settings(self):
        mode = DeliveryMode(
            name="Critical",
            blocks=[
                CommunicationBlock(actions=[Action("IM")],
                                   require_ack=True, ack_timeout=7.5),
                CommunicationBlock(actions=[Action("SMS"), Action("Email")]),
            ],
        )
        parsed = delivery_mode_from_xml(delivery_mode_to_xml(mode))
        assert parsed.name == "Critical"
        assert parsed.blocks[0].require_ack is True
        assert parsed.blocks[0].ack_timeout == 7.5
        assert parsed.blocks[1].require_ack is False
        assert [a.address_ref for a in parsed.blocks[1].actions] == [
            "SMS", "Email",
        ]


# ---------------------------------------------------------------------------
# Rejuvenation scheduling boundaries
# ---------------------------------------------------------------------------


class TestRejuvenationScheduling:
    def test_before_target_same_day(self):
        assert until(0.0, DEFAULT_NIGHTLY_TIME) == DEFAULT_NIGHTLY_TIME

    def test_after_target_wraps_to_next_day(self):
        now = DEFAULT_NIGHTLY_TIME + HOUR  # half past midnight-ish
        assert until(now, DEFAULT_NIGHTLY_TIME) == DAY - HOUR

    def test_exactly_at_target_waits_a_full_day(self):
        """The nightly loop must not re-fire at the instant it woke up."""
        assert until(DEFAULT_NIGHTLY_TIME, DEFAULT_NIGHTLY_TIME) == DAY

    def test_day_offsets_are_irrelevant(self):
        assert until(3 * DAY + HOUR, DEFAULT_NIGHTLY_TIME) == until(
            HOUR, DEFAULT_NIGHTLY_TIME
        )

    def test_midnight_target_boundary(self):
        assert until(0.0, 0.0) == DAY
        assert until(DAY - 1.0, 0.0) == 1.0

    def test_target_outside_a_day_rejected(self):
        with pytest.raises(ValueError):
            until(0.0, DAY)
        with pytest.raises(ValueError):
            until(0.0, -1.0)

    def test_keyword_matching(self):
        policy = RejuvenationPolicy()
        assert policy.matches_keyword(f"please {DEFAULT_KEYWORD} now")
        assert not policy.matches_keyword("please restart now")
        assert not policy.matches_keyword(DEFAULT_KEYWORD.lower())

    def test_extra_keywords(self):
        policy = RejuvenationPolicy(keywords={"KICK-ME", DEFAULT_KEYWORD})
        assert policy.matches_keyword("KICK-ME")


# ---------------------------------------------------------------------------
# Monkey thread: unmatched dialogs
# ---------------------------------------------------------------------------


class TestMonkeyUnmatchedDialogs:
    def _make(self, **kwargs):
        from repro.clients.screen import Screen
        from repro.sim.kernel import Environment

        env = Environment()
        screen = Screen(env)
        return env, screen, MonkeyThread(env, screen, **kwargs)

    def test_unknown_caption_left_on_screen_and_recorded(self):
        env, screen, monkey = self._make()
        screen.pop_dialog("Previously unknown box", buttons=("Abort",))
        assert monkey.scan_once() == 0
        assert monkey.unknown_captions == {"Previously unknown box"}
        assert len(screen.open_dialogs()) == 1
        assert monkey.clicks == []

    def test_registered_rule_with_stale_button_is_useless(self):
        """A caption-button pair whose button no longer exists on the
        dialog must be treated as unknown, not crash the click."""
        env, screen, monkey = self._make()
        monkey.register_rule("Session expired", "Reconnect")
        screen.pop_dialog("Session expired", buttons=("Close",))
        assert monkey.scan_once() == 0
        assert "Session expired" in monkey.unknown_captions
        assert len(screen.open_dialogs()) == 1

    def test_registering_the_rule_recovers_the_dialog(self):
        env, screen, monkey = self._make()
        screen.pop_dialog("New box", buttons=("OK",))
        monkey.scan_once()
        monkey.register_rule("New box", "OK")
        assert monkey.scan_once() == 1
        assert screen.open_dialogs() == []
        # unknown_captions is forensic history: it keeps the sighting.
        assert "New box" in monkey.unknown_captions

    def test_system_generic_rules_still_click(self):
        env, screen, monkey = self._make()
        caption, button = next(iter(SYSTEM_GENERIC_RULES.items()))
        screen.pop_dialog(caption, buttons=(button, "Cancel"))
        screen.pop_dialog("Mystery", buttons=("OK",))
        assert monkey.scan_once() == 1
        assert [c.caption for c in monkey.clicks] == [caption]
        assert monkey.unknown_captions == {"Mystery"}

    def test_register_rule_validates(self):
        _env, _screen, monkey = self._make()
        with pytest.raises(ValueError):
            monkey.register_rule("", "OK")
        with pytest.raises(ValueError):
            monkey.register_rule("Caption", "")

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            self._make(interval=0.0)


# ---------------------------------------------------------------------------
# LatencyCollector.extend takes any iterable
# ---------------------------------------------------------------------------


class TestCollectorExtend:
    def test_extend_accepts_a_generator(self):
        collector = LatencyCollector()
        collector.extend("ack", (float(v) for v in range(3)))
        assert collector.samples("ack") == [0.0, 1.0, 2.0]

    def test_extend_accepts_tuples_and_coerces(self):
        collector = LatencyCollector()
        collector.extend("ack", (1, 2))
        assert collector.samples("ack") == [1.0, 2.0]
        assert collector.summary("ack").count == 2

    def test_failing_iterable_records_nothing(self):
        def explode():
            yield 1.0
            raise RuntimeError("source died")

        collector = LatencyCollector()
        with pytest.raises(RuntimeError):
            collector.extend("ack", explode())
        assert collector.samples("ack") == []
