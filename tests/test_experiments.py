"""Scaled-down runs of every experiment harness (shape checks).

The benchmarks run the full-size versions; these tests keep the harness
code covered in the regular suite with small parameters.
"""

import pytest

from repro.experiments import (
    HAFeatures,
    run_ack_roundtrip,
    run_aladdin_disarm,
    run_comparison,
    run_fault_month,
    run_im_one_way,
    run_portal_log,
    run_proxy_routing,
    run_wish_location,
)
from repro.experiments.fault_tolerance import run_logging_window
from repro.sim.clock import DAY, MINUTE
from repro.workloads.faultload import FaultloadSpec


class TestLatencyHarnesses:
    def test_e1_small(self):
        summary = run_im_one_way(n_alerts=40, seed=5)
        assert summary.count == 40
        assert summary.median < 1.0

    def test_e2_small(self):
        summary = run_ack_roundtrip(n_alerts=40, seed=5)
        assert summary.count == 40
        assert 1.0 < summary.mean < 2.5

    def test_e3_small(self):
        summary = run_proxy_routing(n_changes=20, seed=5)
        assert summary.count == 20
        assert 1.5 < summary.mean < 4.0

    def test_e4_small(self):
        result = run_aladdin_disarm(n_presses=10, seed=5)
        assert result.receipts == 10
        assert 6.0 < result.end_to_end.mean < 18.0
        assert result.press_to_gateway_alert.mean > result.simba_delivery.mean

    def test_e5_small(self):
        result = run_wish_location(n_moves=10, seed=5)
        assert result.alerts >= 8
        assert 2.5 < result.report_to_im.mean < 8.0
        assert result.mean_confidence > 40.0


SMALL_SPEC = FaultloadSpec(
    duration=4 * DAY,
    im_outages=2,
    client_logouts=3,
    client_hangs=2,
    mab_faults=6,
    known_dialogs=2,
    unknown_dialogs=1,
    power_outages=1,
    memory_leaks=1,
)


class TestFaultHarness:
    def test_e6_small_week(self):
        result = run_fault_month(seed=3, spec=SMALL_SPEC,
                                 alert_period=15 * MINUTE)
        assert result.delivery_ratio > 0.9
        assert result.client_restarts == 2
        assert result.unrecovered == 2  # 1 power + 1 unknown dialog
        assert result.user_latency.median < 10.0

    def test_e9_watchdog_ablation_collapses(self):
        result = run_fault_month(
            seed=3,
            spec=SMALL_SPEC,
            alert_period=15 * MINUTE,
            features=HAFeatures(watchdog=False),
        )
        full = run_fault_month(seed=3, spec=SMALL_SPEC,
                               alert_period=15 * MINUTE)
        assert result.delivery_ratio < full.delivery_ratio

    def test_logging_window_guarantee(self):
        logged = run_logging_window(seed=2, n_alerts=6, logging_enabled=True)
        unlogged = run_logging_window(seed=2, n_alerts=6,
                                      logging_enabled=False)
        assert logged.acked_but_lost == 0
        assert logged.recovery_replays > 0
        assert unlogged.recovery_replays == 0
        assert unlogged.acked_but_lost >= 1


class TestScaleAndComparison:
    def test_e7_replay_only(self):
        result = run_portal_log(
            seed=2, full_scale_days=1, replay_users=4,
            replay_alerts_target=60,
        )
        assert 700_000 < result.mean_alerts_per_day < 860_000
        assert result.replay_delivery_ratio > 0.9
        assert result.replay_latency.median < 10.0

    def test_e8_small(self):
        result = run_comparison(n_alerts=60, seed=2)
        simba = result.by_name("simba")
        redundant = result.by_name("redundant")
        email = result.by_name("email-only")
        assert simba.messages_per_alert < 2.0
        assert redundant.messages_per_alert > 3.0
        assert simba.latency.median < email.latency.median
        assert simba.critical_on_time_ratio >= redundant.critical_on_time_ratio
