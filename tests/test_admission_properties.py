"""Property-based tests for the admission layer (PR 7 satellite).

Seeded properties over :mod:`repro.core.admission`'s primitives:

1. **Bucket fairness** — over *any* interval ``[s, t]`` a token bucket
   grants at most ``burst + rate * (t - s)`` tokens, for arbitrary
   interleavings of time advances and take attempts.
2. **Dedup exactness** — a check suppresses a key iff that key was
   previously marked (and the LRU bound evicts oldest-first, never a
   just-marked key).
3. **Backoff shape** — the jitter-free schedule is monotone nondecreasing
   and capped; jittered delays stay within the jitter envelope and the
   cap, and are deterministic per RNG stream.
4. **Shed determinism** — two controllers with the same (config, owner)
   fed the same arrival sequence make identical decisions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    BackoffPolicy,
    DedupStore,
    LoadShedder,
    TokenBucket,
    dedup_key,
)
from repro.sim.rng import RngRegistry

# ---------------------------------------------------------------------------
# 1. Token buckets never exceed rate * window over any interval
# ---------------------------------------------------------------------------

#: (advance seconds, number of take attempts) steps.
bucket_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=8),
    ),
    min_size=1,
    max_size=60,
)


def assert_fair(bucket: TokenBucket) -> None:
    """Grants inside any [i, j] grant-pair window obey the bound."""
    grants = list(bucket.grants)
    for i in range(len(grants)):
        for j in range(i, len(grants)):
            count = j - i + 1
            window = grants[j] - grants[i]
            assert count <= bucket.burst + bucket.rate * window + 1e-9, (
                f"{count} grants in {window:.3f}s violates "
                f"burst={bucket.burst} rate={bucket.rate}"
            )


@settings(max_examples=60, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=10.0),
    burst=st.floats(min_value=1.0, max_value=10.0),
    steps=bucket_steps,
)
def test_bucket_never_exceeds_rate_times_window(rate, burst, steps):
    bucket = TokenBucket(rate, burst)
    now = 0.0
    granted = 0
    for advance, attempts in steps:
        now += advance
        for _ in range(attempts):
            if bucket.try_take(now):
                granted += 1
    assert granted == bucket.granted_total == len(bucket.grants)
    assert_fair(bucket)


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=5.0),
    burst=st.floats(min_value=1.0, max_value=6.0),
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=20.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40,
    ),
)
def test_reserved_commits_preserve_fairness(rate, burst, gaps):
    """The reserve-then-take_at path (ThrottleStage) is fair too: tokens
    committed at ``now + wait`` never exceed the bound at commit time."""
    config = AdmissionConfig(
        recipient_rate=rate, recipient_burst=burst,
        max_throttle_delay=1e9,
    )
    controller = AdmissionController(config, "prop")
    now = 0.0
    for gap in gaps:
        now += gap
        wait = controller.reserve_route(now, "prop")
        assert wait is not None and wait >= 0.0
    assert_fair(controller.recipient_buckets["prop"])


def test_bucket_wait_time_is_sufficient():
    bucket = TokenBucket(rate=2.0, burst=2.0)
    now = 0.0
    for _ in range(int(bucket.burst)):
        assert bucket.try_take(now)
    assert not bucket.try_take(now)
    wait = bucket.wait_time(now)
    assert wait > 0.0
    assert bucket.try_take(now + wait)


def test_rate_limited_reservation_commits_nothing():
    config = AdmissionConfig(
        recipient_rate=0.5, recipient_burst=1.0, max_throttle_delay=1.0
    )
    controller = AdmissionController(config, "prop")
    assert controller.reserve_route(0.0, "prop") == 0.0
    # Bucket empty; refill to one token takes 2 s > max_throttle_delay.
    assert controller.reserve_route(0.0, "prop") is None
    bucket = controller.recipient_buckets["prop"]
    assert bucket.granted_total == 1
    assert bucket.rejected_total == 1
    # Nothing was committed, so waiting out the refill succeeds.
    assert controller.reserve_route(2.0, "prop") == 0.0


# ---------------------------------------------------------------------------
# 2. Dedup suppresses exactly the duplicate set
# ---------------------------------------------------------------------------

#: (key index, is_mark) operations over a small key universe.
dedup_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=19), st.booleans()),
    min_size=1,
    max_size=120,
)


@settings(max_examples=80, deadline=None)
@given(ops=dedup_ops)
def test_dedup_suppresses_exactly_the_marked_set(ops):
    """With the LRU bound not in play, a check hits iff the key was
    previously marked — no false suppressions, no misses."""
    store = DedupStore(max_entries=64)  # > key universe: bound never trips
    marked: set[str] = set()
    expected_hits = 0
    for index, (key_index, is_mark) in enumerate(ops):
        key = f"k{key_index}"
        if is_mark:
            store.mark(key, at=float(index))
            marked.add(key)
        else:
            hit = store.check(key, at=float(index))
            assert hit == (key in marked)
            expected_hits += int(hit)
    assert store.suppressed_total == expected_hits
    assert store.ever_marked == marked
    assert store.evicted_total == 0


@settings(max_examples=40, deadline=None)
@given(n_keys=st.integers(min_value=5, max_value=40))
def test_dedup_lru_bound_evicts_oldest_first(n_keys):
    store = DedupStore(max_entries=4)
    for i in range(n_keys):
        store.mark(f"k{i}", at=float(i))
    assert len(store) == min(n_keys, 4)
    assert store.evicted_total == max(0, n_keys - 4)
    # The most recent keys always survive.
    for i in range(max(0, n_keys - 4), n_keys):
        assert f"k{i}" in store
    assert store.marked_total == n_keys


def test_dedup_key_buckets_by_created_at():
    a = dedup_key("alert-1", "IM", "u", created_at=10.0, window=3600.0)
    b = dedup_key("alert-1", "IM", "u", created_at=3599.0, window=3600.0)
    c = dedup_key("alert-1", "IM", "u", created_at=3601.0, window=3600.0)
    assert a == b != c
    assert a == "alert-1:IM:u:0"


# ---------------------------------------------------------------------------
# 3. Backoff monotone and bounded
# ---------------------------------------------------------------------------

backoff_policies = st.builds(
    BackoffPolicy,
    base=st.floats(min_value=0.1, max_value=120.0),
    factor=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=60.0, max_value=3600.0),
    jitter=st.floats(min_value=0.0, max_value=0.5),
)


@settings(max_examples=80, deadline=None)
@given(policy=backoff_policies, seed=st.integers(min_value=0, max_value=2**31))
def test_backoff_monotone_and_bounded(policy, seed):
    raw = [policy.raw_delay(attempt) for attempt in range(12)]
    for earlier, later in zip(raw, raw[1:]):
        assert later >= earlier  # monotone nondecreasing
    assert all(0.0 < d <= policy.max_delay for d in raw)

    rng = RngRegistry(seed=seed).stream("backoff-prop")
    for attempt in range(12):
        delay = policy.delay_for(attempt, rng)
        assert 0.0 < delay <= policy.max_delay
        # Within the jitter envelope of the un-clamped schedule.
        unclamped = policy.base * policy.factor ** attempt
        assert delay >= min(
            unclamped * (1.0 - policy.jitter), policy.max_delay
        ) - 1e-9


def test_backoff_jitter_is_deterministic_per_seed():
    policy = BackoffPolicy(jitter=0.3)
    delays_a = [
        policy.delay_for(i, RngRegistry(seed=7).stream("s"))
        for i in range(6)
    ]
    delays_b = [
        policy.delay_for(i, RngRegistry(seed=7).stream("s"))
        for i in range(6)
    ]
    assert delays_a == delays_b
    delays_c = [
        policy.delay_for(i, RngRegistry(seed=8).stream("s"))
        for i in range(6)
    ]
    assert delays_a != delays_c


# ---------------------------------------------------------------------------
# 4. Shed decisions deterministic per seed
# ---------------------------------------------------------------------------

#: (gap, severity, queue_depth) arrival triples.
arrivals = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["routine", "important", "critical"]),
        st.integers(min_value=0, max_value=20),
    ),
    min_size=1,
    max_size=80,
)


def _decide_all(controller: AdmissionController, steps):
    now = 0.0
    decisions = []
    for index, (gap, severity, depth) in enumerate(steps):
        now += gap
        d = controller.admit(now, f"a{index}", "News", severity, depth)
        decisions.append((d.action, d.reason, d.coalesced_into))
    return decisions


@settings(max_examples=60, deadline=None)
@given(steps=arrivals, seed=st.integers(min_value=0, max_value=2**31))
def test_shed_decisions_deterministic_per_seed(steps, seed):
    config = AdmissionConfig.hardened(seed=seed)
    a = AdmissionController(config, "prop")
    b = AdmissionController(config, "prop")
    assert _decide_all(a, steps) == _decide_all(b, steps)
    assert a.shed_counts == b.shed_counts
    assert a.shedder.storm_entries == b.shedder.storm_entries


@settings(max_examples=60, deadline=None)
@given(steps=arrivals)
def test_shed_spares_exempt_severities(steps):
    """Only configured severities are ever shed or coalesced, and every
    non-admit decision is tallied in ``shed_counts``."""
    config = AdmissionConfig.hardened()
    controller = AdmissionController(config, "prop")
    now = 0.0
    not_admitted = 0
    for index, (gap, severity, depth) in enumerate(steps):
        now += gap
        decision = controller.admit(
            now, f"a{index}", "News", severity, depth
        )
        if decision.action != "admit":
            assert severity in config.shed_severities
            not_admitted += 1
        if decision.action == "coalesce":
            assert decision.coalesced_into is not None
    assert sum(controller.shed_counts.values()) == not_admitted


def test_storm_detector_rate_and_depth_thresholds():
    shedder = LoadShedder(window=10.0, rate_threshold=1.0, depth_threshold=5)
    # Below both thresholds: no storm.
    shedder.record_arrival(0.0)
    assert not shedder.storm_active(0.0, queue_depth=0)
    # Depth alone trips it.
    assert shedder.storm_active(0.0, queue_depth=5)
    # Rate alone trips it: 10 arrivals inside the 10 s window.
    quiet = LoadShedder(window=10.0, rate_threshold=1.0, depth_threshold=None)
    for i in range(10):
        quiet.record_arrival(50.0 + i * 0.5)
    assert quiet.storm_active(55.0, queue_depth=0)
    assert quiet.storm_entries == 1
    # The window slides: long after the burst the rate decays to zero.
    assert not quiet.storm_active(200.0, queue_depth=0)


def test_retry_budget_survives_and_exhausts():
    config = AdmissionConfig(retry_budget=2)
    controller = AdmissionController(config, "prop")
    assert controller.take_retry_token("a1")
    assert controller.take_retry_token("a1")
    assert not controller.take_retry_token("a1")  # budget spent
    assert controller.take_retry_token("a2")  # independent per alert
    letter = controller.dead_letter("a1", "budget exhausted", at=9.0,
                                    attempts=3)
    assert "a1" in controller.dead_letters
    assert controller.dead_letters.get("a1") is letter
    assert len(controller.dead_letters) == 1


def test_permissive_config_is_inert():
    config = AdmissionConfig.permissive()
    assert not config.any_enabled
    controller = AdmissionController(config, "prop")
    assert controller.reserve_route(0.0, "prop") == 0.0
    assert controller.try_submit(0.0, "IM")
    assert controller.dedup_check("a", "IM", 0.0, 0.0) is None
    controller.dedup_mark("a", 0.0, 0.0)
    assert controller.admit(0.0, "a", "News", "routine", 10**6).action == \
        "admit"
    assert controller.take_retry_token("a")
    assert controller.retry_delay(3, fallback=60.0) == 60.0
    assert controller.summary()["shed"] == 0


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
