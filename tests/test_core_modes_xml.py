"""Unit + property tests for delivery modes and the XML codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Action,
    AddressBook,
    CommunicationBlock,
    DeliveryMode,
    UserAddress,
)
from repro.core.delivery_modes import im_ack_then_email
from repro.core.xml_codec import (
    address_book_from_xml,
    address_book_to_xml,
    delivery_mode_from_xml,
    delivery_mode_to_xml,
)
from repro.errors import ConfigurationError
from repro.net import ChannelType


class TestDeliveryModeModel:
    def test_block_requires_actions(self):
        with pytest.raises(ConfigurationError):
            CommunicationBlock(actions=[])

    def test_block_rejects_duplicate_actions(self):
        with pytest.raises(ConfigurationError):
            CommunicationBlock(actions=[Action("IM"), Action("IM")])

    def test_block_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            CommunicationBlock(actions=[Action("IM")], ack_timeout=0.0)

    def test_mode_requires_blocks(self):
        with pytest.raises(ConfigurationError):
            DeliveryMode(name="empty", blocks=[])

    def test_mode_requires_name(self):
        with pytest.raises(ConfigurationError):
            DeliveryMode(name="", blocks=[CommunicationBlock([Action("IM")])])

    def test_action_requires_ref(self):
        with pytest.raises(ConfigurationError):
            Action("")

    def test_referenced_addresses(self):
        mode = DeliveryMode(
            name="m",
            blocks=[
                CommunicationBlock([Action("IM")], require_ack=True),
                CommunicationBlock([Action("SMS"), Action("Email")]),
            ],
        )
        assert mode.referenced_addresses() == {"IM", "SMS", "Email"}

    def test_im_ack_then_email_canonical_shape(self):
        mode = im_ack_then_email("My IM", "My Email", ack_timeout=8.0)
        assert len(mode.blocks) == 2
        assert mode.blocks[0].require_ack and mode.blocks[0].ack_timeout == 8.0
        assert [a.address_ref for a in mode.blocks[0].actions] == ["My IM"]
        assert not mode.blocks[1].require_ack
        assert [a.address_ref for a in mode.blocks[1].actions] == ["My Email"]


class TestModeXml:
    def _sample(self):
        return DeliveryMode(
            name="Critical",
            blocks=[
                CommunicationBlock(
                    [Action("MSN IM")], require_ack=True, ack_timeout=15.0
                ),
                CommunicationBlock([Action("Cell SMS"), Action("Work email")]),
            ],
        )

    def test_roundtrip(self):
        mode = self._sample()
        restored = delivery_mode_from_xml(delivery_mode_to_xml(mode))
        assert restored == mode

    def test_figure4_shape_two_blocks(self):
        xml = delivery_mode_to_xml(self._sample())
        assert xml.count("<block") == 2
        assert xml.count("<action") == 3

    def test_parse_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml("<deliveryMode name='x'><block>")

    def test_parse_rejects_wrong_root(self):
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml("<notAMode/>")

    def test_parse_rejects_missing_name(self):
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml(
                "<deliveryMode><block><action address='x'/></block></deliveryMode>"
            )

    def test_parse_rejects_action_without_address(self):
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml(
                "<deliveryMode name='m'><block><action/></block></deliveryMode>"
            )

    def test_parse_rejects_unknown_elements(self):
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml("<deliveryMode name='m'><frob/></deliveryMode>")
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml(
                "<deliveryMode name='m'><block><frob/></block></deliveryMode>"
            )

    def test_parse_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml(
                "<deliveryMode name='m'>"
                "<block requireAck='true' ackTimeout='soon'>"
                "<action address='IM'/></block></deliveryMode>"
            )

    def test_parse_rejects_bad_bool(self):
        with pytest.raises(ConfigurationError):
            delivery_mode_from_xml(
                "<deliveryMode name='m'><block requireAck='maybe'>"
                "<action address='IM'/></block></deliveryMode>"
            )

    _names = st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F
        ),
        min_size=1,
        max_size=12,
    )

    @given(
        name=_names,
        blocks=st.lists(
            st.tuples(
                st.lists(_names, min_size=1, max_size=4, unique=True),
                st.booleans(),
                st.floats(min_value=0.1, max_value=600.0, allow_nan=False),
            ),
            min_size=1,
            max_size=5,
        ),
    )
    def test_roundtrip_property(self, name, blocks):
        mode = DeliveryMode(
            name=name,
            blocks=[
                CommunicationBlock(
                    [Action(ref) for ref in refs],
                    require_ack=require_ack,
                    ack_timeout=timeout,
                )
                for refs, require_ack, timeout in blocks
            ],
        )
        restored = delivery_mode_from_xml(delivery_mode_to_xml(mode))
        assert restored.name == mode.name
        assert len(restored.blocks) == len(mode.blocks)
        for got, want in zip(restored.blocks, mode.blocks):
            assert got.actions == want.actions
            assert got.require_ack == want.require_ack
            if want.require_ack:
                assert got.ack_timeout == want.ack_timeout


class TestAddressXml:
    def _book(self):
        book = AddressBook(owner="alice")
        book.add(UserAddress("MSN IM", ChannelType.IM, "alice@im"))
        book.add(
            UserAddress("Cell SMS", ChannelType.SMS, "+14255550100", enabled=False)
        )
        book.add(UserAddress("Work email", ChannelType.EMAIL, "alice@work"))
        return book

    def test_roundtrip_preserves_everything(self):
        book = self._book()
        restored = address_book_from_xml(address_book_to_xml(book))
        assert restored.owner == "alice"
        assert len(restored) == 3
        assert restored.get("Cell SMS").enabled is False
        assert restored.get("Cell SMS").channel is ChannelType.SMS
        assert restored.get("Work email").address == "alice@work"

    def test_type_tags_match_paper(self):
        xml = address_book_to_xml(self._book())
        for tag in ('type="IM"', 'type="SMS"', 'type="EM"'):
            assert tag in xml

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(ConfigurationError):
            address_book_from_xml(
                '<userAddresses owner="a">'
                '<address type="FAX" name="f">123</address></userAddresses>'
            )

    def test_parse_rejects_missing_owner(self):
        with pytest.raises(ConfigurationError):
            address_book_from_xml("<userAddresses/>")

    def test_parse_rejects_missing_attrs(self):
        with pytest.raises(ConfigurationError):
            address_book_from_xml(
                '<userAddresses owner="a"><address type="IM">x</address>'
                "</userAddresses>"
            )

    def test_parse_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            address_book_from_xml("<userAddresses owner='a'")

    def test_parse_rejects_wrong_child(self):
        with pytest.raises(ConfigurationError):
            address_book_from_xml(
                '<userAddresses owner="a"><phone>1</phone></userAddresses>'
            )
