"""Unit tier for the adversarial link surface.

Exercises :class:`~repro.sim.link.HostLink` directly — two bare hosts, one
pipe — against each :class:`~repro.net.adversary.AdversaryModel` knob in
isolation, pins the accounting contract (``submitted == delivered + lost``
for anything that entered the pipe, ``rejected`` alone for a pre-flight
refusal), and proves the benign adversary is a perfect no-op: identical RNG
consumption at link level, byte-identical golden-farm journals at system
level.
"""

from __future__ import annotations

import numpy as np

from repro.core.host import Host
from repro.net.adversary import AdversaryModel
from repro.net.channel import LatencyModel
from repro.sim.kernel import Environment
from repro.sim.link import HostLink

from tests.golden_farm import (
    GOLDEN_FARM_PATH,
    run_golden_farm,
    serialize_farm_journals,
)

#: Degenerate latency so arrival times expose adversary delays exactly.
FIXED = LatencyModel(median=0.1, sigma=0.0, low=0.1, high=0.1)


def make_link(seed=7, adversary=None, **kwargs):
    env = Environment()
    src = Host(env, name="primary")
    dst = Host(env, name="standby")
    link = HostLink(env, src, dst, rng=np.random.default_rng(seed), **kwargs)
    if adversary is not None:
        link.set_adversary(adversary)
    return env, link


def ship_serially(env, link, payloads, on_receive=None, gap=10.0):
    """Drive ``link.ship`` once per payload, ``gap`` seconds apart.

    Returns the list of transport acks (one per ship round trip).
    """
    acks = []

    def driver():
        for payload in payloads:
            ack = yield from link.ship(payload, on_receive=on_receive)
            acks.append(ack)
            yield env.timeout(gap)

    env.process(driver(), name="ship-driver")
    env.run()
    return acks


# ---------------------------------------------------------------------------
# Accounting contract
# ---------------------------------------------------------------------------


def test_submitted_splits_exactly_into_delivered_and_lost():
    env, link = make_link(seed=11, loss_probability=0.4)
    acks = ship_serially(env, link, list(range(200)))
    stats = link.stats
    assert stats.submitted == 200
    assert stats.submitted == stats.delivered + stats.lost
    assert stats.rejected == 0
    assert 0 < stats.lost < 200
    assert sum(acks) == stats.delivered


def test_preflight_refusal_charges_rejected_only():
    env, link = make_link(seed=3)
    link.set_available(False)
    acks = ship_serially(env, link, ["r1", "r2"])
    assert acks == [False, False]
    assert link.stats.rejected == 2
    assert link.stats.submitted == 0
    assert link.stats.lost == 0


def test_mid_flight_outage_charges_lost_not_silence():
    """The old ``transfer`` dropped mid-flight outage packets without any
    counter; the unified exit must charge exactly one ``lost``."""
    env, link = make_link(seed=5, latency=FIXED)

    def saboteur():
        yield env.timeout(0.05)
        link.set_available(False)

    env.process(saboteur(), name="saboteur")
    acks = ship_serially(env, link, ["only"])
    assert acks == [False]
    assert link.stats.submitted == 1
    assert link.stats.lost == 1
    assert link.stats.delivered == 0


def test_dark_destination_charges_lost():
    env, link = make_link(seed=5, latency=FIXED)
    link.dst.power_failure(1000.0)
    acks = ship_serially(env, link, ["into-the-dark"])
    assert acks == [False]
    assert link.stats.submitted == 1
    assert link.stats.lost == 1
    assert link.stats.delivered == 0


# ---------------------------------------------------------------------------
# Adversary knobs, one at a time
# ---------------------------------------------------------------------------


def test_reorder_delay_is_bounded_by_horizon():
    horizon = 5.0
    env, link = make_link(
        seed=23, latency=FIXED,
        adversary=AdversaryModel(reorder_probability=1.0,
                                 reorder_horizon=horizon),
    )
    arrivals = []
    ship_serially(
        env, link, list(range(50)),
        on_receive=lambda pkt: arrivals.append(env.now - pkt.sent_at),
    )
    assert len(arrivals) == 50
    assert link.adversary_stats.reordered == 50
    for transit in arrivals:
        assert FIXED.median <= transit <= FIXED.median + horizon
    # The hold-back is U(0, horizon], not degenerate.
    assert max(arrivals) > FIXED.median
    assert len(set(arrivals)) > 1


def test_duplicate_copies_ride_independent_latencies():
    env, link = make_link(
        seed=29,
        adversary=AdversaryModel(duplicate_probability=1.0, duplicate_max=4),
    )
    packets = []
    ship_serially(
        env, link, ["amplified"],
        on_receive=lambda pkt: packets.append((pkt, env.now)),
    )
    primaries = [(p, at) for p, at in packets if not p.duplicate]
    copies = [(p, at) for p, at in packets if p.duplicate]
    assert len(primaries) == 1
    assert 1 <= len(copies) <= 3
    # Copies are adversary traffic: primary-stream accounting untouched.
    assert link.stats.submitted == 1
    assert link.stats.delivered == 1
    assert link.adversary_stats.duplicates_injected == len(copies)
    assert link.adversary_stats.duplicates_delivered == len(copies)
    # Every copy carries the same payload and send stamp but its own delay.
    sent = primaries[0][0].sent_at
    assert all(p.payload == "amplified" and p.sent_at == sent
               for p, _ in packets)
    assert len({at for _, at in packets}) == len(packets)


def test_corrupt_flag_reaches_receiver_and_nack_rides_the_ack():
    env, link = make_link(
        seed=31, latency=FIXED,
        adversary=AdversaryModel(corrupt_probability=1.0),
    )
    packets = []

    def receive(pkt):
        packets.append(pkt)
        return not pkt.corrupt  # NACK corrupt frames

    acks = ship_serially(env, link, ["tainted"], on_receive=receive)
    assert [p.corrupt for p in packets] == [True]
    assert acks == [False]  # receiver's NACK came back through the round trip
    assert link.adversary_stats.corrupt_injected == 1
    # The frame *arrived*; rejection is the receiver's, not the pipe's.
    assert link.stats.delivered == 1
    assert link.stats.lost == 0


def test_pulse_reverts_to_ambient_adversary():
    env, link = make_link(seed=2)
    ambient = AdversaryModel(duplicate_probability=0.2)
    link.set_adversary(ambient)
    link.adversary_pulse(AdversaryModel.pulse(), 10.0)
    assert link.adversary == AdversaryModel.pulse()
    env.run(until=11.0)
    assert link.adversary == ambient


# ---------------------------------------------------------------------------
# The benign adversary is a perfect no-op
# ---------------------------------------------------------------------------


def test_adversary_off_consumes_no_rng_at_link_level():
    """Explicitly installing ``off()`` must leave every latency draw — and
    therefore every arrival time — identical to a link that never heard of
    the adversary machinery."""
    times = {}
    for label, adversary in (("bare", None), ("off", AdversaryModel.off())):
        env, link = make_link(seed=47, adversary=adversary,
                              loss_probability=0.1)
        arrivals = []
        ship_serially(
            env, link, list(range(40)),
            on_receive=lambda pkt: arrivals.append(env.now),
        )
        times[label] = (arrivals, link.stats.delivered, link.stats.lost)
    assert times["bare"] == times["off"]


def test_golden_farm_byte_identical_with_adversary_off():
    """System-level inertness: the pinned golden-farm journals must not
    move by a byte when every substrate channel carries an explicit
    ``AdversaryModel.off()``."""
    golden = GOLDEN_FARM_PATH.read_text()
    fresh = serialize_farm_journals(
        run_golden_farm(adversary=AdversaryModel.off())
    )
    assert fresh + "\n" == golden
