"""Tests for the per-alert journey tracer."""

from repro.metrics.timeline import render_trace, trace_alert
from repro.net import LatencyModel
from repro.sim import MINUTE
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)


def make_rig():
    world = SimbaWorld(
        WorldConfig(seed=8, im_latency=IM_FIXED, email_loss=0.0, sms_loss=0.0)
    )
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    deployment.launch()
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")
    return world, user, deployment, source


def test_happy_path_trace_has_all_hops():
    world, user, deployment, source = make_rig()
    alert, _ = source.emit("News", "headline", "body")
    world.run(until=MINUTE)
    events = trace_alert(alert.alert_id, source=source,
                         deployment=deployment, user=user)
    actors = [e.actor for e in events]
    assert "source" in actors
    assert "mab-log" in actors
    assert "mab" in actors
    assert "user" in actors
    # Time-ordered.
    times = [e.at for e in events]
    assert times == sorted(times)
    text = render_trace(events)
    assert "logged before ack" in text
    assert "received on IM" in text
    assert "SUCCESS" in text


def test_fallback_trace_shows_failed_block():
    world, user, deployment, source = make_rig()
    world.run(until=1.0)
    world.im.outage(10 * MINUTE)
    alert, _ = source.emit("News", "during outage", "body")
    world.run(until=30 * MINUTE)
    text = render_trace(
        trace_alert(alert.alert_id, source=source,
                    deployment=deployment, user=user)
    )
    assert "all_submissions_failed" in text or "ack_timeout" in text
    assert "delivered via block 1" in text  # email fallback to MAB


def test_unknown_alert_renders_placeholder():
    world, user, deployment, source = make_rig()
    assert render_trace(trace_alert("no-such-alert", source=source,
                                    deployment=deployment, user=user)) == (
        "(no events recorded for this alert)"
    )


def test_partial_parties():
    world, user, deployment, source = make_rig()
    alert, _ = source.emit("News", "h", "b")
    world.run(until=MINUTE)
    only_user = trace_alert(alert.alert_id, user=user)
    assert all(e.actor == "user" for e in only_user)
    assert len(only_user) == 1


def test_recovery_report_renders_all_sections():
    from repro.metrics import recovery_report

    world, user, deployment, source = make_rig()
    mdc = None
    # Re-rig with an MDC-driven deployment for the full report.
    world2 = SimbaWorld(
        WorldConfig(seed=9, im_latency=IM_FIXED, email_loss=0.0, sms_loss=0.0)
    )
    user2 = world2.create_user("alice", present=True)
    deployment2 = world2.create_buddy(user2)
    deployment2.register_user_endpoint(user2)
    deployment2.subscribe("News", user2, "normal", keywords=["News"])
    mdc = world2.start_mdc(deployment2)
    source2 = world2.create_source("portal")
    source2.add_target(deployment2.source_facing_book())
    deployment2.config.classifier.accept_source("portal")

    def scenario(env):
        source2.emit("News", "h", "b")
        yield env.timeout(60.0)
        deployment2.current.crash()

    world2.env.process(scenario(world2.env))
    world2.run(until=30 * MINUTE)
    report = recovery_report(deployment2, mdc=mdc, user=user2)
    assert "MDC restarts of MAB" in report
    assert "alerts routed" in report
    assert "user: unique alerts received" in report
    assert "pessimistic-log entries" in report
