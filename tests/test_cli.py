"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_run_e1(capsys):
    assert main(["e1"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "measured" in out


def test_run_e2_with_seed(capsys):
    assert main(["e2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "ack round trip" in out


def test_case_insensitive_id(capsys):
    assert main(["E3"]) == 0
    assert "E3" in capsys.readouterr().out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit) as excinfo:
        main(["e42"])
    assert excinfo.value.code == 2


def test_experiment_registry_complete():
    assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 15)}


def test_jobs_rejected_for_non_sweep_experiment():
    with pytest.raises(SystemExit) as excinfo:
        main(["e1", "--jobs", "2"])
    assert excinfo.value.code == 2


def test_jobs_accepted_for_sweep_experiments():
    from repro.__main__ import PARALLEL_EXPERIMENTS

    assert PARALLEL_EXPERIMENTS == {"e10", "e11", "e12", "e14"}


def test_shards_rejected_outside_e13():
    with pytest.raises(SystemExit) as excinfo:
        main(["e1", "--shards", "2"])
    assert excinfo.value.code == 2


def test_jobs_rejected_for_e13():
    with pytest.raises(SystemExit) as excinfo:
        main(["e13", "--jobs", "2"])
    assert excinfo.value.code == 2
