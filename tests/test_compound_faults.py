"""Compound faults: overlapping failures that stress recovery interleaving.

Single faults are covered by test_recovery_liveness; these scenarios stack
failures the way a genuinely bad day does — outage during hang, crash during
recovery replay, power loss mid-outage — and still demand eventual delivery.
"""

import pytest

from repro.net import ChannelType, LatencyModel
from repro.sim import HOUR, MINUTE
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
EMAIL_FAST = LatencyModel(median=20.0, sigma=0.4, low=2.0, high=600.0)


def make_rig(seed=30):
    world = SimbaWorld(
        WorldConfig(
            seed=seed, im_latency=IM_FIXED, email_latency=EMAIL_FAST,
            email_loss=0.0, sms_loss=0.0,
        )
    )
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    mdc = world.start_mdc(deployment, check_interval=60.0)
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")
    return world, user, deployment, source, mdc


def test_im_outage_during_mab_hang():
    world, user, deployment, source, mdc = make_rig(seed=31)

    def scenario(env):
        yield env.timeout(5 * MINUTE)
        deployment.current.hang()
        yield env.timeout(30.0)
        world.im.outage(5 * MINUTE)  # outage starts while MAB is hung
        yield env.timeout(60.0)
        source.emit("News", "mid-chaos", "b")

    world.env.process(scenario(world.env))
    world.run(until=HOUR)
    assert len(user.unique_alerts_received()) == 1
    # The MDC restarted the hung MAB and the sanity checks re-logged-in
    # after the outage — both recovery paths fired.
    from repro.core.watchdog import RestartReason

    assert any(r.reason is RestartReason.PROBE_TIMEOUT for r in mdc.restarts)
    assert world.im.presence.is_online(deployment.im_address)


def test_crash_during_recovery_replay():
    world, user, deployment, source, mdc = make_rig(seed=32)

    def scenario(env):
        # Three alerts get logged+acked, then MAB crashes mid-processing.
        for index in range(3):
            source.emit("News", f"h{index}", "b")
            yield env.timeout(2.0)
        deployment.current.crash()
        # Wait for the restart, then crash AGAIN the moment replay starts.
        yield env.timeout(90.0)
        current = deployment.current
        if current is not None and current.alive:
            current.crash()

    world.env.process(scenario(world.env))
    world.run(until=HOUR)
    # After the second restart, every logged alert was still replayed:
    # the log only marks Processed after routing completes.
    assert len(user.unique_alerts_received()) == 3
    assert deployment.log.unprocessed() == []


def test_power_outage_during_im_outage():
    world, user, deployment, source, mdc = make_rig(seed=33)

    def scenario(env):
        yield env.timeout(5 * MINUTE)
        world.im.outage(10 * MINUTE)
        yield env.timeout(MINUTE)
        world.host.power_failure(5 * MINUTE)  # host dies inside the outage
        yield env.timeout(30 * MINUTE)  # both recovered by now
        source.emit("News", "after the storm", "b")

    world.env.process(scenario(world.env))
    world.run(until=2 * HOUR)
    assert world.host.up
    receipts = user.receipts
    assert len(user.unique_alerts_received()) == 1
    assert receipts[0].channel is ChannelType.IM  # full IM path restored


def test_unknown_dialog_plus_client_hang():
    world, user, deployment, source, mdc = make_rig(seed=34)

    def scenario(env):
        yield env.timeout(5 * MINUTE)
        world.host.screen.pop_dialog("Totally new dialog", ("OK",),
                                     owner=None)
        yield env.timeout(MINUTE)
        deployment.endpoint.im_client.hang()  # stacked on the dialog
        # Alerts emitted now can reach MAB only by email.
        source.emit("News", "during double fault", "b")
        yield env.timeout(10 * MINUTE)
        # Operator fix for the dialog; sanity checks fix the hang.
        deployment.endpoint.im_manager.register_dialog_rule(
            "Totally new dialog", "OK"
        )
        yield env.timeout(10 * MINUTE)
        source.emit("News", "after both fixed", "b")

    world.env.process(scenario(world.env))
    world.run(until=2 * HOUR)
    assert len(user.unique_alerts_received()) == 2
    # The post-fix alert rode the healthy IM path end to end.
    last = [r for r in user.receipts if not r.duplicate][-1]
    assert last.channel is ChannelType.IM
    assert last.latency < 10.0


def test_rejuvenation_race_with_crash():
    # A crash landing within the same minute as the 23:30 rejuvenation.
    world, user, deployment, source, mdc = make_rig(seed=35)

    def scenario(env):
        yield env.timeout(23.5 * HOUR - 5.0)
        current = deployment.current
        if current is not None and current.alive:
            current.crash()
        yield env.timeout(HOUR)
        source.emit("News", "next morning", "b")

    world.env.process(scenario(world.env))
    world.run(until=26 * HOUR)
    assert len(user.unique_alerts_received()) == 1
    # Exactly one incarnation is alive at the end (no zombie pile-up).
    alive = [b for b in deployment.incarnations if b.alive]
    assert len(alive) == 1
