"""BuddyFarm: multi-tenant deployment layer tests.

Covers O(1) routing structures, batched lifecycle, seed determinism of
farm-level aggregates, the bounded-journal option at alert volume, and a
scaled portal-log smoke replay.
"""

import pytest

from repro.core.farm import BuddyFarm, FarmProfile
from repro.sim import DAY, MINUTE
from repro.workloads import PortalLogGenerator
from repro.world import SimbaWorld, WorldConfig


def build_farm(n_users, seed=0, **profile_overrides):
    world = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
    profile = FarmProfile(accept_sources=("portal",), **profile_overrides)
    farm = world.create_farm(profile=profile)
    farm.add_users(n_users)
    source = world.create_source("portal")
    farm.register_with(source)
    return world, farm, source


def drive(world, farm, source, per_user=5, spacing=10.0, start_at=60.0):
    """Deterministic round-robin workload: ``per_user`` alerts per tenant.

    Emission starts at ``start_at`` so a staggered ``launch_all`` window has
    passed and every MAB is live.
    """
    def emitter(env):
        yield env.timeout(start_at)
        for round_no in range(per_user):
            for tenant in farm:
                source.emit_to(tenant.book, "News", f"h{round_no}", "b")
                yield env.timeout(spacing / len(farm))
    world.env.process(emitter(world.env), name="test-emitter")
    world.run(until=start_at + per_user * spacing + 10 * MINUTE)


class TestFarmStructure:
    def test_tenant_lookup_by_name_index_and_address(self):
        _world, farm, _source = build_farm(5)
        tenant = farm.tenant("user2")
        assert tenant is farm.tenant_at(2)
        assert tenant.shard == 2 % farm.shards
        for address in (
            tenant.deployment.im_address,
            tenant.deployment.email_address,
            tenant.user.im_address,
            tenant.user.email_address,
        ):
            assert farm.route(address) is tenant
        assert farm.route("nobody@im") is None
        assert farm.book_for("user2") is tenant.book

    def test_len_iteration_and_batch_naming(self):
        _world, farm, _source = build_farm(4)
        assert len(farm) == 4
        assert [t.name for t in farm] == ["user0", "user1", "user2", "user3"]
        more = farm.add_users(2, prefix="late")
        assert [t.name for t in more] == ["late4", "late5"]
        assert len(farm) == 6

    def test_register_with_indexes_source_side(self):
        _world, farm, source = build_farm(3)
        assert len(source.targets) == 3
        book = source.target_for("mab-user1")
        assert book is farm.tenant("user1").book

    def test_profile_applies_to_every_tenant(self):
        _world, farm, _source = build_farm(
            3, categories=("News", "Sports"), nightly_enabled=False,
            journal_max_events=50,
        )
        for tenant in farm:
            config = tenant.deployment.config
            assert config.subscriptions.subscriptions_for("Sports")
            assert not config.rejuvenation.nightly_enabled
            assert tenant.deployment.journal.events.maxlen == 50

    def test_launch_all_is_one_shot(self):
        world, farm, _source = build_farm(2)
        farm.launch_all()
        with pytest.raises(RuntimeError):
            farm.launch_all()
        world.run(until=10.0)
        assert all(t.deployment.current.alive for t in farm)

    def test_teardown_all_stops_every_incarnation(self):
        world, farm, _source = build_farm(3)
        farm.launch_all()
        world.run(until=60.0)
        farm.teardown_all("test over")
        world.run(until=120.0)
        assert all(not t.deployment.current.alive for t in farm)

    def test_shards_validated(self):
        world = SimbaWorld(WorldConfig(seed=0))
        with pytest.raises(ValueError):
            BuddyFarm(world, shards=0)


class TestFarmDeterminism:
    @staticmethod
    def run_once(seed):
        world, farm, source = build_farm(
            10, seed=seed, launch_stagger=30.0
        )
        farm.launch_all()
        drive(world, farm, source, per_user=4)
        receipts = farm.receipts(unique=True)
        return (
            dict(farm.aggregate_counts()),
            sorted((r.at, r.latency) for r in receipts),
        )

    def test_same_seed_identical_aggregates(self):
        counts_a, receipts_a = self.run_once(seed=7)
        counts_b, receipts_b = self.run_once(seed=7)
        assert counts_a == counts_b
        assert receipts_a == receipts_b
        assert counts_a["routed"] == 40  # 10 users x 4 alerts, zero loss

    def test_different_seed_differs(self):
        _counts_a, receipts_a = self.run_once(seed=7)
        _counts_b, receipts_b = self.run_once(seed=8)
        # Same workload shape, different channel latency draws.
        assert receipts_a != receipts_b


class TestBoundedJournalAtVolume:
    def test_10k_alert_run_stays_bounded_with_exact_counts(self):
        world, farm, source = build_farm(
            50, seed=1, journal_max_events=100, nightly_enabled=False,
        )
        farm.launch_all()
        # 50 tenants x 200 alerts = 10,000 alerts, offered at 0.1/s per
        # tenant (half the single-daemon ceiling).
        drive(world, farm, source, per_user=200, spacing=10.0)

        counts = farm.aggregate_counts()
        received = farm.receipts(unique=True)
        assert counts["routed"] == 10_000
        assert len(received) == 10_000
        total_dropped = 0
        for tenant in farm:
            journal = tenant.deployment.journal
            # Retention is bounded...
            assert len(journal.events) <= 100
            total_dropped += journal.dropped_events
            # ...but the tallies still see every event ever recorded.
            assert journal.count("routed") == 200
            assert journal.total_events >= 200
        assert total_dropped > 0

    def test_summary_rollup_matches_receipts(self):
        world, farm, source = build_farm(8, seed=4)
        farm.launch_all()
        drive(world, farm, source, per_user=3)
        summary = farm.delivery_summary()
        assert summary["tenants"] == 8
        assert summary["received"] == len(farm.receipts(unique=True)) == 24
        assert summary["routed"] == 24
        assert summary["delivery_failed"] == 0
        assert summary["latency"].median > 0.0


class TestPortalSmokeReplay:
    @staticmethod
    def replay_day(n_users, seed=3):
        """A scaled portal day through a farm; returns (offered, farm)."""
        world = SimbaWorld(
            WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0)
        )
        generator = PortalLogGenerator(
            world.rngs.stream("smoke-replay"),
            n_users=n_users,
            alerts_per_day=round(n_users * 3.5),
        )
        records = generator.generate_day(0)
        source = world.create_source("portal")
        farm = world.create_farm(
            profile=FarmProfile(
                categories=tuple(generator.categories),
                accept_sources=("portal",),
                launch_stagger=60.0,
                # No MDC in this rig: a nightly self-termination at 23:30
                # would never be followed by a restart, losing the day's
                # tail — rejuvenation-under-MDC is covered elsewhere.
                nightly_enabled=False,
            )
        )
        farm.add_users(n_users)
        farm.launch_all()

        def replayer(env):
            for record in records:
                if record.at > env.now:
                    yield env.timeout(record.at - env.now)
                tenant = farm.tenant_at(record.user_id)
                source.emit_to(
                    tenant.book, record.category,
                    f"{record.category} alert", "smoke replay",
                )

        world.env.process(replayer(world.env), name="smoke-replayer")
        world.run(until=DAY + 30 * MINUTE)
        return len(records), farm

    def test_200_user_smoke_replay_matches_seed_scale(self):
        offered_small, farm_small = self.replay_day(8)
        ratio_small = len(farm_small.receipts(unique=True)) / offered_small

        offered_large, farm_large = self.replay_day(200)
        ratio_large = len(farm_large.receipts(unique=True)) / offered_large

        # Both scales deliver nearly everything...
        assert ratio_small > 0.9
        assert ratio_large > 0.9
        # ...and scaling 25x the tenants does not degrade delivery.
        assert ratio_large >= ratio_small
        # The farm genuinely ran 200 independent MABs on one kernel.
        assert len(farm_large) == 200
        assert sum(
            len(t.deployment.incarnations) for t in farm_large
        ) >= 200


class TestFarmGoldenJournal:
    """Byte-for-byte determinism of a 20-user farm run (fixed seed).

    Farm counterpart of the single-MAB golden test in
    ``test_core_pipeline.py``; regenerate the golden file with
    ``python -m tests.golden_farm`` after an intentional behaviour change.
    """

    def test_20_user_farm_matches_golden_journals(self):
        from tests.golden_farm import (
            GOLDEN_FARM_PATH,
            run_golden_farm,
            serialize_farm_journals,
        )

        fresh = serialize_farm_journals(run_golden_farm()) + "\n"
        assert fresh == GOLDEN_FARM_PATH.read_text(), (
            "farm journals diverged from tests/data/golden_farm_seed.json; "
            "if the change is intentional run `python -m tests.golden_farm`"
        )

    def test_golden_farm_leaves_no_dead_timer_residue(self):
        # The same 20-user run, inspected at the kernel level: every routed
        # alert raced an ack against a guard timer, and timer cancellation
        # (plus compaction) must keep tombstones from outnumbering live
        # entries.  This pins the farm-scale payoff of cancellable timers
        # without touching the golden journal bytes.
        from tests.golden_farm import run_golden_farm

        farm = run_golden_farm()
        env = farm.world.env
        assert env.dead_entries <= max(1, env.queue_depth)
