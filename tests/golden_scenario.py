"""Fixed-seed reference scenario for the pipeline-refactor determinism test.

Runs one MyAlertBuddy through every §4.2 journal outcome — routed, unmapped,
filtered, rejected, duplicate, no-subscribers, retry + abandon, crash +
recovery replay — under a fixed seed, and serializes the journal in a
byte-stable form.

``python -m tests.golden_scenario`` regenerates the stored golden file; the
test in ``test_core_pipeline.py`` asserts a fresh run still matches it.
Alert ids are normalized (the global alert counter depends on what ran
before in the process), timestamps and everything else must match exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_journal_seed.json"


def run_golden_scenario():
    """Build the scenario, run it, and return the deployment journal."""
    from repro.world import SimbaWorld, WorldConfig

    world = SimbaWorld(
        WorldConfig(seed=2026, email_loss=0.0, sms_loss=0.0)
    )
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    deployment.subscribe("Quiet", user, "digest", keywords=["Quiet"])
    deployment.config.filters.disable_category("Quiet")
    # A mapped category nobody subscribes to (the no_subscribers branch).
    deployment.config.subscriptions.register_category("Orphan")
    deployment.config.aggregator.map_keyword("Orphan", "Orphan")
    deployment.config.delivery_retry_delay = 60.0
    deployment.config.delivery_max_attempts = 2

    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")
    rogue = world.create_source("rogue")
    rogue.add_target(deployment.source_facing_book())

    deployment.launch()

    def driver(env):
        source.emit("News", "routed headline", "body")  # routed
        yield env.timeout(40.0)
        source.emit("Gossip", "unmapped headline", "body")  # unmapped
        yield env.timeout(40.0)
        source.emit("Quiet", "quiet headline", "body")  # filtered
        yield env.timeout(40.0)
        rogue.emit("News", "rogue headline", "body")  # rejected
        yield env.timeout(40.0)
        alert, _procs = source.emit("News", "twice headline", "body")
        # The sender's email fallback arrives too: dropped as duplicate.
        world.email.send(
            "portal@mail", deployment.email_address, alert.subject,
            alert.encode(), correlation=alert.alert_id,
        )
        yield env.timeout(80.0)
        source.emit("Orphan", "orphan headline", "body")  # no_subscribers
        yield env.timeout(60.0)
        # t=300: both channels down -> retry_scheduled, then abandoned.
        user.set_present(False)
        world.email.set_available(False)
        source.emit("News", "stuck headline", "body")
        yield env.timeout(200.0)
        # t=500: channels back; a normal alert routes again.
        user.set_present(True)
        world.email.set_available(True)
        yield env.timeout(20.0)
        source.emit("News", "after-outage headline", "body")
        yield env.timeout(40.0)
        # t=560: log an alert, then crash after the log-before-ack write
        # (~560.9) but before routing finishes (~562.6) -> recovery replay.
        source.emit("News", "replayed headline", "body")
        yield env.timeout(1.8)
        buddy = deployment.current
        if buddy is not None:
            buddy.crash("golden crash")
        yield env.timeout(58.2)
        deployment.launch()  # fresh incarnation: recovers the logged alert

    world.env.process(driver(world.env), name="golden-driver")
    world.run(until=1500.0)
    return deployment.journal


def serialize_journal(journal) -> str:
    """Byte-stable JSON form of a journal's events.

    Alert ids come from a process-global counter, so they are normalized to
    first-appearance order; every other field must match exactly.
    """
    id_map: dict[str, str] = {}

    def norm(alert_id):
        if alert_id is None:
            return None
        if alert_id not in id_map:
            id_map[alert_id] = f"A{len(id_map) + 1}"
        return id_map[alert_id]

    rows = [
        [repr(e.at), e.kind, e.detail, norm(e.alert_id)]
        for e in journal.events
    ]
    return json.dumps(rows, indent=1)


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(serialize_journal(run_golden_scenario()) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
