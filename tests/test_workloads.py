"""Unit + property tests for workload and faultload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim import DAY, MINUTE, RngRegistry
from repro.sim.failures import FaultKind
from repro.workloads import (
    DiurnalProfile,
    FaultloadSpec,
    PortalLogGenerator,
    generate_month_faultload,
    paper_faultload_spec,
    poisson_arrival_times,
)
from repro.workloads.faultload import MONTH


def rng(seed=0):
    return RngRegistry(seed=seed).stream("workload")


class TestArrivals:
    def test_rate_roughly_held(self):
        times = poisson_arrival_times(rng(), rate=1.0, duration=10_000.0)
        assert 9_000 < len(times) < 11_000

    def test_times_sorted_and_in_range(self):
        times = poisson_arrival_times(rng(), rate=0.5, duration=1000.0,
                                      start=500.0)
        assert times == sorted(times)
        assert all(500.0 <= t < 1500.0 for t in times)

    def test_zero_rate_or_duration(self):
        assert poisson_arrival_times(rng(), 0.0, 100.0) == []
        with pytest.raises(ConfigurationError):
            poisson_arrival_times(rng(), -1.0, 100.0)

    def test_reproducible(self):
        a = poisson_arrival_times(rng(1), 1.0, 1000.0)
        b = poisson_arrival_times(rng(1), 1.0, 1000.0)
        assert a == b

    def test_diurnal_profile_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalProfile(multipliers=(1.0,) * 23)
        with pytest.raises(ConfigurationError):
            DiurnalProfile(multipliers=(-1.0,) + (1.0,) * 23)
        with pytest.raises(ConfigurationError):
            DiurnalProfile(multipliers=(0.0,) * 24)

    def test_office_hours_profile_mean_normalized(self):
        profile = DiurnalProfile.office_hours()
        assert sum(profile.multipliers) / 24 == pytest.approx(1.0)

    def test_diurnal_arrivals_peak_during_day(self):
        profile = DiurnalProfile.office_hours()
        times = poisson_arrival_times(
            rng(2), rate=1.0, duration=10 * DAY, profile=profile
        )
        hours = np.array([(t % DAY) // 3600 for t in times], dtype=int)
        night = np.isin(hours, [0, 1, 2, 3, 4]).sum()
        day = np.isin(hours, [9, 10, 11, 14, 15]).sum()
        assert day > 3 * night

    def test_diurnal_preserves_total_rate(self):
        profile = DiurnalProfile.office_hours()
        times = poisson_arrival_times(
            rng(3), rate=0.5, duration=20 * DAY, profile=profile
        )
        expected = 0.5 * 20 * DAY
        assert 0.9 * expected < len(times) < 1.1 * expected


class TestPortalLog:
    def test_daily_aggregates_near_paper(self):
        generator = PortalLogGenerator(rng(4))
        records = generator.generate_day()
        summary = PortalLogGenerator.daily_summary(records)
        assert 740_000 < summary["alerts"] < 820_000
        assert 210_000 < summary["distinct_users"] < 240_000

    def test_scaled_generator_preserves_per_user_rate(self):
        full = PortalLogGenerator(rng(5))
        scaled = PortalLogGenerator(rng(5), n_users=100, alerts_per_day=309)
        assert scaled.alerts_per_user_per_day == pytest.approx(
            full.alerts_per_user_per_day, rel=0.05
        )

    def test_category_mix_weighted(self):
        generator = PortalLogGenerator(rng(6), n_users=50,
                                       alerts_per_day=5000)
        records = generator.generate_day()
        counts = {}
        for record in records:
            counts[record.category] = counts.get(record.category, 0) + 1
        assert counts["Stocks"] > counts["Real estate"]

    def test_user_skew(self):
        generator = PortalLogGenerator(rng(7), n_users=100,
                                       alerts_per_day=5000)
        records = generator.generate_day()
        counts = np.zeros(100)
        for record in records:
            counts[record.user_id] += 1
        # Zipf-ish: the busiest user gets far more than the median user.
        assert counts.max() > 5 * np.median(counts[counts > 0])

    def test_day_index_offsets_times(self):
        generator = PortalLogGenerator(rng(8), n_users=10, alerts_per_day=200)
        day0 = generator.generate_day(0)
        day2 = generator.generate_day(2)
        assert all(0 <= r.at < DAY for r in day0)
        assert all(2 * DAY <= r.at < 3 * DAY for r in day2)

    def test_stream_days(self):
        generator = PortalLogGenerator(rng(9), n_users=10, alerts_per_day=50)
        days = list(generator.stream_days(3))
        assert len(days) == 3

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PortalLogGenerator(rng(), n_users=0)
        with pytest.raises(ConfigurationError):
            PortalLogGenerator(rng(), alerts_per_day=0)

    def test_empty_summary(self):
        summary = PortalLogGenerator.daily_summary([])
        assert summary["alerts"] == 0.0
        assert summary["alerts_per_user"] == 0.0


class TestFaultload:
    def test_paper_spec_counts(self):
        spec = paper_faultload_spec()
        assert spec.im_outages == 5
        assert spec.client_logouts == 9
        assert spec.client_hangs == 9
        assert spec.mab_faults == 36
        assert spec.power_outages == 1
        assert spec.unknown_dialogs == 2

    def test_generated_counts_match_spec(self):
        spec = paper_faultload_spec()
        faults = generate_month_faultload(rng(10), spec)
        assert len(faults) == spec.total_faults()
        by_kind = {}
        for fault in faults:
            by_kind[fault.kind] = by_kind.get(fault.kind, 0) + 1
        assert by_kind[FaultKind.IM_SERVICE_OUTAGE] == 5
        assert by_kind[FaultKind.CLIENT_LOGOUT] == 9
        assert by_kind[FaultKind.CLIENT_HANG] == 9
        assert (
            by_kind.get(FaultKind.PROCESS_CRASH, 0)
            + by_kind.get(FaultKind.PROCESS_HANG, 0)
            == 36
        )
        assert by_kind[FaultKind.UNKNOWN_DIALOG_POPUP] == 2
        assert by_kind[FaultKind.POWER_OUTAGE] == 1

    def test_outage_durations_in_paper_range(self):
        faults = generate_month_faultload(rng(11))
        for fault in faults:
            if fault.kind is FaultKind.IM_SERVICE_OUTAGE:
                assert 4 * MINUTE <= fault.duration <= 103 * MINUTE

    def test_sorted_and_within_window(self):
        faults = generate_month_faultload(rng(12), start=DAY)
        times = [f.at for f in faults]
        assert times == sorted(times)
        assert all(DAY <= t < DAY + MONTH for t in times)

    def test_reproducible(self):
        a = generate_month_faultload(rng(13))
        b = generate_month_faultload(rng(13))
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(
        outages=st.integers(min_value=0, max_value=10),
        logouts=st.integers(min_value=0, max_value=20),
        mab=st.integers(min_value=0, max_value=50),
    )
    def test_arbitrary_specs_produce_valid_schedules(self, outages, logouts, mab):
        spec = FaultloadSpec(
            im_outages=outages, client_logouts=logouts, mab_faults=mab
        )
        faults = generate_month_faultload(rng(14), spec)
        assert len(faults) == spec.total_faults()
        assert all(f.at >= 0 and f.duration >= 0 for f in faults)


class TestFaultloadEdgeCases:
    def test_zero_duration_month_degenerates_to_start(self):
        spec = FaultloadSpec(duration=0.0)
        faults = generate_month_faultload(rng(20), spec, start=DAY)
        assert len(faults) == spec.total_faults()
        assert all(f.at == DAY for f in faults)

    def test_equal_timestamps_keep_generation_order(self):
        """sorted() is stable, so an all-ties schedule preserves the
        category generation order — schedules are ordering-stable."""
        spec = FaultloadSpec(duration=0.0)
        faults = generate_month_faultload(rng(21), spec)
        kinds = [f.kind for f in faults]
        # Category blocks appear in generation order.
        expected_blocks = [
            (FaultKind.IM_SERVICE_OUTAGE,) * spec.im_outages,
            (FaultKind.CLIENT_LOGOUT,) * spec.client_logouts,
            (FaultKind.CLIENT_HANG,) * spec.client_hangs,
        ]
        offset = 0
        for block in expected_blocks:
            assert tuple(kinds[offset:offset + len(block)]) == block
            offset += len(block)
        # The MAB block mixes crash/hang draws but stays contiguous.
        mab = kinds[offset:offset + spec.mab_faults]
        assert set(mab) <= {FaultKind.PROCESS_CRASH, FaultKind.PROCESS_HANG}
        # Two identically seeded generations agree exactly despite ties.
        again = generate_month_faultload(rng(21), spec)
        assert faults == again

    def test_negative_duration_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            generate_month_faultload(rng(22), FaultloadSpec(duration=-1.0))

    def test_overlapping_compound_faults_are_preserved(self):
        """Cramming the month's outages into a tiny window forces their
        active windows to overlap; the generator must keep every fault
        (no merging or dropping) and stay time-sorted."""
        spec = FaultloadSpec(duration=10 * MINUTE)
        faults = generate_month_faultload(rng(23), spec)
        assert len(faults) == spec.total_faults()
        times = [f.at for f in faults]
        assert times == sorted(times)
        outages = [
            f for f in faults if f.kind is FaultKind.IM_SERVICE_OUTAGE
        ]
        overlaps = [
            (a, b)
            for i, a in enumerate(outages)
            for b in outages[i + 1:]
            if a.at < b.at + b.duration and b.at < a.at + a.duration
        ]
        assert overlaps, "expected compound (overlapping) outages"
