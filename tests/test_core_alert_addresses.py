"""Unit + property tests for Alert, UserAddress/AddressBook."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Alert, AlertSeverity, AddressBook, UserAddress
from repro.errors import AddressUnknownError, ConfigurationError
from repro.net import ChannelType


def make_alert(**overrides):
    defaults = dict(
        source="aladdin",
        keyword="Sensor ON",
        subject="Basement Water Sensor ON",
        body="water detected at 3cm",
        created_at=123.5,
        severity=AlertSeverity.CRITICAL,
    )
    defaults.update(overrides)
    return Alert(**defaults)


class TestAlert:
    def test_ids_unique(self):
        assert make_alert().alert_id != make_alert().alert_id

    def test_with_category_copies(self):
        alert = make_alert()
        tagged = alert.with_category("Home Safety")
        assert tagged.personal_category == "Home Safety"
        assert alert.personal_category is None
        assert tagged.alert_id == alert.alert_id

    def test_encode_decode_roundtrip(self):
        alert = make_alert()
        decoded = Alert.decode(alert.encode())
        assert decoded.alert_id == alert.alert_id
        assert decoded.source == alert.source
        assert decoded.keyword == alert.keyword
        assert decoded.subject == alert.subject
        assert decoded.body == alert.body
        assert decoded.created_at == alert.created_at
        assert decoded.severity == alert.severity

    def test_decode_rejects_non_alert(self):
        with pytest.raises(ValueError):
            Alert.decode("just an ordinary message")

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(ValueError):
            Alert.decode("SIMBA-ALERT/1\nid=x\n\nbody")

    def test_is_alert_payload(self):
        assert Alert.is_alert_payload(make_alert().encode())
        assert not Alert.is_alert_payload("hello")

    def test_duplicate_key(self):
        alert = make_alert()
        assert alert.duplicate_key() == (alert.alert_id, 123.5)

    @given(
        body=st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), max_size=500
        ),
        subject=st.text(
            alphabet=st.characters(
                blacklist_categories=("Cs",), blacklist_characters="\n\r"
            ),
            min_size=0,
            max_size=80,
        ),
        keyword=st.text(
            alphabet=st.characters(
                blacklist_categories=("Cs",), blacklist_characters="\n\r"
            ),
            min_size=1,
            max_size=40,
        ),
        created_at=st.floats(
            min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        severity=st.sampled_from(list(AlertSeverity)),
    )
    def test_wire_roundtrip_property(
        self, body, subject, keyword, created_at, severity
    ):
        alert = Alert(
            source="portal",
            keyword=keyword,
            subject=subject,
            body=body,
            created_at=created_at,
            severity=severity,
        )
        decoded = Alert.decode(alert.encode())
        assert decoded.keyword == keyword
        assert decoded.subject == subject
        assert decoded.body == body
        assert decoded.created_at == created_at
        assert decoded.severity == severity


class TestAddressBook:
    def _book(self):
        book = AddressBook(owner="alice")
        book.add(UserAddress("MSN IM", ChannelType.IM, "alice@im"))
        book.add(UserAddress("Cell SMS", ChannelType.SMS, "+14255550100"))
        book.add(UserAddress("Work email", ChannelType.EMAIL, "alice@work"))
        return book

    def test_add_and_get(self):
        book = self._book()
        assert book.get("MSN IM").address == "alice@im"
        assert len(book) == 3
        assert "Cell SMS" in book

    def test_duplicate_name_rejected(self):
        book = self._book()
        with pytest.raises(ConfigurationError):
            book.add(UserAddress("MSN IM", ChannelType.IM, "other@im"))

    def test_get_unknown_raises(self):
        with pytest.raises(AddressUnknownError):
            self._book().get("Pager")

    def test_remove(self):
        book = self._book()
        book.remove("Cell SMS")
        assert "Cell SMS" not in book
        with pytest.raises(AddressUnknownError):
            book.remove("Cell SMS")

    def test_enable_disable(self):
        book = self._book()
        book.set_enabled("Cell SMS", False)
        assert not book.get("Cell SMS").enabled
        assert [a.friendly_name for a in book.enabled_addresses()] == [
            "MSN IM",
            "Work email",
        ]
        book.set_enabled("Cell SMS", True)
        assert book.get("Cell SMS").enabled

    def test_first_of_type_respects_enabled(self):
        book = self._book()
        assert book.first_of_type(ChannelType.SMS).address == "+14255550100"
        book.set_enabled("Cell SMS", False)
        assert book.first_of_type(ChannelType.SMS) is None

    def test_empty_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            UserAddress("", ChannelType.IM, "a@im")
        with pytest.raises(ConfigurationError):
            UserAddress("IM", ChannelType.IM, "")


class TestAlertWireDetails:
    def test_keyword_field_roundtrips(self):
        for field in ("subject", "sender", "keyword"):
            alert = make_alert(keyword_field=field)
            assert Alert.decode(alert.encode()).keyword_field == field

    def test_severity_values(self):
        assert AlertSeverity("routine") is AlertSeverity.ROUTINE
        assert AlertSeverity("critical") is AlertSeverity.CRITICAL

    def test_encode_contains_wire_version(self):
        assert make_alert().encode().startswith("SIMBA-ALERT/1\n")

    def test_body_with_blank_lines_preserved(self):
        alert = make_alert(body="para one\n\npara two\n\n\npara three")
        assert Alert.decode(alert.encode()).body == (
            "para one\n\npara two\n\n\npara three"
        )

    def test_header_with_newline_subject_survives(self):
        alert = make_alert(subject="line1\nline2")
        decoded = Alert.decode(alert.encode())
        assert decoded.subject == "line1\nline2"
        assert decoded.body == alert.body
