"""Unit tests for clock helpers, RNG registry, and fault injection."""

import pytest

from repro.sim import DAY, HOUR, MINUTE, Environment, RngRegistry, format_time
from repro.sim.clock import seconds_until_time_of_day, time_of_day
from repro.sim.failures import FaultInjector, FaultKind, ScheduledFault
from repro.sim.rng import bounded_lognormal


class TestClock:
    def test_units(self):
        assert MINUTE == 60 and HOUR == 3600 and DAY == 86400

    def test_time_of_day_wraps(self):
        assert time_of_day(DAY + 5) == 5.0
        assert time_of_day(3 * DAY) == 0.0

    def test_seconds_until_future_target_same_day(self):
        # Now 10:00, target 23:30.
        assert seconds_until_time_of_day(10 * HOUR, 23.5 * HOUR) == 13.5 * HOUR

    def test_seconds_until_past_target_rolls_to_next_day(self):
        assert seconds_until_time_of_day(23 * HOUR, 1 * HOUR) == 2 * HOUR

    def test_exactly_at_target_returns_full_day(self):
        assert seconds_until_time_of_day(23.5 * HOUR, 23.5 * HOUR) == DAY

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            seconds_until_time_of_day(0.0, DAY)
        with pytest.raises(ValueError):
            seconds_until_time_of_day(0.0, -1.0)

    def test_format_time(self):
        assert format_time(0.0) == "0d 00:00:00.000"
        assert format_time(DAY + HOUR + MINUTE + 1.5) == "1d 01:01:01.500"


class TestRng:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("im") is reg.stream("im")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(seed=42).stream("email").random(5)
        b = RngRegistry(seed=42).stream("email").random(5)
        assert list(a) == list(b)

    def test_streams_independent_of_creation_order(self):
        reg1 = RngRegistry(seed=7)
        reg1.stream("a")
        first = reg1.stream("b").random()
        reg2 = RngRegistry(seed=7)
        second = reg2.stream("b").random()
        assert first == second

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random()
        b = RngRegistry(seed=2).stream("x").random()
        assert a != b

    def test_different_names_differ(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("x").random() != reg.stream("y").random()

    def test_bounded_lognormal_respects_bounds(self):
        rng = RngRegistry(seed=3).stream("lat")
        draws = [
            bounded_lognormal(rng, median=10.0, sigma=3.0, low=1.0, high=50.0)
            for _ in range(500)
        ]
        assert all(1.0 <= d <= 50.0 for d in draws)

    def test_bounded_lognormal_median_roughly_holds(self):
        rng = RngRegistry(seed=4).stream("lat")
        draws = sorted(
            bounded_lognormal(rng, median=5.0, sigma=0.5, low=0.0, high=1e9)
            for _ in range(2000)
        )
        median = draws[len(draws) // 2]
        assert 4.0 < median < 6.0

    def test_bounded_lognormal_rejects_bad_median(self):
        rng = RngRegistry(seed=5).stream("lat")
        with pytest.raises(ValueError):
            bounded_lognormal(rng, median=0.0, sigma=1.0, low=0.0, high=1.0)


class TestFaultInjector:
    def _fault(self, at=0.0, kind=FaultKind.CLIENT_LOGOUT, target="im"):
        return ScheduledFault(at=at, kind=kind, target=target)

    def test_inject_now_invokes_handler(self):
        env = Environment()
        injector = FaultInjector(env)
        seen = []
        injector.register("im", lambda f: seen.append(f) or True)
        assert injector.inject_now(self._fault()) is True
        assert len(seen) == 1
        assert injector.records[0].accepted

    def test_inject_without_handler_records_rejection(self):
        env = Environment()
        injector = FaultInjector(env)
        assert injector.inject_now(self._fault(target="ghost")) is False
        assert not injector.records[0].accepted
        assert injector.records[0].detail == "no handler"

    def test_load_replays_schedule_at_right_times(self):
        env = Environment()
        injector = FaultInjector(env)
        times = []
        injector.register("im", lambda f: times.append(env.now) or True)
        injector.load(
            [self._fault(at=30.0), self._fault(at=10.0), self._fault(at=20.0)]
        )
        env.run()
        assert times == [10.0, 20.0, 30.0]

    def test_load_rejects_past_faults(self):
        env = Environment(initial_time=100.0)
        injector = FaultInjector(env)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            injector.load([self._fault(at=5.0)])

    def test_fault_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ScheduledFault(at=-1.0, kind=FaultKind.CLIENT_HANG, target="x")
        with pytest.raises(ConfigurationError):
            ScheduledFault(
                at=0.0, kind=FaultKind.CLIENT_HANG, target="x", duration=-2.0
            )

    def test_handler_can_reject_fault(self):
        env = Environment()
        injector = FaultInjector(env)
        injector.register("im", lambda f: False)
        assert injector.inject_now(self._fault()) is False

    def test_unregister_removes_handler(self):
        env = Environment()
        injector = FaultInjector(env)
        injector.register("im", lambda f: True)
        injector.unregister("im")
        assert injector.inject_now(self._fault()) is False

    def test_load_unregistered_target_raises_up_front(self):
        from repro.errors import ConfigurationError

        env = Environment()
        injector = FaultInjector(env)
        injector.register("im", lambda f: True)
        with pytest.raises(ConfigurationError) as err:
            injector.load(
                [self._fault(), self._fault(at=5.0, target="ghost")]
            )
        # The error names what's missing and what IS registered.
        assert "ghost" in str(err.value)
        assert "im" in str(err.value)
        assert injector.records == []  # nothing partially scheduled

    def test_load_allow_unregistered_records_rejections(self):
        env = Environment()
        injector = FaultInjector(env)
        injector.register("im", lambda f: True)
        injector.load(
            [self._fault(), self._fault(at=5.0, target="ghost")],
            allow_unregistered=True,
        )
        env.run()
        assert [r.accepted for r in injector.records] == [True, False]
        assert injector.records[1].detail == "no handler"
