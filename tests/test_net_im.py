"""Unit tests for the IM service substrate."""

import pytest

from repro.errors import (
    AddressUnknownError,
    ChannelUnavailable,
    DeliveryFailure,
    ConfigurationError,
)
from repro.net import ChannelType, IMService, LatencyModel
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)


def make_service(loss=0.0, latency=FAST, seed=1):
    env = Environment()
    rng = RngRegistry(seed=seed).stream("im")
    service = IMService(env, rng, latency=latency, loss_probability=loss)
    return env, service


def test_login_requires_account():
    env, service = make_service()
    with pytest.raises(AddressUnknownError):
        service.login("nobody@im")


def test_login_sets_presence():
    env, service = make_service()
    service.register_account("mab@im")
    assert not service.presence.is_online("mab@im")
    service.login("mab@im")
    assert service.presence.is_online("mab@im")


def test_logout_clears_presence_and_session():
    env, service = make_service()
    service.register_account("mab@im")
    session = service.login("mab@im")
    session.logout()
    assert not service.presence.is_online("mab@im")
    assert not session.active
    assert service.session_for("mab@im") is None


def test_second_login_invalidates_first_session():
    env, service = make_service()
    service.register_account("mab@im")
    first = service.login("mab@im")
    second = service.login("mab@im")
    assert not first.active
    assert second.active
    assert service.session_for("mab@im") is second


def test_send_delivers_to_online_recipient():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    receiver = service.login("mab@im")
    got = []

    def listen(env):
        msg = yield receiver.receive()
        got.append((msg.body, env.now))

    env.process(listen(env))

    def talk(env):
        sender.send("mab@im", "Basement Water Sensor ON")
        yield env.timeout(0)

    env.process(talk(env))
    env.run()
    assert got == [("Basement Water Sensor ON", 0.4)]


def test_send_to_offline_recipient_fails():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    with pytest.raises(DeliveryFailure):
        sender.send("mab@im", "hello")
    assert service.stats.rejected == 1


def test_send_from_dead_session_fails():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    first = service.login("src@im")
    service.login("src@im")  # invalidates first
    service.login("mab@im")
    with pytest.raises(ChannelUnavailable):
        first.send("mab@im", "hello")


def test_sequence_numbers_monotonic_per_session():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    service.login("mab@im")
    seqs = [sender.send("mab@im", f"m{i}").seq for i in range(3)]
    assert seqs == [1, 2, 3]
    env.run()


def test_message_metadata():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    service.login("mab@im")
    msg = sender.send("mab@im", "body", subject="subj", correlation="alert-1")
    assert msg.channel is ChannelType.IM
    assert msg.sender == "src@im"
    assert msg.recipient == "mab@im"
    assert msg.correlation == "alert-1"
    env.run()


def test_recipient_logout_mid_flight_loses_message():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    receiver = service.login("mab@im")

    def scenario(env):
        sender.send("mab@im", "doomed")
        yield env.timeout(0.1)  # latency is 0.4 — log out before delivery
        receiver.logout()

    env.process(scenario(env))
    env.run()
    assert service.stats.lost == 1
    assert service.stats.delivered == 0


def test_outage_force_logs_out_everyone_and_rejects_sends():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    service.login("mab@im")

    def scenario(env):
        yield env.timeout(1.0)
        service.outage(60.0)
        assert not service.presence.is_online("mab@im")
        assert not sender.active
        with pytest.raises(ChannelUnavailable):
            service.login("src@im")
        yield env.timeout(61.0)
        # Service recovered: login works again.
        session = service.login("src@im")
        assert session.active

    done = env.process(scenario(env))
    env.run(until=done)


def test_overlapping_outages_extend():
    env, service = make_service()

    def scenario(env):
        service.outage(10.0)
        yield env.timeout(5.0)
        service.outage(20.0)  # extends to t=25
        yield env.timeout(10.0)  # t=15: still down
        assert not service.available
        yield env.timeout(11.0)  # t=26: back up
        assert service.available

    done = env.process(scenario(env))
    env.run(until=done)


def test_shorter_overlapping_outage_does_not_shrink():
    env, service = make_service()

    def scenario(env):
        service.outage(100.0)
        yield env.timeout(1.0)
        service.outage(5.0)  # must not end the outage at t=6
        yield env.timeout(10.0)  # t=11
        assert not service.available
        yield env.timeout(95.0)  # t=106
        assert service.available

    done = env.process(scenario(env))
    env.run(until=done)


def test_outage_duration_must_be_positive():
    env, service = make_service()
    with pytest.raises(ConfigurationError):
        service.outage(0.0)


def test_loss_probability_drops_messages():
    env, service = make_service(loss=1.0)
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    service.login("mab@im")
    sender.send("mab@im", "gone")
    env.run()
    assert service.stats.lost == 1
    assert service.stats.delivered == 0


def test_force_logout_fault_hook():
    env, service = make_service()
    service.register_account("mab@im")
    session = service.login("mab@im")
    assert service.force_logout("mab@im") is True
    assert not session.active
    assert service.force_logout("mab@im") is False


def test_stats_track_latency():
    env, service = make_service()
    for addr in ("src@im", "mab@im"):
        service.register_account(addr)
    sender = service.login("src@im")
    receiver = service.login("mab@im")

    def drain(env):
        while True:
            yield receiver.receive()

    env.process(drain(env))

    def talk(env):
        for i in range(10):
            sender.send("mab@im", f"m{i}")
            yield env.timeout(1.0)

    env.process(talk(env))
    env.run(until=30.0)
    assert service.stats.delivered == 10
    assert service.stats.mean_latency == pytest.approx(0.4)
    assert service.stats.delivery_ratio == 1.0
