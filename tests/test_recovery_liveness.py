"""Property: the HA stack recovers from ANY single fault of the taxonomy.

For every fault kind the paper's month exhibits, injected at an arbitrary
time, the system must return to delivering alerts end-to-end within a
bounded recovery horizon (unknown dialogs and power outages get their
operator/boot time included).  This is the §5 claim — "the fault-tolerance
mechanisms effectively recovered MyAlertBuddy from all failures" — as a
single universally-quantified test.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net import LatencyModel
from repro.sim import MINUTE
from repro.sim.failures import FaultKind
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
EMAIL_FAST = LatencyModel(median=15.0, sigma=0.3, low=2.0, high=120.0)

#: Faults that self-recover via the HA stack, with their recovery horizon
#: (probe intervals + restart + re-logon slack).
RECOVERABLE = {
    FaultKind.CLIENT_LOGOUT: 5 * MINUTE,
    FaultKind.CLIENT_HANG: 5 * MINUTE,
    FaultKind.CLIENT_STALE_POINTER: 5 * MINUTE,
    FaultKind.PROCESS_CRASH: 10 * MINUTE,
    FaultKind.PROCESS_HANG: 10 * MINUTE,
    FaultKind.MEMORY_LEAK: 10 * MINUTE,
    FaultKind.DIALOG_POPUP: 5 * MINUTE,
    # Needs the operator (registers the pair after 4 min here):
    FaultKind.UNKNOWN_DIALOG_POPUP: 15 * MINUTE,
    # 5-minute outage + re-logon slack:
    FaultKind.IM_SERVICE_OUTAGE: 12 * MINUTE,
    # 5-minute outage + boot + MDC relaunch:
    FaultKind.POWER_OUTAGE: 15 * MINUTE,
}


def inject(world, deployment, kind):
    """Apply one fault of ``kind`` right now.  Returns True if it applied."""
    current = deployment.current
    if kind is FaultKind.CLIENT_LOGOUT:
        return world.im.force_logout(deployment.im_address)
    if kind is FaultKind.CLIENT_HANG:
        return deployment.endpoint.im_client.hang()
    if kind is FaultKind.CLIENT_STALE_POINTER:
        client = deployment.endpoint.im_client
        if not client.running:
            return False
        client.terminate()
        client.start()
        return True
    if kind is FaultKind.PROCESS_CRASH:
        return current is not None and current.crash()
    if kind is FaultKind.PROCESS_HANG:
        return current is not None and current.hang()
    if kind is FaultKind.MEMORY_LEAK:
        return current is not None and current.leak_memory(500.0)
    if kind is FaultKind.DIALOG_POPUP:
        world.host.screen.pop_dialog("Connection lost", ("OK",), owner=None)
        return True
    if kind is FaultKind.UNKNOWN_DIALOG_POPUP:
        world.host.screen.pop_dialog("Brand new failure", ("Sigh",),
                                     owner=None)

        def operator(env):
            yield env.timeout(4 * MINUTE)
            deployment.endpoint.im_manager.register_dialog_rule(
                "Brand new failure", "Sigh"
            )

        world.env.process(operator(world.env))
        return True
    if kind is FaultKind.IM_SERVICE_OUTAGE:
        world.im.outage(5 * MINUTE)
        return True
    if kind is FaultKind.POWER_OUTAGE:
        return world.host.power_failure(5 * MINUTE)
    raise AssertionError(f"unhandled fault kind {kind}")


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(sorted(RECOVERABLE, key=lambda k: k.value)),
    fault_delay=st.floats(min_value=30.0, max_value=20 * MINUTE),
    seed=st.integers(min_value=0, max_value=50),
)
def test_single_fault_recovery_liveness(kind, fault_delay, seed):
    world = SimbaWorld(
        WorldConfig(
            seed=seed,
            im_latency=IM_FIXED,
            email_latency=EMAIL_FAST,
            email_loss=0.0,
            sms_loss=0.0,
        )
    )
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    # Fast probe cycle so recovery horizons stay small.
    world.start_mdc(deployment, check_interval=60.0)
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")

    applied = {}

    def scenario(env):
        yield env.timeout(fault_delay)
        applied["ok"] = inject(world, deployment, kind)
        # Let the stack recover, then demand a fresh end-to-end delivery.
        yield env.timeout(RECOVERABLE[kind])
        applied["probe_alert"], _ = source.emit("News", "liveness probe", "b")

    world.env.process(scenario(world.env))
    world.run(until=fault_delay + RECOVERABLE[kind] + 10 * MINUTE)

    assert applied.get("ok"), f"fault {kind} failed to apply"
    probe = applied["probe_alert"]
    receipts = user.receipts_for(probe.alert_id)
    assert receipts, (
        f"system never recovered from {kind.value} injected at "
        f"t={fault_delay:.0f}s (seed {seed}): probe alert undelivered"
    )
