"""Tests for the SimbaWorld assembly layer and the runnable examples."""

import runpy
import sys
from pathlib import Path

import pytest

from repro import SimbaWorld, WorldConfig, standard_modes
from repro.net import ChannelType

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestWorldAssembly:
    def test_create_user_allocates_distinct_addresses(self):
        world = SimbaWorld(seed=0)
        a = world.create_user("a")
        b = world.create_user("b")
        assert a.im_address != b.im_address
        assert a.phone_number != b.phone_number
        assert world.users == {"a": a, "b": b}

    def test_seed_shorthand(self):
        world = SimbaWorld(seed=42)
        assert world.config.seed == 42
        world2 = SimbaWorld(WorldConfig(email_loss=0.5), seed=7)
        assert world2.config.seed == 7
        assert world2.config.email_loss == 0.5

    def test_standard_modes_shapes(self):
        modes = {m.name: m for m in standard_modes()}
        assert set(modes) == {"critical", "normal", "digest"}
        assert modes["critical"].blocks[0].require_ack
        assert len(modes["critical"].blocks[1].actions) == 2
        assert len(modes["digest"].blocks) == 1

    def test_source_facing_book_hides_user_addresses(self):
        world = SimbaWorld(seed=0)
        user = world.create_user("alice")
        deployment = world.create_buddy(user)
        book = deployment.source_facing_book()
        addresses = {a.address for a in book}
        assert user.im_address not in addresses
        assert user.email_address not in addresses
        assert user.phone_number not in addresses
        assert deployment.im_address in addresses

    def test_register_user_endpoint_custom_modes(self):
        from repro.core import Action, CommunicationBlock, DeliveryMode

        world = SimbaWorld(seed=0)
        user = world.create_user("alice")
        deployment = world.create_buddy(user)
        custom = DeliveryMode("only-sms", [CommunicationBlock([Action("SMS")])])
        deployment.register_user_endpoint(user, modes=[custom])
        assert [m.name for m in
                deployment.config.subscriptions.modes_for("alice")] == [
            "only-sms"
        ]

    def test_subscribe_helper_maps_keywords(self):
        world = SimbaWorld(seed=0)
        user = world.create_user("alice")
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("Cat", user, "digest", keywords=["k1", "k2"])
        assert deployment.config.aggregator.category_for("k1") == "Cat"
        assert deployment.config.aggregator.category_for("k2") == "Cat"
        subs = deployment.config.subscriptions.subscriptions_for("Cat")
        assert [s.user for s in subs] == ["alice"]

    def test_launch_and_current(self):
        world = SimbaWorld(seed=0)
        user = world.create_user("alice")
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        assert deployment.current is None
        buddy = deployment.launch()
        assert deployment.current is buddy
        world.run(until=10.0)
        assert buddy.alive

    def test_two_buddies_share_the_world(self):
        world = SimbaWorld(seed=0)
        alice = world.create_user("alice")
        bob = world.create_user("bob")
        da = world.create_buddy(alice)
        db = world.create_buddy(bob)
        for deployment, user in ((da, alice), (db, bob)):
            deployment.register_user_endpoint(user)
            deployment.subscribe("News", user, "normal", keywords=["News"])
            deployment.config.classifier.accept_source("portal")
            deployment.launch()
        source = world.create_source("portal")
        source.add_target(da.source_facing_book())
        source.add_target(db.source_facing_book())
        source.emit("News", "shared headline", "x")
        world.run(until=120.0)
        assert len(alice.receipts) == 1
        assert len(bob.receipts) == 1
        assert alice.receipts[0].channel is ChannelType.IM


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "investment_alerts.py",
        "home_security.py",
        "location_tracking.py",
        "fault_tolerance_demo.py",
        "desktop_assistant.py",
        "portal_day.py",
    ],
)
def test_example_runs_clean(script, capsys):
    """Every example must run to completion (they carry their own asserts)."""
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert "===" in out  # each example prints a banner


class TestWorldGuards:
    def test_duplicate_user_name_rejected(self):
        world = SimbaWorld(seed=0)
        world.create_user("alice")
        with pytest.raises(ValueError, match="already exists"):
            world.create_user("alice")

    def test_duplicate_buddy_rejected(self):
        world = SimbaWorld(seed=0)
        user = world.create_user("alice")
        world.create_buddy(user)
        with pytest.raises(ValueError, match="already has"):
            world.create_buddy(user)
