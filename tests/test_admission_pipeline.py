"""Admission wiring regressions: permissive no-op + poison-queue fix.

Two halves of the PR 7 contract:

1. **Permissive is a perfect no-op.**  With
   :meth:`~repro.core.admission.AdmissionConfig.permissive` configured on
   every tenant, the golden 20-user farm journals and the pinned chaos
   reproducers behave byte-for-byte / count-for-count as if admission
   were never wired — the hardening layer draws no RNG, yields nothing,
   journals nothing.
2. **Retry exhaustion dead-letters.**  Under a persistent dual-channel
   outage, an alert that burns its retry budget lands in the dead-letter
   queue with a journalled ``dead_lettered`` terminal outcome (the legacy
   path abandoned it with an unbounded fixed-delay loop still pending),
   and the oracle accounts for it.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.core.admission import AdmissionConfig
from repro.sim.clock import MINUTE
from repro.sim.failures import FaultKind, ScheduledFault
from repro.testkit import (
    ChaosRunConfig,
    load_reproducer,
    run_chaos,
)
from repro.workloads.faultload import TARGET_EMAIL_SERVICE, TARGET_IM_SERVICE

from tests.golden_farm import (
    GOLDEN_FARM_PATH,
    run_golden_farm,
    serialize_farm_journals,
)

CHAOS_DIR = Path(__file__).parent / "data" / "chaos"
PINNED = sorted(CHAOS_DIR.glob("*.json"))

PERMISSIVE = AdmissionConfig.permissive()


# ---------------------------------------------------------------------------
# 1. Permissive config is byte-identical to no admission at all
# ---------------------------------------------------------------------------


def test_permissive_golden_farm_byte_identical():
    """The golden farm journals must not move by a byte when every tenant
    runs with admission wired but every knob off."""
    golden = GOLDEN_FARM_PATH.read_text()
    fresh = serialize_farm_journals(run_golden_farm(admission=PERMISSIVE))
    assert fresh + "\n" == golden


@pytest.mark.parametrize("path", PINNED, ids=lambda p: p.stem)
def test_permissive_pinned_reproducers_equivalent(path):
    """Each pinned chaos scenario replays identically (same offered /
    delivered / outcome counts / zero violations) with permissive
    admission added to the pinned config."""
    from repro.testkit.schedule import replay_reproducer

    reproducer = load_reproducer(path)
    baseline = replay_reproducer(path)

    known = {f.name for f in ChaosRunConfig.__dataclass_fields__.values()}
    config = ChaosRunConfig(
        **{k: v for k, v in reproducer.config.items() if k in known}
    )
    permissive = run_chaos(
        reproducer.schedule,
        dataclasses.replace(config, admission=PERMISSIVE),
    )
    assert permissive.ok and baseline.ok
    assert permissive.offered == baseline.offered
    assert permissive.delivered == baseline.delivered
    assert permissive.outcome_counts == baseline.outcome_counts
    assert permissive.promotions == baseline.promotions


def test_permissive_controller_reaches_every_tenant():
    """The admission rollup proves the permissive run actually wired a
    controller per tenant (it was a no-op, not an absence)."""
    report = run_chaos(
        [], ChaosRunConfig(n_users=2, duration=10 * MINUTE,
                           settle=10 * MINUTE, admission=PERMISSIVE)
    )
    assert report.admission is not None
    assert report.admission["tenants_hardened"] == 2
    assert report.admission["shed"] == 0
    assert report.admission["dedup_suppressed"] == 0


# ---------------------------------------------------------------------------
# 2. Retry exhaustion routes to the dead-letter queue
# ---------------------------------------------------------------------------

#: Hardening with a small retry budget and fast backoff so the exhaustion
#: chain fits inside a short run; no rate limits or shedding in play.
BUDGETED = AdmissionConfig(
    retry_budget=2,
    backoff_base=30.0,
    backoff_factor=2.0,
    backoff_max=120.0,
    backoff_jitter=0.1,
)


def _blackout_config(admission):
    """The ``total_outage_pair`` pin's parameters, admission swapped in."""
    return ChaosRunConfig(
        seed=5,
        n_users=2,
        duration=20 * MINUTE,
        alert_period=40.0,
        settle=15 * MINUTE,
        admission=admission,
    )


def _blackout_schedule():
    """Both channels down at once, mid-stream: an in-flight alert's whole
    retry chain (legacy 3 x 60 s, budgeted backoff 30 + 60 s) lands inside
    the outage and exhausts."""
    return [
        ScheduledFault(at=602.0, kind=FaultKind.IM_SERVICE_OUTAGE,
                       target=TARGET_IM_SERVICE, duration=600.0),
        ScheduledFault(at=602.0, kind=FaultKind.EMAIL_OUTAGE,
                       target=TARGET_EMAIL_SERVICE, duration=900.0),
    ]


def test_persistent_outage_dead_letters_with_budget():
    report = run_chaos(_blackout_schedule(), _blackout_config(BUDGETED))
    assert report.outcome_counts.get("dead_lettered", 0) >= 1, (
        f"no dead letters: {report.outcome_counts}"
    )
    # Exhaustion is terminal via the DLQ now — the legacy abandonment
    # outcome must not appear alongside it.
    assert report.outcome_counts.get("delivery_abandoned", 0) == 0
    assert report.admission["dead_letters"] >= 1
    # Every non-delivered alert is still accounted for: oracle green.
    assert report.ok, report.oracle.summary()


def test_persistent_outage_legacy_path_still_abandons():
    """Without a retry budget the pre-PR behaviour is preserved exactly:
    exhaustion journals ``delivery_abandoned``, no DLQ involved."""
    report = run_chaos(_blackout_schedule(), _blackout_config(None))
    assert report.outcome_counts.get("delivery_abandoned", 0) >= 1
    assert report.outcome_counts.get("dead_lettered", 0) == 0
    assert report.admission is None
    assert report.ok, report.oracle.summary()


def test_dead_letter_entries_carry_forensics():
    report = run_chaos(_blackout_schedule(), _blackout_config(BUDGETED))
    assert report.admission["dead_letters"] >= 1
    # The controller state rides on the persistent BuddyConfig; a chaos
    # run's farm is gone by now, so assert via the journal detail instead.
    assert report.outcome_counts.get("dead_lettered", 0) >= 1


def test_backoff_spreads_retries_under_budget():
    """With backoff configured the retry chain uses growing delays — the
    journal's retry_scheduled entries are not the fixed legacy cadence."""
    hardened = run_chaos(_blackout_schedule(), _blackout_config(BUDGETED))
    legacy = run_chaos(_blackout_schedule(), _blackout_config(None))
    # Budget (2 retries) < legacy attempt cap (4 attempts -> 3 retries):
    # the budgeted run schedules strictly fewer retries.
    assert hardened.outcome_counts.get("retry_scheduled", 0) < \
        legacy.outcome_counts.get("retry_scheduled", 0)


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
