"""Property tier for the stabilizing transport.

Two layers, both driven across scheduler backends:

- A **micro harness** (two hosts, one :class:`~repro.sim.link.HostLink`,
  one sender/receiver pair) under hypothesis-drawn
  :class:`~repro.net.adversary.AdversaryModel` knobs — random reorder
  horizons, duplication factors 1–5, corruption up to 70 % — asserting the
  exactly-once and bounded-convergence contracts record by record, and
  that the naive baseline demonstrably violates them under forced
  duplication/corruption.
- A **farm sweep**: 30 seeded generator schedules whose adversary pulses
  are scoped to the replication ship links, replayed through
  :func:`~repro.testkit.run_chaos`.  The stabilizing transport must never
  trip the transport invariants, must add *no new violations* over each
  seed's benign-faults-only baseline, and must fingerprint identically
  under the heap and wheel schedulers; the naive transport must trip the
  invariants on a healthy fraction of the same schedules.

Hypothesis runs derandomized so CI is bit-stable; each drawn example is a
seeded, reproducible simulation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.host import Host
from repro.core.stabilizing import (
    DEFAULT_RESEND_LIMIT,
    TransportAudit,
    make_receiver,
    make_sender,
)
from repro.net.adversary import AdversaryModel
from repro.sim.clock import HOUR
from repro.sim.kernel import Environment
from repro.sim.link import HostLink
from repro.testkit import ChaosIntensity, FaultScheduleGenerator, run_chaos
from repro.testkit.generator import ADVERSARY_FAULT_KINDS
from repro.testkit.harness import ChaosRunConfig

BACKENDS = ("heap", "wheel")
TRANSPORT_INVARIANTS = {
    "no_corrupt_accepted",
    "stabilized_exactly_once",
    "convergence_bounded",
}
N_SEEDS = 30
N_RECORDS = 30
#: Requeue attempts before the micro harness declares non-convergence.
ATTEMPT_CAP = 200

adversary_models = st.builds(
    AdversaryModel,
    reorder_probability=st.floats(0.0, 1.0),
    reorder_horizon=st.floats(0.1, 10.0),
    duplicate_probability=st.floats(0.0, 1.0),
    duplicate_max=st.integers(1, 5),
    # Capped below certain corruption so the requeue loop converges.
    corrupt_probability=st.floats(0.0, 0.7),
)


def run_transport(kind, model, seed, backend, n_records=N_RECORDS):
    """Ship ``n_records`` through one sender/receiver pair; requeue on
    failure exactly the way the replication flush loop does."""
    env = Environment(scheduler=backend)
    src = Host(env, name="a")
    dst = Host(env, name="b")
    link = HostLink(env, src, dst, rng=np.random.default_rng(seed))
    link.set_adversary(model)
    audit = TransportAudit()
    tx = make_sender(kind, link, "a->b", audit)
    applied: list = []
    rx = make_receiver(kind, audit, apply=applied.append)

    def driver():
        for i in range(n_records):
            payload = ("record", i)
            attempts = 0
            while True:
                attempts += 1
                assert attempts <= ATTEMPT_CAP, (
                    f"record {i} did not converge in {ATTEMPT_CAP} ships"
                )
                ok = yield from tx.ship(payload, dst, rx)
                if ok:
                    applied.append(payload)  # the post-ack apply step
                    break

    env.process(driver(), name="driver")
    env.run()
    return applied, audit, link


@pytest.mark.parametrize("backend", BACKENDS)
class TestStabilizingProperties:
    @settings(max_examples=35, derandomize=True, deadline=None)
    @given(model=adversary_models, seed=st.integers(0, 2**31 - 1))
    def test_exactly_once_under_arbitrary_adversary(
        self, backend, model, seed
    ):
        """Every record is applied exactly once, in order, no matter how
        the channel reorders, duplicates, or corrupts — and corruption
        never slips through."""
        applied, audit, link = run_transport(
            "stabilizing", model, seed, backend
        )
        assert applied == [("record", i) for i in range(N_RECORDS)]
        assert audit.corrupt_accepted == 0
        assert audit.duplicate_applied == 0
        # Nothing the adversary injected went unhandled: every corrupt
        # arrival was NACKed, never acked-and-applied.
        if link.adversary_stats.corrupt_injected:
            assert audit.corrupt_rejected > 0

    @settings(max_examples=35, derandomize=True, deadline=None)
    @given(model=adversary_models, seed=st.integers(0, 2**31 - 1))
    def test_convergence_bounded(self, backend, model, seed):
        """No single ship spins past its structural resend ceiling, and
        the whole batch drains (the driver's attempt cap never trips)."""
        applied, audit, _ = run_transport("stabilizing", model, seed, backend)
        assert len(applied) == N_RECORDS
        assert audit.max_resend_rounds <= DEFAULT_RESEND_LIMIT + 1

    @settings(max_examples=25, derandomize=True, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        copies=st.integers(2, 5),
        corrupt=st.floats(0.3, 0.7),
    )
    def test_naive_baseline_demonstrably_violates(
        self, backend, seed, copies, corrupt
    ):
        """Forced duplication and corruption make the naive transport
        accept corrupt frames and re-apply duplicates — the counters the
        oracle turns into violations and E14 measures."""
        model = AdversaryModel(
            duplicate_probability=1.0,
            duplicate_max=copies,
            corrupt_probability=corrupt,
        )
        applied, audit, link = run_transport("naive", model, seed, backend)
        assert audit.duplicate_applied > 0
        assert audit.corrupt_accepted > 0
        # The duplicates really were applied: more applications than
        # records shipped.
        assert len(applied) > N_RECORDS


# ---------------------------------------------------------------------------
# Farm sweep: 30 seeds, both backends
# ---------------------------------------------------------------------------


def link_adversary_schedule(seed):
    """A generator schedule whose adversary pulses target ship links only.

    Substrate pulses (IM/email duplication or corruption) stress the
    user-facing delivery path, which is outside the transport's contract —
    the benign fault mix is kept in full."""
    schedule = FaultScheduleGenerator(
        seed=seed,
        users=["user0", "user1"],
        duration=HOUR,
        intensity=ChaosIntensity(faults_per_hour=30.0),
        replication=True,
        adversarial=True,
    ).generate()
    return [
        f
        for f in schedule
        if f.kind not in ADVERSARY_FAULT_KINDS
        or f.target.startswith("replication-link:")
    ]


def violated(report) -> set:
    return {v.invariant for v in report.oracle.violations}


def test_farm_sweep_stabilizing_transport_holds_under_both_backends(
    monkeypatch,
):
    """30 seeded adversarial schedules: the stabilizing transport never
    trips a transport invariant, adds no new violations over each seed's
    benign baseline, fingerprints identically under heap and wheel — and
    its defenses demonstrably fired somewhere in the sweep."""
    fired = {"corrupt_rejected": 0, "duplicate_dropped": 0}
    fingerprints: dict[int, set] = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_SCHEDULER", backend)
        for seed in range(N_SEEDS):
            schedule = link_adversary_schedule(seed)
            assert any(f.kind in ADVERSARY_FAULT_KINDS for f in schedule)
            report = run_chaos(
                schedule,
                ChaosRunConfig(
                    seed=seed, n_users=2, duration=HOUR, replication=True
                ),
            )
            assert not (TRANSPORT_INVARIANTS & violated(report)), (
                f"seed {seed} ({backend}): {report.oracle.summary()}"
            )
            fingerprints.setdefault(seed, set()).add(report.fingerprint())
            for key in fired:
                fired[key] += report.oracle.info.get(key, 0)
    assert all(len(fps) == 1 for fps in fingerprints.values()), (
        "fingerprint diverged between scheduler backends"
    )
    assert fired["corrupt_rejected"] > 0
    assert fired["duplicate_dropped"] > 0


def test_farm_sweep_link_pulses_add_no_new_violations():
    """Differential form on a subset: whatever a benign-faults-only run
    already violates at this intensity is pre-existing; the link pulses
    must not add anything on top."""
    for seed in range(10):
        full = link_adversary_schedule(seed)
        benign = [f for f in full if f.kind not in ADVERSARY_FAULT_KINDS]
        config = ChaosRunConfig(
            seed=seed, n_users=2, duration=HOUR, replication=True
        )
        with_pulses = violated(run_chaos(full, config))
        baseline = violated(run_chaos(benign, config))
        assert with_pulses <= baseline, (
            f"seed {seed}: pulses added {with_pulses - baseline}"
        )


class TestE14:
    def test_e14_contract(self):
        """Seed 4 exercises both damage paths: the naive transport accepts
        corrupt frames while the stabilizing one NACKs and resends them,
        and the comparison's own verdict holds."""
        from repro.experiments import run_adversarial_comparison
        from repro.metrics import adversarial_report

        result = run_adversarial_comparison(seed=4)
        assert result.ok
        naive = result.variant("naive")
        stabilizing = result.variant("stabilizing")
        assert naive.corrupt_accepts > 0
        assert naive.transport_violations
        assert stabilizing.corrupt_accepts == 0
        assert stabilizing.duplicate_applies == 0
        assert stabilizing.corrupt_rejected > 0
        assert stabilizing.resends > 0
        assert not stabilizing.transport_violations
        assert "verdict: PASS" in adversarial_report(result)

    def test_e14_parallel_bit_identical(self):
        """Two worker processes render byte-for-byte the same report as
        the sequential path — the CI diff in one test."""
        from repro.experiments import run_adversarial_comparison
        from repro.metrics import adversarial_report

        sequential = adversarial_report(run_adversarial_comparison(seed=0, jobs=1))
        parallel = adversarial_report(run_adversarial_comparison(seed=0, jobs=2))
        assert sequential == parallel


def test_farm_sweep_naive_transport_demonstrably_violates():
    """The same schedules break the naive transport on a healthy fraction
    of seeds — the oracle-level half of E14's ablation."""
    tripped = 0
    for seed in range(N_SEEDS):
        report = run_chaos(
            link_adversary_schedule(seed),
            ChaosRunConfig(
                seed=seed,
                n_users=2,
                duration=HOUR,
                replication=True,
                transport="naive",
            ),
        )
        if {"no_corrupt_accepted", "stabilized_exactly_once"} & violated(
            report
        ):
            tripped += 1
    assert tripped >= 10, f"only {tripped}/{N_SEEDS} seeds tripped naive"
