"""Properties of the consistent-hash ring (PR 9 satellite).

Placement is the foundation of the sharded farm's determinism story: a
tenant's shard must be a pure function of (name, ring parameters) —
identical in every process and every run — and rebalancing must move only
what it says it moves.

1. **Determinism** — two independently built rings (and a subprocess with
   its own hash seed) agree on every placement.
2. **Balance** — at 1k tenants with default vnodes, no shard's population
   strays beyond a modest factor of uniform.
3. **Monotone remapping** — growing N → N+1 shards moves only keys that
   now land on the new shard (~1/N of them), never between old shards.
4. **Override locality** — reassigning one vnode changes exactly the keys
   homed on that vnode.
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.shard import ConsistentHashRing, stable_hash64
from repro.errors import ConfigurationError

names_strategy = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_",
        min_size=1,
        max_size=24,
    ),
    min_size=1,
    max_size=200,
    unique=True,
)


# ---------------------------------------------------------------------------
# 1. Deterministic placement
# ---------------------------------------------------------------------------


@given(names=names_strategy, shards=st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_placement_deterministic_across_ring_instances(names, shards):
    a = ConsistentHashRing(shards)
    b = ConsistentHashRing(shards)
    for name in names:
        assert a.owner(name) == b.owner(name)
        assert a.vnode_for(name) == b.vnode_for(name)


def test_placement_deterministic_across_processes():
    """A fresh interpreter (different PYTHONHASHSEED) places identically —
    the property Python's salted ``hash`` would break."""
    names = [f"user{i}" for i in range(64)]
    here = ConsistentHashRing(5)
    expected = [here.owner(name) for name in names]
    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.core.shard import ConsistentHashRing\n"
        "ring = ConsistentHashRing(5)\n"
        "print(','.join(str(ring.owner(f'user{i}')) for i in range(64)))\n"
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    out = subprocess.run(
        [sys.executable, "-c", script, src],
        capture_output=True, text=True, check=True,
        env={"PYTHONHASHSEED": "random"},
    )
    assert [int(tok) for tok in out.stdout.strip().split(",")] == expected


def test_stable_hash64_is_pinned():
    # A literal digest: any change to the hash function is a placement
    # migration for every deployment and must be a conscious decision.
    assert stable_hash64("user0") == 0x04B73263E7F18BD8


# ---------------------------------------------------------------------------
# 2. Balance at 1k tenants
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shards", [2, 4, 8])
def test_balance_at_1k_tenants(shards):
    ring = ConsistentHashRing(shards, vnodes=64)
    counts = [0] * shards
    for i in range(1000):
        counts[ring.owner(f"user{i}")] += 1
    uniform = 1000 / shards
    for shard, count in enumerate(counts):
        assert 0.5 * uniform <= count <= 1.6 * uniform, (
            f"shard {shard} holds {count} of 1000 "
            f"(uniform {uniform:.0f}): {counts}"
        )


# ---------------------------------------------------------------------------
# 3. Monotone remapping
# ---------------------------------------------------------------------------


@given(shards=st.integers(1, 8))
@settings(max_examples=8, deadline=None)
def test_growing_the_ring_moves_only_to_new_shards(shards):
    names = [f"user{i}" for i in range(1000)]
    before = ConsistentHashRing(shards)
    after = before.with_shards(shards + 1)
    moved = 0
    for name in names:
        old, new = before.owner(name), after.owner(name)
        if old != new:
            moved += 1
            assert new == shards, (
                f"{name} moved between old shards {old}->{new}"
            )
    # Expected share is 1/(N+1); allow generous slack for hash variance.
    expected = len(names) / (shards + 1)
    assert moved <= 2.0 * expected
    assert moved >= 0.35 * expected


# ---------------------------------------------------------------------------
# 4. Override locality
# ---------------------------------------------------------------------------


def test_override_moves_exactly_one_vnode_population():
    ring = ConsistentHashRing(4, vnodes=32)
    names = [f"user{i}" for i in range(2000)]
    victim = ring.vnode_for("user0")
    moved = ring.with_overrides({victim: (ring.owner("user0") + 1) % 4})
    for name in names:
        if ring.vnode_for(name) == victim:
            assert moved.owner(name) == (ring.owner("user0") + 1) % 4
        else:
            assert moved.owner(name) == ring.owner(name)
        # Overrides never change the home vnode, only the serving shard.
        assert moved.vnode_for(name) == ring.vnode_for(name)


def test_ring_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        ConsistentHashRing(0)
    with pytest.raises(ConfigurationError):
        ConsistentHashRing(2, vnodes=0)
    with pytest.raises(ConfigurationError):
        ConsistentHashRing(2, overrides={(5, 0): 1})
    with pytest.raises(ConfigurationError):
        ConsistentHashRing(2, overrides={(0, 0): 9})
