"""Acceptance sweep for the warm-standby tentpole.

Twenty-five seeded schedules that crash primary hosts mid-delivery, each
replayed against the MDC-only stack and the replicated pair.  The
contract per trial: the pair loses nothing, routes nothing twice, keeps
the oracle green (``at_most_one_active_epoch`` included — it is checked
for every pair tenant), and its p95 per-alert unavailability is strictly
smaller than MDC-only's on the identical schedule.

A short randomized chaos sweep in replication mode rides along: the
storm generator (primary crash, then standby crash mid-promotion, with
link partitions) must survive the full pair-aware oracle.
"""

from repro.experiments.failover import run_failover_sweep
from repro.sim.clock import MINUTE
from repro.testkit import ChaosIntensity, chaos_sweep

N_TRIALS = 25


class TestFailoverAcceptanceSweep:
    def test_replicated_pair_beats_mdc_on_25_crash_schedules(self):
        results = run_failover_sweep(
            seeds=range(N_TRIALS),
            n_users=2,
            n_crashes=1,
            window=12 * MINUTE,
            settle=10 * MINUTE,
            variants=("mdc", "replicated"),
        )
        failures = []
        for seed, result in enumerate(results):
            replicated = result.variant("replicated")
            mdc = result.variant("mdc")
            problems = []
            if replicated.lost:
                problems.append(f"lost {replicated.lost}")
            if replicated.duplicate_routes:
                problems.append(f"{replicated.duplicate_routes} dup routes")
            if replicated.violations:
                problems.append(f"violations {replicated.violations}")
            if not replicated.latency.p95 < mdc.latency.p95:
                problems.append(
                    f"p95 {replicated.latency.p95:.1f} !< "
                    f"mdc {mdc.latency.p95:.1f}"
                )
            if replicated.promotions < 1:
                problems.append("no failover happened")
            if problems:
                failures.append(f"seed {seed}: {', '.join(problems)}")
        assert not failures, "\n".join(failures)


class TestReplicationChaosSweep:
    SWEEP_KWARGS = dict(
        trials=3,
        n_users=2,
        duration=30 * MINUTE,
        settle=15 * MINUTE,
        replication=True,
        intensity=ChaosIntensity(faults_per_hour=10.0),
    )

    def test_storm_sweep_green_on_real_pipeline(self):
        result = chaos_sweep(seed=2027, **self.SWEEP_KWARGS)
        assert result.ok, result.summary()

    def test_replication_sweep_bit_for_bit_reproducible(self):
        kwargs = dict(self.SWEEP_KWARGS, trials=2)
        a = chaos_sweep(seed=13, **kwargs)
        b = chaos_sweep(seed=13, **kwargs)
        assert a.fingerprint() == b.fingerprint()
