"""Unit tests for the alert sources: proxy, portal, webstore, desktop."""

import pytest

from repro.core import AlertSeverity
from repro.errors import ConfigurationError
from repro.net import ChannelType, LatencyModel
from repro.sim import MINUTE
from repro.sources import ProxyRule, SimulatedWebSite
from repro.sources.portal import LegacyEmailAlertService
from repro.sources.proxy import AlertProxy
from repro.sources.webserver import PageNotFound
from repro.sources.webstore import NotAMember
from repro.world import SimbaWorld, WorldConfig

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
EMAIL_FIXED = LatencyModel(median=30.0, sigma=0.0, low=0.0, high=100.0)


def make_world(seed=2):
    return SimbaWorld(
        WorldConfig(
            seed=seed,
            im_latency=IM_FIXED,
            email_latency=EMAIL_FIXED,
            email_loss=0.0,
            sms_loss=0.0,
        )
    )


def rigged_world(subscribe_keywords, category="News", mode="normal", seed=2):
    world = make_world(seed=seed)
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe(category, user, mode, keywords=subscribe_keywords)
    deployment.launch()
    return world, user, deployment


class TestSimulatedWebSite:
    def test_publish_fetch(self):
        world = make_world()
        site = SimulatedWebSite(world.env, "cnn.com")
        site.publish("/florida", "Gore 2,907,351 | Bush 2,907,888")
        assert "Bush" in site.fetch("/florida")
        assert site.fetches == 1

    def test_missing_page(self):
        world = make_world()
        site = SimulatedWebSite(world.env, "cnn.com")
        with pytest.raises(PageNotFound):
            site.fetch("/nope")

    def test_change_log_only_on_difference(self):
        world = make_world()
        site = SimulatedWebSite(world.env, "cnn.com")
        site.publish("/p", "a")
        site.publish("/p", "a")
        site.publish("/p", "b")
        assert len(site.changes) == 2

    def test_scheduled_updates(self):
        world = make_world()
        site = SimulatedWebSite(world.env, "cnn.com")
        site.schedule_updates("/p", [(10.0, "first"), (20.0, "second")])
        world.run(until=15.0)
        assert site.fetch("/p") == "first"
        world.run(until=25.0)
        assert site.fetch("/p") == "second"


class TestAlertProxy:
    def _proxy(self, world, deployment):
        proxy = AlertProxy(
            world.env, "proxy", world.create_source_endpoint("proxy")
        )
        proxy.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("proxy")
        return proxy

    def test_rule_validation(self):
        world = make_world()
        site = SimulatedWebSite(world.env, "x")
        with pytest.raises(ConfigurationError):
            ProxyRule(site, "/p", 0.0, "a", "b", "kw")
        with pytest.raises(ConfigurationError):
            ProxyRule(site, "/p", 10.0, "", "b", "kw")

    def test_block_extraction(self):
        world = make_world()
        site = SimulatedWebSite(world.env, "x")
        rule = ProxyRule(site, "/p", 10.0, "<votes>", "</votes>", "Election")
        assert rule.extract("junk<votes> 123 </votes>junk") == "123"
        from repro.errors import SimbaError

        with pytest.raises(SimbaError):
            rule.extract("no markers here")

    def test_change_detection_emits_alert(self):
        world, user, deployment = rigged_world(["Election"])
        proxy = self._proxy(world, deployment)
        site = SimulatedWebSite(world.env, "cnn.com")
        site.publish("/florida", "<votes>100</votes>")
        proxy.add_rule(
            ProxyRule(site, "/florida", 10.0, "<votes>", "</votes>", "Election")
        )
        proxy.start()
        site.schedule_updates("/florida", [(25.0, "<votes>150</votes>")])
        world.run(until=2 * MINUTE)
        assert len(proxy.emitted) == 1
        assert proxy.emitted[0].keyword == "Election"
        assert proxy.emitted[0].body == "150"
        assert len(user.receipts) == 1

    def test_first_poll_is_baseline_no_alert(self):
        world, user, deployment = rigged_world(["Election"])
        proxy = self._proxy(world, deployment)
        site = SimulatedWebSite(world.env, "cnn.com")
        site.publish("/p", "<v>1</v>")
        proxy.add_rule(ProxyRule(site, "/p", 5.0, "<v>", "</v>", "Election"))
        proxy.start()
        world.run(until=MINUTE)
        assert proxy.emitted == []

    def test_unchanged_content_never_alerts(self):
        world, user, deployment = rigged_world(["Election"])
        proxy = self._proxy(world, deployment)
        site = SimulatedWebSite(world.env, "cnn.com")
        site.publish("/p", "<v>same</v>")
        rule = proxy.add_rule(ProxyRule(site, "/p", 5.0, "<v>", "</v>", "Election"))
        proxy.start()
        world.run(until=5 * MINUTE)
        assert rule.polls >= 50
        assert rule.changes_detected == 0

    def test_extraction_failures_counted_not_fatal(self):
        world, user, deployment = rigged_world(["Election"])
        proxy = self._proxy(world, deployment)
        site = SimulatedWebSite(world.env, "cnn.com")
        site.publish("/p", "markers gone")
        rule = proxy.add_rule(ProxyRule(site, "/p", 5.0, "<v>", "</v>", "Election"))
        proxy.start()
        world.run(until=MINUTE)
        assert rule.extraction_failures > 0
        assert proxy.emitted == []

    def test_stop_halts_polling(self):
        world, user, deployment = rigged_world(["Election"])
        proxy = self._proxy(world, deployment)
        site = SimulatedWebSite(world.env, "cnn.com")
        site.publish("/p", "<v>1</v>")
        rule = proxy.add_rule(ProxyRule(site, "/p", 5.0, "<v>", "</v>", "Election"))
        proxy.start()
        world.run(until=30.0)
        proxy.stop()
        polls = rule.polls
        world.run(until=2 * MINUTE)
        assert rule.polls == polls


class TestLegacyEmailService:
    def test_email_only_alert_classified_by_subject_rule(self):
        from repro.core import ExtractionRule

        world, user, deployment = rigged_world(["Stocks"], category="Investment")
        legacy = LegacyEmailAlertService(world.env, "oldportal", world.email)
        legacy.add_target(deployment.email_address)
        deployment.config.classifier.accept_source(
            "oldportal",
            ExtractionRule(source="oldportal", field="subject",
                           prefix="[", suffix="]"),
        )
        legacy.publish("Stocks", "MSFT up", "details")
        world.run(until=3 * MINUTE)
        # Arrived at MAB by email (30 s), routed to user by IM.
        assert len(user.receipts) == 1
        assert user.receipts[0].channel is ChannelType.IM
        assert deployment.journal.count("routed") == 1


class TestCommunityStore:
    def _store(self, world, deployment):
        from repro.sources.webstore import CommunityStore

        store = CommunityStore(
            world.env, "family-circle", world.create_source_endpoint("community")
        )
        store.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("family-circle")
        return store

    def test_membership_enforced(self):
        world, user, deployment = rigged_world(["family-circle update"])
        store = self._store(world, deployment)
        with pytest.raises(NotAMember):
            store.create_album("stranger", "Holiday")

    def test_photo_add_alerts_subscribers(self):
        world, user, deployment = rigged_world(["family-circle update"])
        store = self._store(world, deployment)
        store.add_member("grandma")
        store.create_album("grandma", "Holiday")
        url = store.add_photo("grandma", "Holiday", "beach.jpg")
        assert url == "http://family-circle/albums/Holiday/beach.jpg"
        world.run(until=MINUTE)
        assert len(user.receipts) == 1
        assert store.list_album("grandma", "Holiday") == ["beach.jpg"]

    def test_photo_to_missing_album_rejected(self):
        from repro.errors import SimbaError

        world, user, deployment = rigged_world(["family-circle update"])
        store = self._store(world, deployment)
        store.add_member("grandma")
        with pytest.raises(SimbaError):
            store.add_photo("grandma", "Nope", "x.jpg")

    def test_calendar_update_alerts(self):
        world, user, deployment = rigged_world(["family-circle update"])
        store = self._store(world, deployment)
        store.add_member("grandma")
        store.update_calendar("grandma", "Reunion on Saturday")
        world.run(until=MINUTE)
        assert len(store.changes) == 1
        assert len(user.receipts) == 1


class TestDesktopAssistant:
    def _assistant(self, world, deployment, threshold=600.0):
        from repro.sources.desktop import DesktopAssistant

        assistant = DesktopAssistant(
            world.env,
            "desktop",
            world.create_source_endpoint("desktop"),
            idle_threshold=threshold,
        )
        assistant.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("desktop")
        return assistant

    def test_active_user_suppresses_alerts(self):
        world, user, deployment = rigged_world(
            ["Important email", "Reminder"], category="Work"
        )
        assistant = self._assistant(world, deployment)
        assistant.record_activity()
        assert assistant.email_arrived("budget due", importance="high") is None
        assert len(assistant.suppressed) == 1

    def test_idle_user_gets_high_importance_email_forwarded(self):
        world, user, deployment = rigged_world(
            ["Important email", "Reminder"], category="Work"
        )
        assistant = self._assistant(world, deployment, threshold=300.0)
        world.run(until=400.0)  # idle since t=0
        alert = assistant.email_arrived("budget due", importance="high")
        assert alert is not None
        assert alert.severity is AlertSeverity.IMPORTANT
        world.run(until=500.0)
        assert len(user.receipts) == 1

    def test_normal_importance_never_forwards(self):
        world, user, deployment = rigged_world(["Important email"], "Work")
        assistant = self._assistant(world, deployment, threshold=1.0)
        world.run(until=100.0)
        assert assistant.email_arrived("newsletter", importance="normal") is None
        assert assistant.suppressed == []

    def test_reminder_forwarded_when_idle(self):
        world, user, deployment = rigged_world(
            ["Important email", "Reminder"], category="Work"
        )
        assistant = self._assistant(world, deployment, threshold=60.0)
        world.run(until=120.0)
        alert = assistant.reminder_popped("1:1 with manager")
        assert alert is not None
        assert alert.keyword == "Reminder"

    def test_processed_elsewhere_suppresses(self):
        world, user, deployment = rigged_world(["Important email"], "Work")
        assistant = self._assistant(world, deployment, threshold=60.0)
        world.run(until=120.0)
        assistant.mark_processed_elsewhere()
        assert assistant.email_arrived("x", importance="high") is None

    def test_activity_resets_idle_clock(self):
        world, user, deployment = rigged_world(["Important email"], "Work")
        assistant = self._assistant(world, deployment, threshold=60.0)
        world.run(until=120.0)
        assistant.record_activity()
        assert assistant.idle_time == 0.0
        assert not assistant.active


class TestCommunityProxyIntegration:
    def test_proxy_polls_mirrored_community_site(self):
        # §2.2 as the paper actually ran it: the alert proxy polls the
        # community page and alerts on changes.
        world, user, deployment = rigged_world(["Community"], "Friends")
        from repro.sources.webstore import CommunityStore

        store = CommunityStore(
            world.env, "family-circle",
            world.create_source_endpoint("community"),
        )
        store.add_member("grandma")
        store.create_album("grandma", "Holiday")
        site = SimulatedWebSite(world.env, "communities.example")
        store.mirror_to_site(site, "/family-circle")

        proxy = AlertProxy(
            world.env, "proxy", world.create_source_endpoint("proxy")
        )
        proxy.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("proxy")
        proxy.add_rule(
            ProxyRule(site, "/family-circle", 15.0, "<albums>", "</albums>",
                      "Community")
        )
        proxy.start()

        def scenario(env):
            yield env.timeout(60.0)  # give the proxy its baseline poll
            store.add_photo("grandma", "Holiday", "beach.jpg")

        world.env.process(scenario(world.env))
        world.run(until=5 * MINUTE)
        assert len(proxy.emitted) == 1
        assert "beach.jpg" in proxy.emitted[0].body
        assert len(user.receipts) == 1


class TestAlertSourceBase:
    def test_emit_and_wait_returns_outcomes(self):
        world, user, deployment = rigged_world(["News"])
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        def scenario(env):
            alert, outcomes = yield from source.emit_and_wait(
                "News", "subject", "body"
            )
            assert alert.keyword == "News"
            assert len(outcomes) == 1
            assert outcomes[0].delivered
            return alert

        done = world.env.process(scenario(world.env))
        world.run(until=done)

    def test_delivery_and_fallback_ratios(self):
        import math

        world, user, deployment = rigged_world(["News"])
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")
        assert math.isnan(source.delivery_ratio())
        assert math.isnan(source.fallback_ratio())
        source.emit("News", "s1", "b")
        world.run(until=MINUTE)
        world.im.outage(10 * MINUTE)
        source.emit("News", "s2", "b")
        world.run(until=20 * MINUTE)
        assert source.delivery_ratio() == 1.0
        assert source.fallback_ratio() == 0.5  # second one went by email

    def test_multiple_targets_fan_out(self):
        world, user, deployment = rigged_world(["News"])
        bob = world.create_user("bob", present=True)
        deployment_bob = world.create_buddy(bob)
        deployment_bob.register_user_endpoint(bob)
        deployment_bob.subscribe("News", bob, "normal", keywords=["News"])
        deployment_bob.config.classifier.accept_source("portal")
        deployment_bob.launch()
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        source.add_target(deployment_bob.source_facing_book())
        deployment.config.classifier.accept_source("portal")
        _alert, processes = source.emit("News", "s", "b")
        assert len(processes) == 2
        world.run(until=2 * MINUTE)
        assert len(user.receipts) == 1
        assert len(bob.receipts) == 1


class TestSenderNameClassification:
    def test_yahoo_style_keyword_in_sender_name(self):
        # §4.2: "the keywords in alerts from Yahoo! and Alerts.com appear
        # as part of the email sender name".
        from repro.core import ExtractionRule

        world, user, deployment = rigged_world(["Stocks"], category="Investment")
        legacy = LegacyEmailAlertService(
            world.env, "yahoo", world.email, keyword_in_sender=True
        )
        legacy.add_target(deployment.email_address)
        deployment.config.classifier.accept_source(
            "yahoo",
            ExtractionRule(source="yahoo", field="sender",
                           prefix="(", suffix=")"),
        )
        alert = legacy.publish("Stocks", "MSFT hits 52-week high", "details")
        assert alert.keyword_field == "sender"
        world.run(until=3 * MINUTE)
        assert len(user.receipts) == 1
        assert deployment.journal.count("routed") == 1

    def test_sender_rule_rejects_mismatched_sender(self):
        from repro.core import ExtractionRule

        world, user, deployment = rigged_world(["Stocks"], category="Investment")
        legacy = LegacyEmailAlertService(
            world.env, "yahoo", world.email, keyword_in_sender=False
        )  # keyword goes to subject, but MAB expects it in the sender
        legacy.add_target(deployment.email_address)
        deployment.config.classifier.accept_source(
            "yahoo",
            ExtractionRule(source="yahoo", field="sender",
                           prefix="(", suffix=")"),
        )
        legacy.publish("Stocks", "MSFT", "details")
        world.run(until=3 * MINUTE)
        assert user.receipts == []
        assert deployment.journal.count("rejected") == 1
