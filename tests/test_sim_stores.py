"""Unit tests for Store (FIFO mailboxes)."""

import pytest

from repro.sim import Environment, Store


def test_put_then_get_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in ("a", "b", "c"):
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["a", "b", "c"]


def test_get_blocks_until_item_arrives():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(7.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(7.0, "late")]


def test_len_tracks_items():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put(1)
        yield store.put(2)

    env.process(proc(env))
    env.run()
    assert len(store) == 2


def test_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    trace = []

    def producer(env):
        yield store.put("first")
        trace.append(("stored-first", env.now))
        yield store.put("second")
        trace.append(("stored-second", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        item = yield store.get()
        trace.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert trace == [
        ("stored-first", 0.0),
        ("got", "first", 5.0),
        ("stored-second", 5.0),
    ]


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_filtered_get_skips_non_matching():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in (1, 2, 3, 4):
            yield store.put(item)

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [2]
    assert list(store.items) == [1, 3, 4]


def test_filtered_get_waits_for_match():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x == "wanted")
        got.append((item, env.now))

    def producer(env):
        yield store.put("other")
        yield env.timeout(3.0)
        yield store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("wanted", 3.0)]
    assert list(store.items) == ["other"]


def test_multiple_getters_fifo_service():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(1.0)
        yield store.put("x")
        yield store.put("y")

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))
    env.process(producer(env))
    env.run()
    assert got == [("first", "x"), ("second", "y")]


def test_clear_drops_and_returns_items():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put("a")
        yield store.put("b")

    env.process(proc(env))
    env.run()
    assert store.clear() == ["a", "b"]
    assert len(store) == 0


def test_interrupted_getter_does_not_swallow_items():
    """Regression: an interrupted process's pending get must leave the
    store's queue, or the next put vanishes into a processed event nobody
    reads."""
    from repro.errors import Interrupt

    env = Environment()
    store = Store(env)
    got = []

    def victim(env):
        try:
            yield store.get()
        except Interrupt:
            pass
        yield env.timeout(1000.0)

    def survivor(env):
        item = yield store.get()
        got.append(item)

    target = env.process(victim(env))
    env.process(survivor(env))

    def scenario(env):
        yield env.timeout(1.0)
        target.interrupt()
        yield env.timeout(1.0)
        yield store.put("precious")

    env.process(scenario(env))
    env.run(until=10.0)
    assert got == ["precious"]


def test_interrupted_putter_withdraws_item():
    from repro.errors import Interrupt

    env = Environment()
    store = Store(env, capacity=1)

    def filler(env):
        yield store.put("occupies")

    def victim(env):
        try:
            yield store.put("withdrawn")
        except Interrupt:
            pass
        yield env.timeout(1000.0)

    env.process(filler(env))
    target = env.process(victim(env))

    def scenario(env):
        yield env.timeout(1.0)
        target.interrupt()
        yield env.timeout(1.0)
        item = yield store.get()  # frees capacity
        assert item == "occupies"
        yield env.timeout(1.0)

    done = env.process(scenario(env))
    env.run(until=done)
    # The withdrawn put never landed even after capacity freed up.
    assert list(store.items) == []
