"""Unit tests for the discrete-event kernel (Environment, Event, Process)."""

import pytest

from repro.errors import EventAlreadyTriggered, Interrupt, SimulationError
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5.0
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=50.0)
    with pytest.raises(ValueError):
        env.run(until=10.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 3.0


def test_run_until_event_raises_process_exception():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    p = env.process(proc(env))
    with pytest.raises(ValueError, match="boom"):
        env.run(until=p)


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 42

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 42


def test_unwaited_process_failure_crashes_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("unobserved")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unobserved"):
        env.run()


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter_with_value():
    env = Environment()
    evt = env.event()
    results = []

    def waiter(env):
        value = yield evt
        results.append(value)

    def firer(env):
        yield env.timeout(2.0)
        evt.succeed("payload")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert results == ["payload"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    evt = env.event()
    caught = []

    def waiter(env):
        try:
            yield evt
        except KeyError as exc:
            caught.append(exc)

    def firer(env):
        yield env.timeout(1.0)
        evt.fail(KeyError("nope"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert len(caught) == 1


def test_event_cannot_trigger_twice():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        evt.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        evt.fail(ValueError())


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    evt = env.event()
    with pytest.raises(AttributeError):
        _ = evt.value
    with pytest.raises(AttributeError):
        _ = evt.ok


def test_yielding_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield "not an event"

    p = env.process(proc(env))
    with pytest.raises(TypeError, match="expected an Event"):
        env.run(until=p)


def test_yield_already_processed_event_resumes():
    env = Environment()
    evt = env.event()
    evt.succeed("early")
    got = []

    def late_waiter(env):
        yield env.timeout(5.0)
        value = yield evt
        got.append(value)

    env.process(late_waiter(env))
    env.run()
    assert got == ["early"]


def test_any_of_triggers_on_first():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(10.0, value="slow")
        result = yield env.any_of([fast, slow])
        return list(result.values())

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == ["fast"]
    assert env.now == 1.0


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(3.0, value="b")
        result = yield env.all_of([a, b])
        return sorted(result.values())

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == ["a", "b"]
    assert env.now == 3.0


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == {}


def test_condition_fails_when_child_fails():
    env = Environment()
    bad = env.event()

    def proc(env):
        slow = env.timeout(10.0)
        yield env.all_of([bad, slow])

    def firer(env):
        yield env.timeout(1.0)
        bad.fail(ValueError("child died"))

    p = env.process(proc(env))
    env.process(firer(env))
    with pytest.raises(ValueError, match="child died"):
        env.run(until=p)


def test_interrupt_raises_in_target():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, env.now))

    def killer(env, target):
        yield env.timeout(2.0)
        target.interrupt("killed by test")

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert log == [("interrupted", "killed by test", 2.0)]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            trace.append(("caught", env.now))
        yield env.timeout(1.0)
        trace.append(("resumed", env.now))

    def killer(env, target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    # Interruption cancels the wait; the abandoned 100 s timeout is
    # tombstoned (nobody else observes it), so the run ends at t=6 instead
    # of draining the dead timer at t=100.
    assert trace == [("caught", 5.0), ("resumed", 6.0)]
    assert env.now == 6.0


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_nested_process_wait():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return "child result"

    def parent(env):
        result = yield env.process(child(env))
        return f"parent saw {result}"

    p = env.process(parent(env))
    env.run(until=p)
    assert p.value == "parent saw child result"


def test_schedule_negative_delay_rejected():
    env = Environment()
    evt = env.event()
    with pytest.raises(ValueError):
        env.schedule(evt, delay=-1.0)


def test_determinism_two_identical_runs():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, name, period):
            while env.now < 50.0:
                yield env.timeout(period)
                trace.append((round(env.now, 6), name))

        env.process(worker(env, "x", 3.0))
        env.process(worker(env, "y", 7.0))
        env.run(until=60.0)
        return trace

    assert build_and_run() == build_and_run()


def test_condition_built_on_failed_but_unprocessed_child():
    env = Environment()
    bad = env.event()
    bad.fail(ValueError("child failed"))

    def proc(env):
        yield env.all_of([bad, env.timeout(5.0)])

    p = env.process(proc(env))
    with pytest.raises(ValueError, match="child failed"):
        env.run(until=p)


def test_late_child_failure_after_anyof_triggered_is_defused():
    env = Environment()
    slow_failure = env.event()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        result = yield env.any_of([fast, slow_failure])
        return list(result.values())

    def late_failer(env):
        yield env.timeout(10.0)
        slow_failure.fail(RuntimeError("too late to matter"))

    p = env.process(proc(env))
    env.process(late_failer(env))
    env.run()  # must NOT raise: the late failure is defused by the condition
    assert p.value == ["fast"]


def test_event_cancel_is_safe_on_plain_events():
    env = Environment()
    evt = env.event()
    evt.cancel()  # no-op
    evt.succeed("still works")
    assert evt.value == "still works"


def test_interrupt_cause_none():
    env = Environment()
    caught = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            caught.append(exc.cause)

    target = env.process(victim(env))

    def killer(env):
        yield env.timeout(1.0)
        target.interrupt()

    env.process(killer(env))
    env.run()
    assert caught == [None]


def test_process_cannot_interrupt_itself():
    env = Environment()

    def selfish(env):
        env.active_process.interrupt("me")
        yield env.timeout(1.0)

    p = env.process(selfish(env))
    with pytest.raises(RuntimeError, match="cannot interrupt itself"):
        env.run(until=p)


def test_run_until_inf_equivalent_to_none():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(3.0)
        done.append(env.now)

    env.process(proc(env))
    env.run(until=None)
    assert done == [3.0]


# ----------------------------------------------------------------------
# Cancellable timers, tombstones, and the zero-delay fast path
# ----------------------------------------------------------------------


def test_cancelled_timeout_never_fires():
    env = Environment()
    fired = []
    timer = env.timeout(10.0)
    timer.callbacks.append(lambda evt: fired.append(env.now))
    timer.cancel()
    env.run()
    assert fired == []
    assert timer.cancelled
    assert not timer.processed
    assert env.now == 0.0  # nothing live was ever in the queue


def test_timeout_cancel_is_idempotent():
    env = Environment()
    timer = env.timeout(5.0)
    timer.cancel()
    timer.cancel()  # second cancel must not corrupt the dead-entry count
    assert env.dead_entries <= 1
    env.run()
    assert env.peek() == float("inf")


def test_cancel_after_processing_is_noop():
    env = Environment()
    timer = env.timeout(1.0)
    env.run()
    assert timer.processed
    timer.cancel()
    assert not timer.cancelled


def test_peek_skips_tombstoned_entries():
    env = Environment()
    near = env.timeout(5.0)
    env.timeout(10.0)
    assert env.peek() == 5.0
    near.cancel()
    assert env.peek() == 10.0


def test_peek_all_tombstones_reports_idle():
    env = Environment()
    timers = [env.timeout(float(i + 1)) for i in range(4)]
    for timer in timers:
        timer.cancel()
    assert env.peek() == float("inf")
    assert env.queue_depth == 0


def test_queue_depth_excludes_tombstones():
    env = Environment()
    timers = [env.timeout(float(i + 10)) for i in range(6)]
    assert env.queue_depth == 6
    timers[0].cancel()
    timers[1].cancel()
    assert env.queue_depth == 4


def test_compaction_purges_dominating_tombstones():
    env = Environment()
    timers = [env.timeout(float(i + 1)) for i in range(20)]
    # Cancel more than half: the compaction threshold must trip and throw
    # the dead entries away wholesale (the 11th cancel tips 2*dead over the
    # queue length; the 12th lands after the purge).
    for timer in timers[:12]:
        timer.cancel()
    assert env.dead_entries <= 1  # compacted mid-loop, not accumulating 12
    assert env.queue_depth == 8
    order = []
    env.timeout(0.5).callbacks.append(lambda evt: order.append(env.now))
    env.run()
    # Compaction must not disturb the live timers' order or times.
    assert order == [0.5]
    assert env.now == 20.0


def test_anyof_cancels_losing_timer():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(100.0, value="slow")
        result = yield env.any_of([fast, slow])
        return (list(result.values()), slow)

    p = env.process(proc(env))
    env.run(until=p)
    values, slow = p.value
    assert values == ["fast"]
    # The losing guard timer was tombstoned, not left to pollute the heap.
    assert slow.cancelled
    assert env.peek() == float("inf")
    env.run()
    assert env.now == 1.0


def test_anyof_keeps_timer_shared_with_another_waiter():
    env = Environment()
    resumed = []

    def racer(env, slow):
        fast = env.timeout(1.0, value="fast")
        yield env.any_of([fast, slow])

    def patient(env, slow):
        yield slow
        resumed.append(env.now)

    slow = env.timeout(50.0, value="slow")
    env.process(racer(env, slow))
    env.process(patient(env, slow))
    env.run()
    # The race resolved at t=1 but the timer had another observer: it must
    # still fire for the patient waiter.
    assert resumed == [50.0]


def test_allof_failure_cancels_orphaned_guard():
    env = Environment()
    bad = env.event()
    caught = []

    def proc(env):
        guard = env.timeout(500.0)
        try:
            yield env.all_of([bad, guard])
        except ValueError:
            caught.append(env.now)

    def firer(env):
        yield env.timeout(2.0)
        bad.fail(ValueError("child died"))

    env.process(proc(env))
    env.process(firer(env))
    env.run()
    assert caught == [2.0]
    # The guard timer lost its only observer when the condition failed.
    assert env.now == 2.0


def test_interrupt_tombstones_abandoned_timer():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(1000.0)
        except Interrupt:
            pass

    def killer(env, target):
        yield env.timeout(3.0)
        target.interrupt()

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert env.now == 3.0
    assert env.queue_depth == 0


def test_zero_delay_merges_with_heap_in_sequence_order():
    env = Environment()
    order = []

    def waiter(env, evt, tag):
        yield evt
        order.append((tag, env.now))

    evt = env.event()

    def first_timer(env):
        yield env.timeout(5.0)
        order.append(("timer1", env.now))
        evt.succeed()  # zero-delay: lands on the fast path at t=5

    def second_timer(env):
        yield env.timeout(5.0)
        order.append(("timer2", env.now))

    env.process(first_timer(env))
    env.process(second_timer(env))
    env.process(waiter(env, evt, "woken"))
    env.run()
    # Both timers were scheduled before the zero-delay resume, so sequence
    # order puts them first even though all three share t=5.
    assert order == [("timer1", 5.0), ("timer2", 5.0), ("woken", 5.0)]


def test_determinism_unaffected_by_cancellations():
    def build_and_run(with_cancel):
        env = Environment()
        trace = []

        def worker(env, name, period):
            while env.now < 30.0:
                guard = env.timeout(period * 10)
                tick = env.timeout(period)
                yield env.any_of([tick, guard])
                trace.append((round(env.now, 6), name))
                if with_cancel:
                    guard.cancel()  # explicit cancel on top of auto-release

        env.process(worker(env, "x", 3.0))
        env.process(worker(env, "y", 7.0))
        env.run(until=40.0)
        return trace

    assert build_and_run(True) == build_and_run(False)
