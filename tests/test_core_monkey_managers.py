"""Unit tests for the monkey thread and the Communication Managers."""

import pytest

from repro.clients import EmailClient, IMClient, Screen
from repro.core import EmailManager, IMManager, MonkeyThread, SMSManager
from repro.errors import ChannelError, StalePointerError
from repro.net import EmailService, IMService, LatencyModel, SMSGateway
from repro.sim import Environment, RngRegistry

FAST = LatencyModel(median=0.3, sigma=0.0, low=0.0, high=10.0)


@pytest.fixture()
def rig():
    env = Environment()
    rngs = RngRegistry(seed=5)
    screen = Screen(env)
    im = IMService(env, rngs.stream("im"), latency=FAST)
    email = EmailService(env, rngs.stream("email"), latency=FAST, loss_probability=0)
    sms = SMSGateway(env, rngs.stream("sms"), latency=FAST, loss_probability=0)
    im.register_account("mab@im")
    im.register_account("peer@im")
    return env, screen, im, email, sms


class TestMonkeyThread:
    def test_clicks_known_caption(self, rig):
        env, screen, im, email, sms = rig
        monkey = MonkeyThread(env, screen, client_rules={"Oops": "OK"})
        screen.pop_dialog("Oops", ("OK", "Cancel"))
        assert monkey.scan_once() == 1
        assert screen.open_dialogs() == []
        assert monkey.clicks[0].caption == "Oops"

    def test_unknown_caption_left_on_screen(self, rig):
        env, screen, im, email, sms = rig
        monkey = MonkeyThread(env, screen)
        screen.pop_dialog("Never seen before", ("OK",))
        assert monkey.scan_once() == 0
        assert len(screen.open_dialogs()) == 1
        assert "Never seen before" in monkey.unknown_captions

    def test_system_generic_rules_present(self, rig):
        env, screen, im, email, sms = rig
        monkey = MonkeyThread(env, screen)
        screen.pop_dialog("Low disk space", ("OK",))
        assert monkey.scan_once() == 1

    def test_registered_rule_fixes_unknown_dialog(self, rig):
        # The paper's fix for the two unrecovered failures.
        env, screen, im, email, sms = rig
        monkey = MonkeyThread(env, screen)
        screen.pop_dialog("Weird new dialog", ("Continue",))
        assert monkey.scan_once() == 0
        monkey.register_rule("Weird new dialog", "Continue")
        assert monkey.scan_once() == 1

    def test_rule_with_wrong_button_is_useless(self, rig):
        env, screen, im, email, sms = rig
        monkey = MonkeyThread(env, screen, client_rules={"Q": "Yes"})
        screen.pop_dialog("Q", ("No", "Maybe"))
        assert monkey.scan_once() == 0
        assert "Q" in monkey.unknown_captions

    def test_periodic_scanning_loop(self, rig):
        env, screen, im, email, sms = rig
        monkey = MonkeyThread(env, screen, interval=20.0)
        monkey.start()

        def scenario(env):
            yield env.timeout(5.0)
            screen.pop_dialog("Low disk space", ("OK",))
            yield env.timeout(30.0)

        done = env.process(scenario(env))
        env.run(until=done)
        # Popped at t=5, first scan after that is t=20.
        assert monkey.clicks[0].at == 20.0

    def test_stop_halts_scanning(self, rig):
        env, screen, im, email, sms = rig
        monkey = MonkeyThread(env, screen, interval=20.0)
        monkey.start()
        monkey.stop()
        screen.pop_dialog("Low disk space", ("OK",))
        env.run(until=100.0)
        assert monkey.clicks == []

    def test_invalid_params(self, rig):
        env, screen, im, email, sms = rig
        with pytest.raises(ValueError):
            MonkeyThread(env, screen, interval=0.0)
        monkey = MonkeyThread(env, screen)
        with pytest.raises(ValueError):
            monkey.register_rule("", "OK")


class TestIMManager:
    def _manager(self, rig):
        env, screen, im, email, sms = rig
        client = IMClient(env, screen, im, "mab@im")
        manager = IMManager(env, client)
        manager.ensure_started()
        return env, im, client, manager

    def test_ensure_started_logs_on(self, rig):
        env, im, client, manager = self._manager(rig)
        assert im.presence.is_online("mab@im")
        assert manager.sanity_check().healthy

    def test_sanity_relogon_after_forced_logout(self, rig):
        env, im, client, manager = self._manager(rig)
        im.force_logout("mab@im")
        report = manager.sanity_check()
        assert report.healthy
        assert "re-logon" in report.repairs
        assert manager.stats.relogons == 1
        assert im.presence.is_online("mab@im")

    def test_sanity_restarts_hung_client(self, rig):
        env, im, client, manager = self._manager(rig)
        client.hang()
        report = manager.sanity_check()
        assert "restart" in report.repairs
        assert manager.stats.restarts == 1
        assert not client.hung
        assert im.presence.is_online("mab@im")

    def test_sanity_restarts_dead_client(self, rig):
        env, im, client, manager = self._manager(rig)
        client.terminate()
        report = manager.sanity_check()
        assert "restart" in report.repairs
        assert im.presence.is_online("mab@im")

    def test_sanity_reports_dialog_blocked_without_restart(self, rig):
        env, im, client, manager = self._manager(rig)
        client.pop_dialog("Connection lost", ("OK",))
        report = manager.sanity_check()
        assert report.dialog_blocked
        assert not report.healthy
        assert manager.stats.restarts == 0
        # The monkey knows this caption; after its click the next check is OK.
        assert manager.monkey.scan_once() == 1
        assert manager.sanity_check().healthy

    def test_sanity_reports_service_down(self, rig):
        env, im, client, manager = self._manager(rig)
        im.set_available(False)
        report = manager.sanity_check()
        assert report.service_down
        assert not report.healthy
        # After the outage, a later sanity pass restores login.
        im.set_available(True)
        report = manager.sanity_check()
        assert report.healthy
        assert im.presence.is_online("mab@im")

    def test_restart_during_outage_does_not_crash(self, rig):
        env, im, client, manager = self._manager(rig)
        im.set_available(False)
        manager.restart()
        assert client.running
        assert not im.presence.is_online("mab@im")

    def test_submit_roundtrip(self, rig):
        env, im, client, manager = self._manager(rig)
        im.login("peer@im")
        message = manager.submit("peer@im", "s", "hello", correlation="c1")
        assert message.seq == 1
        assert manager.stats.submissions == 1
        env.run()

    def test_submit_failure_counted(self, rig):
        env, im, client, manager = self._manager(rig)
        with pytest.raises(ChannelError):
            manager.submit("peer@im", "s", "offline recipient")
        assert manager.stats.submission_failures == 1

    def test_handle_property_requires_start(self, rig):
        env, screen, im, email, sms = rig
        manager = IMManager(env, IMClient(env, screen, im, "mab@im"))
        with pytest.raises(StalePointerError):
            _ = manager.handle

    def test_is_recipient_online(self, rig):
        env, im, client, manager = self._manager(rig)
        assert manager.is_recipient_online("peer@im") is False
        im.login("peer@im")
        assert manager.is_recipient_online("peer@im") is True

    def test_shutdown_orderly(self, rig):
        env, im, client, manager = self._manager(rig)
        manager.shutdown()
        assert not client.running
        assert not im.presence.is_online("mab@im")

    def test_ensure_started_attaches_to_running_client(self, rig):
        # A fresh MAB incarnation attaching to a client left running by the
        # previous incarnation must refresh pointers via restart.
        env, im, client, manager = self._manager(rig)
        manager2 = IMManager(env, client)
        manager2.ensure_started()
        assert manager2.stats.restarts == 1
        assert im.presence.is_online("mab@im")


class TestEmailManager:
    def _manager(self, rig):
        env, screen, im, email, sms = rig
        client = EmailClient(env, screen, email, "mab@mail")
        manager = EmailManager(env, client)
        manager.ensure_started()
        return env, email, client, manager

    def test_healthy_check(self, rig):
        env, email, client, manager = self._manager(rig)
        assert manager.sanity_check().healthy

    def test_hang_restart(self, rig):
        env, email, client, manager = self._manager(rig)
        client.hang()
        report = manager.sanity_check()
        assert "restart" in report.repairs
        assert manager.sanity_check().healthy

    def test_service_down_reported(self, rig):
        env, email, client, manager = self._manager(rig)
        email.set_available(False)
        report = manager.sanity_check()
        assert report.service_down

    def test_dialog_blocked(self, rig):
        env, email, client, manager = self._manager(rig)
        client.pop_dialog("Mail delivery problem", ("OK",))
        report = manager.sanity_check()
        assert report.dialog_blocked
        assert manager.monkey.scan_once() == 1

    def test_submit(self, rig):
        env, email, client, manager = self._manager(rig)
        manager.submit("user@mail", "subject", "body", importance="high")
        env.run()
        assert email.mailbox("user@mail").unread_count == 1


class TestSMSManager:
    def test_submit_folds_subject_into_body(self, rig):
        env, screen, im, email, sms = rig
        manager = SMSManager(env, sms)
        message = manager.submit("+1", "ALERT", "water rising")
        assert message.body == "ALERT: water rising"
        env.run()

    def test_sanity_reflects_gateway(self, rig):
        env, screen, im, email, sms = rig
        manager = SMSManager(env, sms)
        assert manager.sanity_check().healthy
        sms.set_available(False)
        assert manager.sanity_check().service_down

    def test_submit_failure_counted(self, rig):
        env, screen, im, email, sms = rig
        manager = SMSManager(env, sms)
        sms.set_available(False)
        with pytest.raises(ChannelError):
            manager.submit("+1", "", "x")
        assert manager.stats.submission_failures == 1
