"""Tests for email-based remote home automation and the desktop mailbox
watcher."""

import pytest

from repro.aladdin.remote_admin import RemoteHomeAdmin
from repro.aladdin.sss import SoftStateStore
from repro.net import EmailService, LatencyModel
from repro.sim import Environment, MINUTE, RngRegistry

FAST = LatencyModel(median=2.0, sigma=0.0, low=0.0, high=10.0)


class Rig:
    def __init__(self):
        self.env = Environment()
        rngs = RngRegistry(seed=6)
        self.email = EmailService(self.env, rngs.stream("email"),
                                  latency=FAST, loss_probability=0.0)
        self.store = SoftStateStore(self.env, "gateway")
        self.store.define_type("security")
        self.store.define_type("sensor")
        self.store.create("security.armed", "security", True, 3600.0, 10**6)
        self.store.create("Basement Water", "sensor", "OFF", 3600.0, 10**6)
        self.admin = RemoteHomeAdmin(
            self.env, self.email, self.store, "home@mail", secret="s3cret"
        )
        self.admin.start()

    def command(self, body, sender="owner@mail"):
        self.email.send(sender, "home@mail", "cmd", body)

    def replies(self, to="owner@mail"):
        return self.email.mailbox(to).peek_unread()


class TestRemoteAdmin:
    def test_disarm_via_email(self):
        rig = Rig()
        rig.command("s3cret\nDISARM")
        rig.env.run(until=MINUTE)
        assert rig.store.read("security.armed") is False
        (reply,) = rig.replies()
        assert "disarmed" in reply.body

    def test_arm_via_email(self):
        rig = Rig()
        rig.store.write("security.armed", False)
        rig.command("s3cret\nARM")
        rig.env.run(until=MINUTE)
        assert rig.store.read("security.armed") is True

    def test_query_variable(self):
        rig = Rig()
        rig.command("s3cret\nQUERY Basement Water")
        rig.env.run(until=MINUTE)
        (reply,) = rig.replies()
        assert "Basement Water = 'OFF'" in reply.body

    def test_query_unknown_variable(self):
        rig = Rig()
        rig.command("s3cret\nQUERY ghost")
        rig.env.run(until=MINUTE)
        (reply,) = rig.replies()
        assert "no such variable" in reply.body

    def test_status_lists_everything(self):
        rig = Rig()
        rig.command("s3cret\nSTATUS")
        rig.env.run(until=MINUTE)
        (reply,) = rig.replies()
        assert "security.armed" in reply.body
        assert "Basement Water" in reply.body

    def test_wrong_secret_rejected(self):
        rig = Rig()
        rig.command("wrong\nDISARM", sender="attacker@mail")
        rig.env.run(until=MINUTE)
        assert rig.store.read("security.armed") is True
        record = rig.admin.commands[0]
        assert not record.accepted
        (reply,) = rig.replies(to="attacker@mail")
        assert "authentication failed" in reply.body

    def test_unknown_command(self):
        rig = Rig()
        rig.command("s3cret\nEXPLODE")
        rig.env.run(until=MINUTE)
        record = rig.admin.commands[0]
        assert not record.accepted

    def test_multiple_commands_one_mail(self):
        rig = Rig()
        rig.command("s3cret\nDISARM\nSTATUS")
        rig.env.run(until=MINUTE)
        assert len(rig.admin.commands) == 2
        assert len(rig.replies()) == 2

    def test_stop_halts_processing(self):
        rig = Rig()
        rig.admin.stop()
        rig.command("s3cret\nDISARM")
        rig.env.run(until=MINUTE)
        assert rig.store.read("security.armed") is True


class TestDesktopMailboxWatcher:
    def test_high_importance_unread_forwarded_when_away(self):
        from repro.world import SimbaWorld, WorldConfig
        from repro.sources.desktop import DesktopAssistant

        world = SimbaWorld(
            WorldConfig(seed=6, email_latency=FAST, email_loss=0.0)
        )
        user = world.create_user("alice", present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("Work", user, "normal",
                             keywords=["Important email"])
        deployment.launch()
        assistant = DesktopAssistant(
            world.env, "desktop", world.create_source_endpoint("desktop"),
            idle_threshold=5 * MINUTE,
        )
        assistant.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("desktop")
        assistant.watch_mailbox(world.email, "alice-desktop@mail",
                                interval=MINUTE)

        # Mail arrives while the user is at the desk: not forwarded.
        world.email.send("boss@mail", "alice-desktop@mail", "now!", "b",
                         importance="high")
        assistant.record_activity()
        world.run(until=2 * MINUTE)
        assert assistant.emitted == []

        # User walks away; after the idle threshold the watcher forwards
        # the STILL-unread high-importance mail, exactly once.
        world.run(until=20 * MINUTE)
        assert len(assistant.emitted) == 1
        world.run(until=40 * MINUTE)
        assert len(assistant.emitted) == 1  # no duplicates
        assert len(user.receipts) == 1

    def test_normal_importance_never_watched(self):
        from repro.world import SimbaWorld, WorldConfig
        from repro.sources.desktop import DesktopAssistant

        world = SimbaWorld(
            WorldConfig(seed=6, email_latency=FAST, email_loss=0.0)
        )
        assistant = DesktopAssistant(
            world.env, "desktop", world.create_source_endpoint("desktop"),
            idle_threshold=1.0,
        )
        assistant.watch_mailbox(world.email, "x@mail", interval=30.0)
        world.email.send("a@mail", "x@mail", "fyi", "b", importance="normal")
        world.run(until=10 * MINUTE)
        assert assistant.emitted == []
