"""SIMBA: a dependable user alert service architecture — reproduction.

This package reproduces Wang, Bahl & Russell, *The SIMBA User Alert Service
Architecture for Dependable Alert Delivery* (DSN 2001), as a complete,
simulation-backed Python library:

- :mod:`repro.sim` — deterministic discrete-event kernel.
- :mod:`repro.net` — IM / email / SMS channel substrates.
- :mod:`repro.clients` — GUI client software with automation interfaces.
- :mod:`repro.core` — the SIMBA library and MyAlertBuddy (delivery modes,
  classification/aggregation/filtering/routing, exception-handling
  automation, pessimistic logging, watchdog, self-stabilization,
  rejuvenation).
- :mod:`repro.sources` — information/web-store proxies, portals, the
  desktop assistant; :mod:`repro.aladdin` — the home-networking system;
  :mod:`repro.wish` — the wireless location system.
- :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.metrics`,
  :mod:`repro.experiments` — evaluation machinery for every table/figure.
- :mod:`repro.world` — one-stop assembly of a complete deployment.

Quickstart::

    from repro import SimbaWorld

    world = SimbaWorld(seed=7)
    alice = world.create_user("alice")
    buddy = world.create_buddy(alice)
    buddy.register_user_endpoint(alice)
    buddy.subscribe("Investment", alice, "normal", keywords=["Stocks"])
    buddy.launch()

    portal = world.create_source("portal")
    portal.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("portal")

    portal.emit("Stocks", "MSFT up 3%", "details...")
    world.run(until=60)
    print(alice.receipts)
"""

from repro.core import (
    Action,
    AddressBook,
    Alert,
    AlertClassifier,
    AlertSeverity,
    CommunicationBlock,
    DeliveryMode,
    DeliveryOutcome,
    FilterPolicy,
    MasterDaemonController,
    MyAlertBuddy,
    PessimisticLog,
    SimbaEndpoint,
    SubscriptionLayer,
    TimeWindow,
    UserAddress,
    UserEndpoint,
)
from repro.core.delivery_modes import im_ack_then_email
from repro.net import ChannelType, EmailService, IMService, LatencyModel, SMSGateway
from repro.sim import Environment, RngRegistry
from repro.world import (
    BuddyDeployment,
    SimbaWorld,
    WorldConfig,
    standard_modes,
    standard_user_book,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "AddressBook",
    "Alert",
    "AlertClassifier",
    "AlertSeverity",
    "BuddyDeployment",
    "ChannelType",
    "CommunicationBlock",
    "DeliveryMode",
    "DeliveryOutcome",
    "EmailService",
    "Environment",
    "FilterPolicy",
    "IMService",
    "LatencyModel",
    "MasterDaemonController",
    "MyAlertBuddy",
    "PessimisticLog",
    "RngRegistry",
    "SMSGateway",
    "SimbaEndpoint",
    "SimbaWorld",
    "SubscriptionLayer",
    "TimeWindow",
    "UserAddress",
    "UserEndpoint",
    "WorldConfig",
    "im_ack_then_email",
    "standard_modes",
    "standard_user_book",
    "__version__",
]
