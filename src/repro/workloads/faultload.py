"""One-month faultload matching the paper's §5 recovery log.

"Within a one-month period of time, there were five extended IM downtimes
lasting from 4 to 103 minutes.  In addition, there were nine instances where
MyAlertBuddy was logged out and simple re-logon attempts worked.  In another
nine instances, the hanging IM client had to be killed and restarted in
order to re-log in.  There were 36 restarts of MyAlertBuddy by the MDC.
Most of them were triggered by IM exceptions ...  The fault-tolerance
mechanisms effectively recovered MyAlertBuddy from all failures except
three: one failure was caused by a rare power outage in the office; another
two were caused by previously unknown dialog boxes."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.clock import DAY, MINUTE
from repro.sim.failures import FaultKind, ScheduledFault

MONTH = 30 * DAY

#: Standard injection-target names used by the fault-tolerance harness.
TARGET_IM_SERVICE = "im-service"
TARGET_EMAIL_SERVICE = "email-service"
TARGET_IM_CLIENT = "im-client"
TARGET_MAB = "mab"
TARGET_HOST = "host"
TARGET_SCREEN = "screen"
#: Replication-mode targets (per tenant): the warm standby's own host and
#: the log-ship link between the pair's hosts.
TARGET_STANDBY_HOST = "standby-host"
TARGET_REPLICATION_LINK = "replication-link"


@dataclass(frozen=True)
class FaultloadSpec:
    """How many of each fault category to inject over ``duration``."""

    duration: float = MONTH
    im_outages: int = 5
    im_outage_min: float = 4 * MINUTE
    im_outage_max: float = 103 * MINUTE
    client_logouts: int = 9
    client_hangs: int = 9
    mab_faults: int = 36
    #: Fraction of MAB faults that are hangs (the rest crash outright).
    mab_hang_fraction: float = 0.4
    known_dialogs: int = 6
    unknown_dialogs: int = 2
    power_outages: int = 1
    power_outage_duration: float = 20 * MINUTE
    memory_leaks: int = 2

    def total_faults(self) -> int:
        return (
            self.im_outages
            + self.client_logouts
            + self.client_hangs
            + self.mab_faults
            + self.known_dialogs
            + self.unknown_dialogs
            + self.power_outages
            + self.memory_leaks
        )


def paper_faultload_spec() -> FaultloadSpec:
    """The exact §5 category mix over one month."""
    return FaultloadSpec()


#: Caption/button pairs the IM Manager's monkey thread knows how to click
#: (they must match ``IMManager.CLIENT_DIALOG_RULES``).
KNOWN_DIALOG_CAPTIONS = (
    ("Connection lost", "OK"),
    ("Signed in at another location", "OK"),
    ("IM service unavailable", "Retry"),
)
#: Captions nobody has registered — the paper's two unrecovered failures.
UNKNOWN_DIALOG_CAPTIONS = (
    "MSVCRT.DLL entry point not found",
    "Your trial period has expired",
)


def generate_month_faultload(
    rng: np.random.Generator,
    spec: FaultloadSpec | None = None,
    start: float = DAY,
) -> list[ScheduledFault]:
    """A reproducible fault schedule with the spec's category mix.

    Faults are spread uniformly over ``[start, start + spec.duration)``;
    a one-day head start leaves the system a quiet burn-in period.  A
    zero-duration month degenerates to every fault firing at ``start``;
    since :func:`sorted` is stable, equal-timestamp faults keep the
    generation order (outages, logouts, hangs, MAB faults, dialogs,
    power, leaks) — schedules are ordering-stable under ties.
    """
    if spec is None:
        spec = paper_faultload_spec()
    if spec.duration < 0:
        raise ConfigurationError(
            f"faultload duration must be >= 0, got {spec.duration!r}"
        )
    faults: list[ScheduledFault] = []

    def when() -> float:
        return float(start + rng.uniform(0.0, spec.duration))

    for _ in range(spec.im_outages):
        faults.append(
            ScheduledFault(
                at=when(),
                kind=FaultKind.IM_SERVICE_OUTAGE,
                target=TARGET_IM_SERVICE,
                duration=float(
                    rng.uniform(spec.im_outage_min, spec.im_outage_max)
                ),
            )
        )
    for _ in range(spec.client_logouts):
        faults.append(
            ScheduledFault(
                at=when(), kind=FaultKind.CLIENT_LOGOUT, target=TARGET_IM_CLIENT
            )
        )
    for _ in range(spec.client_hangs):
        faults.append(
            ScheduledFault(
                at=when(), kind=FaultKind.CLIENT_HANG, target=TARGET_IM_CLIENT
            )
        )
    for _ in range(spec.mab_faults):
        hang = rng.random() < spec.mab_hang_fraction
        faults.append(
            ScheduledFault(
                at=when(),
                kind=FaultKind.PROCESS_HANG if hang else FaultKind.PROCESS_CRASH,
                target=TARGET_MAB,
            )
        )
    for index in range(spec.known_dialogs):
        caption, button = KNOWN_DIALOG_CAPTIONS[
            index % len(KNOWN_DIALOG_CAPTIONS)
        ]
        faults.append(
            ScheduledFault(
                at=when(),
                kind=FaultKind.DIALOG_POPUP,
                target=TARGET_SCREEN,
                params={"caption": caption, "button": button},
            )
        )
    for index in range(spec.unknown_dialogs):
        faults.append(
            ScheduledFault(
                at=when(),
                kind=FaultKind.UNKNOWN_DIALOG_POPUP,
                target=TARGET_SCREEN,
                params={
                    "caption": UNKNOWN_DIALOG_CAPTIONS[
                        index % len(UNKNOWN_DIALOG_CAPTIONS)
                    ],
                    "button": "OK",
                },
            )
        )
    for _ in range(spec.power_outages):
        faults.append(
            ScheduledFault(
                at=when(),
                kind=FaultKind.POWER_OUTAGE,
                target=TARGET_HOST,
                duration=spec.power_outage_duration,
            )
        )
    for _ in range(spec.memory_leaks):
        faults.append(
            ScheduledFault(
                at=when(),
                kind=FaultKind.MEMORY_LEAK,
                target=TARGET_MAB,
                params={"megabytes": 300.0},
            )
        )
    return sorted(faults, key=lambda f: f.at)
