"""Synthetic commercial-portal usage log (§1).

"We analyzed a recent one-week usage log from a commercial portal site, and
it showed that on average around 225 thousands of people received around 778
thousands of alerts every day from that site."

The generator reproduces those aggregates: a recipient population whose
per-user alert counts follow a Zipf-like distribution (a few heavy
subscribers, a long tail), a category mix over the portal's alert types, and
diurnal arrival times.  Bench E7 replays scaled-down versions of this log
through real MyAlertBuddies and reports the same per-day aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.clock import DAY
from repro.workloads.arrivals import DiurnalProfile, poisson_arrival_times

#: The paper's headline aggregates: ~225 k *distinct recipients* and ~778 k
#: alerts per day.
PAPER_DAILY_USERS = 225_000
PAPER_DAILY_ALERTS = 778_000

#: Subscriber base calibrated so that, with the default Zipf skew, the
#: expected number of distinct recipients per day is ≈ PAPER_DAILY_USERS
#: (heavy subscribers receive several alerts; many subscribers receive none
#: on a given day).
DEFAULT_SUBSCRIBER_BASE = 252_000

#: Category mix for a general portal (stocks dominate, as §3.3 suggests).
DEFAULT_CATEGORY_WEIGHTS = {
    "Stocks": 0.30,
    "News": 0.20,
    "Sports": 0.15,
    "Weather": 0.12,
    "Financial news": 0.08,
    "Lottery": 0.06,
    "Career": 0.05,
    "Real estate": 0.04,
}


@dataclass(frozen=True)
class LogRecord:
    """One alert delivery in the usage log."""

    at: float
    user_id: int
    category: str


class PortalLogGenerator:
    """Reproducible synthetic portal log.

    ``n_users`` and ``alerts_per_day`` default to the paper's aggregates;
    scale both down proportionally for simulation-sized replays (the
    per-user rate ≈3.46 alerts/day is preserved).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_users: int = DEFAULT_SUBSCRIBER_BASE,
        alerts_per_day: int = PAPER_DAILY_ALERTS,
        category_weights: dict[str, float] | None = None,
        zipf_exponent: float = 2.0,
    ):
        if n_users <= 0 or alerts_per_day <= 0:
            raise ConfigurationError("population and volume must be positive")
        self.rng = rng
        self.n_users = n_users
        self.alerts_per_day = alerts_per_day
        weights = category_weights or DEFAULT_CATEGORY_WEIGHTS
        total = sum(weights.values())
        self.categories = list(weights)
        self._category_p = np.array([w / total for w in weights.values()])
        # Per-user popularity: Zipf-ish weights normalized to a distribution.
        ranks = np.arange(1, n_users + 1, dtype=float)
        user_weights = ranks ** (-1.0 / zipf_exponent)
        self._user_p = user_weights / user_weights.sum()

    @property
    def alerts_per_user_per_day(self) -> float:
        return self.alerts_per_day / self.n_users

    def generate_day(
        self, day_index: int = 0, profile: DiurnalProfile | None = None
    ) -> list[LogRecord]:
        """One simulated day of log records, sorted by time."""
        if profile is None:
            profile = DiurnalProfile.office_hours()
        start = day_index * DAY
        times = poisson_arrival_times(
            self.rng,
            rate=self.alerts_per_day / DAY,
            duration=DAY,
            start=start,
            profile=profile,
        )
        users = self.rng.choice(self.n_users, size=len(times), p=self._user_p)
        categories = self.rng.choice(
            len(self.categories), size=len(times), p=self._category_p
        )
        return [
            LogRecord(
                at=t, user_id=int(u), category=self.categories[int(c)]
            )
            for t, u, c in zip(times, users, categories)
        ]

    def stream_days(self, n_days: int) -> Iterator[list[LogRecord]]:
        for day in range(n_days):
            yield self.generate_day(day)

    @staticmethod
    def daily_summary(records: list[LogRecord]) -> dict[str, float]:
        """The two §1 aggregates plus the per-user mean, for one day."""
        users = {r.user_id for r in records}
        return {
            "alerts": float(len(records)),
            "distinct_users": float(len(users)),
            "alerts_per_user": len(records) / len(users) if users else 0.0,
        }
