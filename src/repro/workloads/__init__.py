"""Workload and faultload generators.

- :mod:`~repro.workloads.arrivals` — Poisson and diurnal arrival processes.
- :mod:`~repro.workloads.portal_log` — synthesizes the commercial-portal
  usage log of §1 (~225 k users, ~778 k alerts/day).
- :mod:`~repro.workloads.faultload` — a one-month fault schedule matching
  the category mix of the paper's §5 recovery log.
"""

from repro.workloads.arrivals import (
    BurstWindow,
    DiurnalProfile,
    poisson_arrival_times,
    storm_arrival_times,
)
from repro.workloads.faultload import (
    FaultloadSpec,
    generate_month_faultload,
    paper_faultload_spec,
)
from repro.workloads.portal_log import LogRecord, PortalLogGenerator

__all__ = [
    "BurstWindow",
    "DiurnalProfile",
    "FaultloadSpec",
    "LogRecord",
    "PortalLogGenerator",
    "generate_month_faultload",
    "paper_faultload_spec",
    "poisson_arrival_times",
    "storm_arrival_times",
]
