"""Arrival processes for alert workloads.

Portal alerts are human-driven: stock alerts cluster around market hours,
sports around evenings.  :class:`DiurnalProfile` modulates a base Poisson
rate over the day; :func:`poisson_arrival_times` produces plain or
modulated arrival sequences via thinning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.clock import time_of_day


@dataclass(frozen=True)
class DiurnalProfile:
    """Hour-of-day rate multipliers (24 values, mean-normalized)."""

    multipliers: tuple[float, ...]

    def __post_init__(self):
        if len(self.multipliers) != 24:
            raise ConfigurationError("need exactly 24 hourly multipliers")
        if any(m < 0 for m in self.multipliers):
            raise ConfigurationError("multipliers must be >= 0")
        if max(self.multipliers) == 0:
            raise ConfigurationError("at least one hour must be active")

    @classmethod
    def flat(cls) -> "DiurnalProfile":
        return cls(multipliers=(1.0,) * 24)

    @classmethod
    def office_hours(cls) -> "DiurnalProfile":
        """Low overnight, ramping through the work day — a portal's shape."""
        shape = [
            0.2, 0.15, 0.1, 0.1, 0.15, 0.3, 0.6, 1.0,
            1.5, 1.8, 1.9, 1.8, 1.6, 1.7, 1.8, 1.7,
            1.5, 1.3, 1.2, 1.1, 0.9, 0.7, 0.5, 0.3,
        ]
        mean = sum(shape) / len(shape)
        return cls(multipliers=tuple(m / mean for m in shape))

    def rate_at(self, now: float, base_rate: float) -> float:
        hour = int(time_of_day(now) // 3600) % 24
        return base_rate * self.multipliers[hour]

    @property
    def peak_multiplier(self) -> float:
        return max(self.multipliers)


@dataclass(frozen=True)
class BurstWindow:
    """One storm burst: an elevated-rate interval inside the run window."""

    start: float
    duration: float
    rate: float

    def __post_init__(self):
        if self.duration <= 0:
            raise ConfigurationError(
                f"burst duration must be > 0, got {self.duration!r}"
            )
        if self.rate < 0:
            raise ConfigurationError(
                f"burst rate must be >= 0, got {self.rate!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


def storm_arrival_times(
    rng: np.random.Generator,
    base_rate: float,
    duration: float,
    bursts: "list[BurstWindow] | tuple[BurstWindow, ...]" = (),
    start: float = 0.0,
) -> list[float]:
    """Alert-storm arrivals: a base Poisson stream plus burst windows.

    Each :class:`BurstWindow` superimposes an *additional* Poisson stream
    at ``burst.rate`` over its interval — the superposition of independent
    Poisson processes is itself Poisson, so inside a burst the effective
    rate is ``base_rate + burst.rate``.  This is the many-sources-at-once
    shape admission control exists for: long polite stretches punctuated
    by bursts one or two orders of magnitude over baseline.
    """
    times = list(poisson_arrival_times(rng, base_rate, duration, start))
    for burst in bursts:
        times.extend(
            poisson_arrival_times(rng, burst.rate, burst.duration, burst.start)
        )
    times.sort()
    return times


def poisson_arrival_times(
    rng: np.random.Generator,
    rate: float,
    duration: float,
    start: float = 0.0,
    profile: DiurnalProfile | None = None,
) -> list[float]:
    """Arrival times in [start, start+duration) at ``rate`` events/second.

    With a profile, uses Lewis-Shedler thinning against the peak rate so the
    result is an exact non-homogeneous Poisson process.
    """
    if rate < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate!r}")
    if duration <= 0 or rate == 0:
        return []
    if profile is None:
        times = []
        t = start
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= start + duration:
                return times
            times.append(t)
    peak = rate * profile.peak_multiplier
    times = []
    t = start
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= start + duration:
            return times
        if rng.random() <= profile.rate_at(t, rate) / peak:
            times.append(t)
