"""Deliberately broken pipeline stages — the oracle's sparring partners.

A delivery oracle that has never caught a real bug is a rubber stamp.
These stage factories plant specific §4.2.1 regressions so the testkit's
own tests (and anyone tuning intensities) can verify the whole chain:
generator finds the triggering interleaving → oracle flags it → shrinker
reduces it to a minimal pinned reproducer.

Each bug is *latent*: on a fault-free run the broken pipeline behaves
identically to the real one, so only the right fault interleaving (e.g.
IM and email both down at routing time) exposes it — exactly the class of
bug random schedule search exists to find.
"""

from __future__ import annotations

from repro.core.pipeline import (
    AggregateStage,
    ClassifyStage,
    FilterStage,
    PipelineContext,
    PipelineStage,
    RetryStage,
    RouteStage,
)


class SilentDropRetryStage(PipelineStage):
    """Regression: total delivery failure is treated as success.

    Identical to :class:`~repro.core.pipeline.RetryStage` while every
    block succeeds; when all of them fail it still journals ``routed``,
    marks the log entry processed and never re-queues — the alert is
    silently gone.  Trips the ``delivered_or_dead_letter`` invariant.
    """

    name = "retry"

    def run(self, ctx: PipelineContext):
        ctx.journal.routed_ids.add(ctx.alert.alert_id)
        if ctx.entry is not None:
            ctx.log.mark_processed(ctx.entry.entry_id)
        ctx.finished = True
        ctx.outcome_kind = "routed"
        ctx.journal.record(
            ctx.env.now, "routed", "silent-drop bug", alert_id=ctx.alert.alert_id
        )
        return
        yield  # pragma: no cover - synchronous stage


class AbandonAmnesiaRetryStage(RetryStage):
    """Regression: giving up without saying so.

    Retries exactly like the real stage, but when attempts are exhausted
    it forgets to journal ``delivery_abandoned`` — the outcome claims
    ``routed``.  The user never got the alert and no dead-letter exists:
    the ``delivered_or_dead_letter`` invariant fires only on schedules
    whose outage outlasts the whole retry chain.
    """

    name = "retry"

    def run(self, ctx: PipelineContext):
        exhausted = (
            ctx.failed_users
            and ctx.incoming.attempts + 1 >= ctx.config.delivery_max_attempts
        )
        if not exhausted:
            yield from super().run(ctx)
            return
        ctx.journal.routed_ids.add(ctx.alert.alert_id)
        if ctx.entry is not None:
            ctx.log.mark_processed(ctx.entry.entry_id)
        ctx.finished = True
        ctx.outcome_kind = "routed"


def silent_drop_stages() -> list[PipelineStage]:
    """§4.2 stages with :class:`SilentDropRetryStage` in the retry slot."""
    return [
        ClassifyStage(),
        AggregateStage(),
        FilterStage(),
        RouteStage(),
        SilentDropRetryStage(),
    ]


def drop_retry_stages() -> list[PipelineStage]:
    """The ISSUE's canonical injected bug: no retry stage at all.

    Routing still happens, but the trip ends unfinished — no terminal
    outcome, the log entry never marked processed.  The oracle flags it
    instantly (``pipeline_terminal`` + ``log_quiescent``), faults or not.
    """
    return [ClassifyStage(), AggregateStage(), FilterStage(), RouteStage()]
