"""Deterministic multiprocessing fan-out for seed sweeps.

Every sweep in this repository — :func:`~repro.testkit.sweep.chaos_sweep`,
the E11 failover acceptance sweep, the A4 farm-throughput sweep — is a map
over independent seeded trials: each trial builds its own
:class:`~repro.sim.kernel.Environment` from its own sub-seed, shares no
state with its siblings, and is bit-for-bit deterministic in isolation.
That makes the fan-out embarrassingly parallel *and* safe: running trials
in worker processes cannot change any trial's result, only the wall-clock
time of the whole sweep.

:func:`fanout` is the one primitive: map a picklable function over a list
of work items with a process pool, returning results **in item order**
(``Pool.map`` semantics — completion order never leaks into the output).
A sweep merged from N workers is therefore byte-identical to the same
sweep run sequentially; ``tests/test_parallel_sweep.py`` pins exactly
that.

``jobs`` resolution: an explicit ``jobs`` argument wins; otherwise the
``REPRO_SWEEP_JOBS`` environment variable (the CI hook — the
benchmark-smoke job runs the whole pytest suite with it set to 2);
otherwise 1 (sequential, in-process, zero multiprocessing overhead).
"""

from __future__ import annotations

import os
from multiprocessing import get_all_start_methods, get_context
from typing import Callable, Iterable, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment hook for routing existing sweep call sites through the pool
#: without threading a parameter through every caller.
JOBS_ENV_VAR = "REPRO_SWEEP_JOBS"


def default_jobs() -> int:
    """Worker count when the caller does not pass ``jobs`` (≥ 1)."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument: None → environment default."""
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    return jobs


def fanout(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
) -> list[R]:
    """Map ``fn`` over ``items``; results come back in item order.

    With ``jobs <= 1`` (or fewer than two items) this is a plain in-process
    loop — the zero-overhead path, and the reference behaviour the parallel
    path must reproduce exactly.  With ``jobs > 1`` the items are spread
    over a process pool, one item per task (``chunksize=1``: trials are
    seconds-long sims, so scheduling overhead is noise and the pool
    load-balances trials of uneven duration).

    ``fn`` and each item/result must be picklable when ``jobs > 1`` (they
    cross a process boundary): module-level functions and plain dataclasses
    qualify, lambdas and closures do not.
    """
    work = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    # Fork keeps worker start cheap and inherits the loaded modules; fall
    # back to spawn where fork is unavailable (Windows, some macOS setups).
    method = "fork" if "fork" in get_all_start_methods() else "spawn"
    context = get_context(method)
    with context.Pool(processes=min(jobs, len(work))) as pool:
        return pool.map(fn, work, chunksize=1)
