"""Deterministic multiprocessing fan-out for seed sweeps.

Every sweep in this repository — :func:`~repro.testkit.sweep.chaos_sweep`,
the E11 failover acceptance sweep, the A4 farm-throughput sweep — is a map
over independent seeded trials: each trial builds its own
:class:`~repro.sim.kernel.Environment` from its own sub-seed, shares no
state with its siblings, and is bit-for-bit deterministic in isolation.
That makes the fan-out embarrassingly parallel *and* safe: running trials
in worker processes cannot change any trial's result, only the wall-clock
time of the whole sweep.

:func:`fanout` is the one primitive: map a picklable function over a list
of work items with a process pool, returning results **in item order**
(``Pool.map`` semantics — completion order never leaks into the output).
A sweep merged from N workers is therefore byte-identical to the same
sweep run sequentially; ``tests/test_parallel_sweep.py`` pins exactly
that.

``jobs`` resolution: an explicit ``jobs`` argument wins; otherwise an
active :func:`sweep_pool` context (persistent workers shared by every
``fanout`` call inside the ``with`` block); otherwise the
``REPRO_SWEEP_JOBS`` environment variable (the CI hook — the
benchmark-smoke job runs the whole pytest suite with it set to 2);
otherwise 1 (sequential, in-process, zero multiprocessing overhead).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from multiprocessing import get_all_start_methods, get_context
from typing import Callable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment hook for routing existing sweep call sites through the pool
#: without threading a parameter through every caller.
JOBS_ENV_VAR = "REPRO_SWEEP_JOBS"


def default_jobs() -> int:
    """Worker count when the caller does not pass ``jobs`` (≥ 1)."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument: None → environment default."""
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    return jobs


def _pool_context():
    """Fork keeps worker start cheap and inherits the loaded modules; fall
    back to spawn where fork is unavailable (Windows, some macOS setups)."""
    method = "fork" if "fork" in get_all_start_methods() else "spawn"
    return get_context(method)


class SweepPool:
    """A reusable process pool for repeated :func:`fanout` calls.

    A one-shot ``Pool`` per ``fanout`` call is the right default for a
    single sweep, but chained sweeps (e10+e11+e12, the e13 comparison, a
    benchmark session) pay fork+import for every call.  A ``SweepPool``
    keeps the workers alive across calls; since every trial is
    self-contained and deterministic, reusing a worker cannot change any
    result — ``tests/test_parallel_sweep.py`` pins bit-identity against
    the one-shot path.

    The underlying pool is created lazily on the first map that needs it
    (``jobs > 1`` and at least two items), so a ``SweepPool(jobs=1)`` —
    the sequential CI configuration — never forks at all.
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)
        self._pool = None
        self._closed = False

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``fanout`` semantics: item order in, item order out."""
        if self._closed:
            raise RuntimeError("sweep pool is closed")
        work = list(items)
        if self.jobs <= 1 or len(work) <= 1:
            return [fn(item) for item in work]
        if self._pool is None:
            self._pool = _pool_context().Pool(processes=self.jobs)
        return self._pool.map(fn, work, chunksize=1)

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: The innermost active :func:`sweep_pool`, consulted by :func:`fanout`
#: when the caller passes ``jobs=None``.
_active_pool: Optional[SweepPool] = None


@contextmanager
def sweep_pool(jobs: Optional[int] = None) -> Iterator[SweepPool]:
    """Share one persistent worker pool across every ``fanout`` inside.

    ::

        with sweep_pool(jobs=4):
            run_chaos_experiment(...)      # all three sweeps reuse the
            run_failover_comparison(...)   # same four workers
            run_storm_comparison(...)

    Call sites that pass an explicit ``jobs`` to ``fanout`` are unaffected
    (an explicit argument always wins); nesting restores the outer pool on
    exit.
    """
    global _active_pool
    pool = SweepPool(jobs)
    previous = _active_pool
    _active_pool = pool
    try:
        yield pool
    finally:
        _active_pool = previous
        pool.close()


def fanout(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
) -> list[R]:
    """Map ``fn`` over ``items``; results come back in item order.

    With ``jobs <= 1`` (or fewer than two items) this is a plain in-process
    loop — the zero-overhead path, and the reference behaviour the parallel
    path must reproduce exactly.  With ``jobs > 1`` the items are spread
    over a process pool, one item per task (``chunksize=1``: trials are
    seconds-long sims, so scheduling overhead is noise and the pool
    load-balances trials of uneven duration).

    With ``jobs=None`` inside an active :func:`sweep_pool` context, the
    call reuses the context's persistent workers instead of building a
    fresh pool.

    ``fn`` and each item/result must be picklable when ``jobs > 1`` (they
    cross a process boundary): module-level functions and plain dataclasses
    qualify, lambdas and closures do not.
    """
    if jobs is None and _active_pool is not None:
        return _active_pool.map(fn, items)
    work = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with _pool_context().Pool(processes=min(jobs, len(work))) as pool:
        return pool.map(fn, work, chunksize=1)
