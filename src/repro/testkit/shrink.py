"""Greedy delta-debugging of failing fault schedules (ddmin).

A random schedule that trips the oracle typically carries dozens of
irrelevant faults.  :func:`shrink` reduces it to a *locally minimal*
failing subsequence: remove any chunk — halves first, then finer
granularity, down to single faults — and keep the removal whenever the
reduced schedule still fails.  The result is what gets pinned as a
regression reproducer (see :mod:`repro.testkit.schedule`).

The predicate is the expensive part (each probe is a full chaos run), so
the shrinker is budgeted: ``max_trials`` caps predicate calls and the
result records whether minimization completed or ran out of budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.failures import ScheduledFault

FailsPredicate = Callable[[list[ScheduledFault]], bool]


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    schedule: list[ScheduledFault]
    original_size: int
    trials: int
    #: True when no single fault can be removed without the failure
    #: disappearing (1-minimal); False when ``max_trials`` ran out first.
    minimal: bool
    #: Sizes after each successful reduction, for forensics.
    steps: list[int] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return self.original_size - len(self.schedule)


def shrink(
    schedule: list[ScheduledFault],
    fails: FailsPredicate,
    max_trials: int = 64,
) -> ShrinkResult:
    """ddmin: reduce ``schedule`` to a minimal subsequence where
    ``fails(subsequence)`` still holds.

    ``fails`` must be deterministic (same schedule → same verdict); chaos
    predicates get that for free from the harness's fixed seed.  The input
    schedule itself is assumed failing — pass only schedules whose full
    run already tripped the oracle.
    """
    current = list(schedule)
    trials = 0
    steps: list[int] = []
    granularity = 2

    while len(current) >= 2 and trials < max_trials:
        chunk = max(1, len(current) // granularity)
        reduced_this_pass = False
        start = 0
        while start < len(current) and trials < max_trials:
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                start += chunk
                continue
            trials += 1
            if fails(candidate):
                current = candidate
                steps.append(len(current))
                reduced_this_pass = True
                granularity = max(granularity - 1, 2)
                # Re-probe from the same offset: the chunk now holds
                # different faults.
            else:
                start += chunk
        if not reduced_this_pass:
            if chunk == 1:
                break  # 1-minimal: no single fault is removable
            granularity = min(granularity * 2, len(current))

    # Final singles pass to a fixed point; 1-minimal only if it completed
    # (every remaining fault probed once, none removable) within budget.
    minimal = len(current) == 1
    progress = True
    while progress and len(current) > 1:
        progress = False
        minimal = True
        for index in range(len(current)):
            if trials >= max_trials:
                minimal = False
                progress = False
                break
            candidate = current[:index] + current[index + 1:]
            trials += 1
            if fails(candidate):
                current = candidate
                steps.append(len(current))
                progress = True
                break
    return ShrinkResult(
        schedule=current,
        original_size=len(schedule),
        trials=trials,
        minimal=minimal,
        steps=steps,
    )
