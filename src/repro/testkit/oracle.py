"""The delivery oracle: end-to-end invariants a chaos run must satisfy.

The §4.2.1 dependability story compresses to a handful of checkable
statements.  The oracle hooks the pipeline (via ``BuddyConfig
.pipeline_observer``) and, after the run quiesces, audits every tenant's
user endpoint, pessimistic log, journal and ack table:

- **delivered-or-dead-letter** — every alert the MAB accepted either
  reached the user's devices or carries an explicit dead-letter outcome
  (``rejected`` / ``unmapped`` / ``filtered`` / ``no_subscribers`` /
  ``delivery_abandoned``).  Silent loss is the one unforgivable outcome.
- **exactly-once** — at most one terminal ``routed`` pipeline trip per
  alert per tenant (the journal's ``routed_ids`` dedup is load-bearing).
- **tenant-isolation** — no user ever receives an alert addressed to a
  different tenant.
- **no-duplicate-acks** — no (peer, seq) is ever acknowledged twice
  (:class:`~repro.core.router.AckTable` classifies every ack; *late* acks
  after an ack-timeout fallback are legal and only reported as info).
- **log-quiescent** — the pessimistic log holds no unprocessed entries
  once the run settles: every crash left nothing behind to replay.
- **replay-idempotent** — re-running recovery over the log would be a
  no-op: every processed entry is either in ``routed_ids`` (replay would
  hit the duplicate-incoming guard) or was explicitly dead-lettered.
- **pipeline-terminal** — every observed trip through the stages finished
  with an outcome.  A trip that ran off the end of the stage list dropped
  its alert on the floor (exactly what a missing RetryStage looks like).

Replicated tenants (a :class:`~repro.core.replication.ReplicatedPair` on
:class:`~repro.core.farm.FarmTenant.pair`) get two more invariants, fed by
the pair's :class:`~repro.core.replication.EpochAudit`:

- **at-most-one-active-epoch** — no ack or routing pass is *initiated*
  under epoch E strictly after a later epoch's promotion.  The guards
  check the fencing service synchronously before recording, so any such
  action means a guard was bypassed — split-brain, not an in-flight
  delivery finishing late.
- **no-fenced-reroute** — an alert routed under two epochs is legal only
  in the partition shape: the old epoch's trip was already in flight
  before the promotion *and* its ``processed`` mark never reached the
  standby before the new epoch re-routed (so the replay was the correct
  call).  Anything else — the mark was shipped yet the new primary routed
  again, or the old primary routed *after* losing the epoch — is a real
  duplicate.  Same-epoch double-routes stay plain ``exactly_once``
  violations.

The classic invariants turn pair-aware too: acks, logs and journals are
audited on *both* sides, and a ``fenced`` outcome (the side refused the
trip and forwarded the alert to the active side) is terminal but is
neither a delivery nor a dead letter.

The adversarial-transport layer (:mod:`repro.core.stabilizing`) adds three
invariants over each pair side's :class:`~repro.core.stabilizing
.TransportAudit`:

- **no-corrupt-accepted** — no receiver ever applied a frame the channel
  corrupted in flight; the stabilizing receiver's checksum rejects it and
  the sender resends.  Any ``corrupt_accepted`` count is a violation.
- **stabilized-exactly-once** — no record was ever applied twice by the
  transport (``duplicate_applied == 0``): duplicate copies the adversary
  injected were dropped at the dedup watermark, not re-applied.
- **convergence-bounded** — after the run settles, every side's unshipped
  queue has drained and no frame needed more than the sender's
  ``resend_limit`` resend rounds: whatever transient garbage the channel
  held, the pair re-converged within the promised bound.

:func:`check_farm_equivalence` is the remaining ISSUE invariant: a
BuddyFarm run must be event-equivalent to the same users run as
independent MABs.  Channel latencies *do* differ (tenants share the
farm's channel RNG streams), so equivalence is asserted on
latency-invariant facts: per-alert outcome kinds and delivered subjects.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.clock import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.farm import BuddyFarm
    from repro.core.pipeline import PipelineContext

#: Journal outcome kinds that explicitly dead-letter an alert: the system
#: decided, on the record, that the user will not get it.
DEAD_LETTER_KINDS = frozenset(
    {"rejected", "unmapped", "filtered", "no_subscribers", "delivery_abandoned"}
)

#: Admission-control terminal kinds (:mod:`repro.core.admission`): the
#: hardening layer decided, on the record, not to deliver this copy —
#: shed/coalesced under storm, rate-limited past the throttle ceiling,
#: suppressed as a duplicate past its dedup key, or parked in the
#: dead-letter queue after the retry budget.  All count as "accounted
#: for" in delivered-or-dead-letter; none may ever be silent.
ADMISSION_TERMINAL_KINDS = frozenset(
    {"shed", "coalesced", "rate_limited", "dedup_suppressed", "dead_lettered"}
)


@dataclass
class ObservedOutcome:
    """One completed pipeline trip, as seen by the oracle's observer."""

    user: str
    alert_id: str
    subject: str
    kind: Optional[str]
    finished: bool
    at: float
    #: Fencing epoch the trip ran under (replicated tenants only).
    epoch: Optional[int] = None


@dataclass
class Violation:
    """One invariant breach (``invariant`` names which)."""

    invariant: str
    detail: str
    user: Optional[str] = None
    alert_id: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.user}]" if self.user else ""
        return f"{self.invariant}{where}: {self.detail}"


@dataclass
class OracleReport:
    """Everything the oracle concluded about one run."""

    checked: dict[str, int] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    #: Legal-but-notable counters (late acks, unsolicited acks, duplicates
    #: discarded at the user) — reported, never asserted on.
    info: dict[str, int] = field(default_factory=dict)
    #: Breaches of the trace-backed invariants
    #: (:mod:`repro.testkit.trace_oracle`) — populated only when the run
    #: traced; kept separate so reports can attribute a failure to the
    #: journal view, the trace view, or both.
    trace_violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.trace_violations

    def summary(self) -> str:
        checked = ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
        if self.ok:
            return f"oracle OK ({checked})"
        total = len(self.violations) + len(self.trace_violations)
        lines = [f"oracle FAILED: {total} violation(s) ({checked})"]
        lines.extend(f"  - {v}" for v in self.violations)
        lines.extend(f"  - {v}" for v in self.trace_violations)
        return "\n".join(lines)


class DeliveryOracle:
    """Observes pipeline outcomes during a run, audits invariants after it."""

    def __init__(self):
        self.observed: list[ObservedOutcome] = []

    # ------------------------------------------------------------------
    # Live capture
    # ------------------------------------------------------------------

    def observer_for(self, user: str) -> Callable[["PipelineContext"], None]:
        """A ``BuddyConfig.pipeline_observer`` recording this user's trips."""

        def observe(ctx: "PipelineContext") -> None:
            self.observed.append(
                ObservedOutcome(
                    user=user,
                    alert_id=ctx.alert.alert_id,
                    subject=ctx.alert.subject,
                    kind=ctx.outcome_kind,
                    finished=ctx.finished,
                    at=ctx.env.now,
                    epoch=getattr(ctx, "epoch", None),
                )
            )

        return observe

    def outcomes_by_user(self) -> dict[str, dict[str, list[ObservedOutcome]]]:
        """user → alert_id → trips, in observation order."""
        table: dict[str, dict[str, list[ObservedOutcome]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for obs in self.observed:
            table[obs.user][obs.alert_id].append(obs)
        return table

    # ------------------------------------------------------------------
    # Post-run audit
    # ------------------------------------------------------------------

    def check(
        self,
        farm: "BuddyFarm",
        offered: Optional[dict[str, set[str]]] = None,
        source_endpoints: Iterable = (),
        trace_sink=None,
    ) -> OracleReport:
        """Audit every invariant against a quiesced farm.

        ``offered`` maps tenant name to the alert ids the workload addressed
        to that tenant — required for the tenant-isolation check, optional
        otherwise.  ``trace_sink`` (a :class:`repro.obs.TraceSink` from a
        traced run) additionally audits the trace-backed invariants into
        ``report.trace_violations``.
        """
        report = OracleReport()
        by_user = self.outcomes_by_user()
        report.checked["tenants"] = len(farm)
        report.checked["observations"] = len(self.observed)
        alerts_checked = 0
        log_entries = 0
        late_acks = 0
        unsolicited_acks = 0
        user_duplicates = 0
        pairs_checked = 0
        promotions = 0
        forwarded = 0
        transport_shipped = 0
        transport_resends = 0
        corrupt_rejected = 0
        duplicate_dropped = 0
        corrupt_accepted = 0
        duplicate_applied = 0
        transport_converged_at = 0.0
        corrupt_discarded = 0
        admission_tenants = 0
        admission_sheds = 0
        admission_suppressed = 0
        admission_dead_letters = 0

        for tenant in farm:
            name = tenant.name
            pair = getattr(tenant, "pair", None)
            if pair is None:
                audited = [("", tenant.deployment)]
            else:
                pairs_checked += 1
                # The first promotion record is the initial epoch grant.
                promotions += len(pair.audit.promotions) - 1
                forwarded += len(pair.audit.forwarded)
                audited = [
                    (side.label, side.deployment) for side in pair.sides()
                ]
                self._check_epoch_fencing(report, pair, name)
                for side in pair.sides():
                    audit = side.transport_audit
                    transport_shipped += audit.shipped
                    transport_resends += audit.resends
                    corrupt_rejected += audit.corrupt_rejected
                    duplicate_dropped += audit.duplicate_dropped
                    corrupt_accepted += audit.corrupt_accepted
                    duplicate_applied += audit.duplicate_applied
                    transport_converged_at = max(
                        transport_converged_at, audit.last_drained_at
                    )
                    self._check_transport(report, side, name)
            corrupt_discarded += tenant.user.corrupt_discarded
            for _, deployment in audited:
                corrupt_discarded += deployment.endpoint.corrupt_discarded
            delivered = tenant.user.unique_alerts_received()
            per_alert = by_user.get(name, {})
            alerts_checked += len(per_alert)
            user_duplicates += tenant.user.duplicates_discarded()

            controller = tenant.deployment.config.admission_controller()
            if controller is not None:
                admission_tenants += 1
                admission_sheds += sum(controller.shed_counts.values())
                admission_dead_letters += len(controller.dead_letters)
                if controller.dedup is not None:
                    admission_suppressed += controller.dedup.suppressed_total
                self._check_admission(
                    report, controller, name, per_alert, audited
                )

            for alert_id, trips in per_alert.items():
                kinds = [t.kind for t in trips]
                # pipeline-terminal: a trip must end with an outcome.
                for trip in trips:
                    if not trip.finished or trip.kind is None:
                        report.violations.append(
                            Violation(
                                "pipeline_terminal",
                                f"trip at t={trip.at:.1f} ended without an "
                                "outcome (alert dropped by the stage list)",
                                user=name,
                                alert_id=alert_id,
                            )
                        )
                # exactly-once: one terminal routed trip per alert.  A
                # replicated pair may legally route under two epochs in
                # the partition shape — judged separately.
                routed = [t for t in trips if t.kind == "routed"]
                if len(routed) > 1:
                    if pair is None:
                        report.violations.append(
                            Violation(
                                "exactly_once",
                                f"{len(routed)} terminal 'routed' trips",
                                user=name,
                                alert_id=alert_id,
                            )
                        )
                    else:
                        self._check_cross_epoch_routes(
                            report, pair, name, alert_id, routed
                        )
                # delivered-or-dead-letter (admission outcomes account too).
                if alert_id in delivered:
                    continue
                if any(
                    k in DEAD_LETTER_KINDS or k in ADMISSION_TERMINAL_KINDS
                    for k in kinds
                ):
                    continue
                report.violations.append(
                    Violation(
                        "delivered_or_dead_letter",
                        f"accepted alert never reached the user and was "
                        f"never dead-lettered (outcomes: {kinds})",
                        user=name,
                        alert_id=alert_id,
                    )
                )

            # tenant-isolation.
            if offered is not None:
                foreign = delivered - offered.get(name, set())
                if foreign:
                    report.violations.append(
                        Violation(
                            "tenant_isolation",
                            f"received {len(foreign)} alert(s) addressed to "
                            "other tenants",
                            user=name,
                        )
                    )

            # A pair shares one logical MAB: either side may have routed
            # an alert, so replay-idempotence reads both journals.
            routed_ids: set[str] = set()
            for _, deployment in audited:
                routed_ids |= set(deployment.journal.routed_ids)

            for side_label, deployment in audited:
                where = f" (side {side_label})" if side_label else ""

                # no-duplicate-acks (MAB side).
                acks = deployment.endpoint.engine.acks
                if acks.duplicate_count:
                    report.violations.append(
                        Violation(
                            "no_duplicate_acks",
                            f"{acks.duplicate_count} duplicate ack(s) at "
                            f"the MAB{where}",
                            user=name,
                        )
                    )
                late_acks += acks.late_count
                unsolicited_acks += acks.unsolicited_count

                # log-quiescent.  For a standby this doubles as the mirror
                # check: an unprocessed mirrored entry after settle is work
                # a promotion would wrongly replay.
                pending = deployment.log.unprocessed()
                if pending:
                    report.violations.append(
                        Violation(
                            "log_quiescent",
                            f"{len(pending)} unprocessed log entr(ies) "
                            f"after settle{where}",
                            user=name,
                        )
                    )

                # replay-idempotent.
                for entry in deployment.log.entries():
                    log_entries += 1
                    if not entry.processed:
                        continue  # already a log_quiescent violation
                    if entry.alert_id in routed_ids:
                        continue  # replay hits the duplicate-incoming guard
                    kinds = [t.kind for t in per_alert.get(entry.alert_id, [])]
                    if any(
                        k in DEAD_LETTER_KINDS or k in ADMISSION_TERMINAL_KINDS
                        for k in kinds
                    ):
                        continue  # replay would deterministically dead-letter
                    report.violations.append(
                        Violation(
                            "replay_idempotent",
                            "processed log entry is neither in routed_ids "
                            f"nor dead-lettered{where} (outcomes: {kinds})",
                            user=name,
                            alert_id=entry.alert_id,
                        )
                    )

        # no-duplicate-acks (source side: sources wait on MAB acks).
        for endpoint in source_endpoints:
            acks = endpoint.engine.acks
            if acks.duplicate_count:
                report.violations.append(
                    Violation(
                        "no_duplicate_acks",
                        f"{acks.duplicate_count} duplicate ack(s) at source "
                        f"{endpoint.name}",
                    )
                )
            late_acks += acks.late_count
            unsolicited_acks += acks.unsolicited_count

        report.checked["alerts"] = alerts_checked
        report.checked["log_entries"] = log_entries
        if pairs_checked:
            report.checked["pairs"] = pairs_checked
            report.checked["promotions"] = promotions
            report.checked["transport_shipped"] = transport_shipped
            report.info["forwarded_by_fenced"] = forwarded
            report.info["transport_resends"] = transport_resends
            report.info["corrupt_rejected"] = corrupt_rejected
            report.info["duplicate_dropped"] = duplicate_dropped
            report.info["corrupt_accepted"] = corrupt_accepted
            report.info["duplicate_applied"] = duplicate_applied
            #: Sim time the unshipped queues last drained — the E14
            #: convergence figure (bounded lag past the fault window).
            report.info["transport_converged_at"] = transport_converged_at
        report.info["corrupt_discarded"] = corrupt_discarded
        report.info["late_acks"] = late_acks
        report.info["unsolicited_acks"] = unsolicited_acks
        report.info["user_duplicates_discarded"] = user_duplicates
        if admission_tenants:
            report.checked["admission_tenants"] = admission_tenants
            report.info["admission_sheds"] = admission_sheds
            report.info["admission_suppressed"] = admission_suppressed
            report.info["admission_dead_letters"] = admission_dead_letters

        if trace_sink is not None:
            from repro.testkit.trace_oracle import check_trace

            trace_checked, trace_violations = check_trace(trace_sink)
            report.checked.update(trace_checked)
            report.trace_violations.extend(trace_violations)
        return report

    # ------------------------------------------------------------------
    # Admission invariants (traffic hardening)
    # ------------------------------------------------------------------

    #: Fairness audit cap: buckets log up to 64k grants; auditing the most
    #: recent window this size keeps the check O(n²) only at test scale.
    _FAIRNESS_AUDIT_CAP = 2000

    def _check_admission(
        self, report: OracleReport, controller, user: str, per_alert, audited
    ) -> None:
        """Audit one hardened tenant's admission layer.

        - **every-shed-is-journalled** — each drop the controller decided
          (shed / coalesced / rate-limited) has exactly one matching
          journal outcome; a count mismatch means a silent drop (or a
          journal entry nobody decided).  Dedup suppressions are held to
          the same standard.
        - **no-duplicate-past-dedup** — every suppression matched a key a
          real prior delivery marked, and no alert with a suppressed copy
          was terminally routed more than once.
        - **rate-limit-fairness** — for every token bucket, the grants
          inside *any* time interval ``W`` never exceed
          ``burst + rate × W``; audited pairwise over the grant log.
        """
        journal_counts: dict[str, int] = {}
        for kind in ("shed", "coalesced", "rate_limited", "dedup_suppressed"):
            journal_counts[kind] = sum(
                deployment.journal.count(kind) for _, deployment in audited
            )
        for kind in ("shed", "coalesced", "rate_limited"):
            decided = controller.shed_counts.get(kind, 0)
            if decided != journal_counts[kind]:
                report.violations.append(
                    Violation(
                        "every_shed_is_journalled",
                        f"controller decided {decided} '{kind}' drop(s) but "
                        f"the journal records {journal_counts[kind]}",
                        user=user,
                    )
                )
        dedup = controller.dedup
        if dedup is not None:
            if dedup.suppressed_total != journal_counts["dedup_suppressed"]:
                report.violations.append(
                    Violation(
                        "every_shed_is_journalled",
                        f"{dedup.suppressed_total} dedup suppression(s) but "
                        f"the journal records "
                        f"{journal_counts['dedup_suppressed']}",
                        user=user,
                    )
                )
            for key, at in dedup.suppressed:
                if key not in dedup.ever_marked:
                    report.violations.append(
                        Violation(
                            "no_duplicate_past_dedup",
                            f"suppressed key {key!r} at t={at:.1f} was "
                            "never marked by a terminal delivery",
                            user=user,
                        )
                    )
            for alert_id, trips in per_alert.items():
                kinds = [t.kind for t in trips]
                if "dedup_suppressed" in kinds and kinds.count("routed") > 1:
                    report.violations.append(
                        Violation(
                            "no_duplicate_past_dedup",
                            f"alert was routed {kinds.count('routed')} times "
                            "despite a dedup suppression",
                            user=user,
                            alert_id=alert_id,
                        )
                    )
        for bucket in controller.all_buckets():
            grants = list(bucket.grants)[-self._FAIRNESS_AUDIT_CAP:]
            report.checked["buckets"] = report.checked.get("buckets", 0) + 1
            violated = False
            for i in range(len(grants)):
                for j in range(i + 1, len(grants)):
                    allowed = bucket.burst + bucket.rate * (
                        grants[j] - grants[i]
                    )
                    if (j - i + 1) > allowed + 1e-9:
                        report.violations.append(
                            Violation(
                                "rate_limit_fairness",
                                f"bucket {bucket.name!r} granted {j - i + 1} "
                                f"tokens in {grants[j] - grants[i]:.2f}s "
                                f"(allowed {allowed:.2f})",
                                user=user,
                            )
                        )
                        violated = True
                        break
                if violated:
                    break

    # ------------------------------------------------------------------
    # Stabilizing-transport invariants
    # ------------------------------------------------------------------

    @staticmethod
    def _check_transport(report: OracleReport, side, user: str) -> None:
        """Audit one pair side's record transport after the run settles.

        ``no_corrupt_accepted`` and ``stabilized_exactly_once`` hold by
        construction under the stabilizing transport and are exactly the
        counters the naive baseline accumulates under an adversary — the
        oracle is what makes E14's ablation a pass/fail statement.
        ``convergence_bounded`` is the self-stabilization promise: the
        unshipped queue drained (when shipping was possible at settle) and
        no single ship spun past its structural ceiling of
        ``resend_limit + 1`` rounds.  A give-up *at* the ceiling is the
        designed escape hatch — the record goes back to the caller's queue
        under a fresh sequence number — so only a resend loop that kept
        going beyond its budget is a violation.
        """
        audit = side.transport_audit
        where = f"side {side.label}"
        if audit.corrupt_accepted:
            report.violations.append(
                Violation(
                    "no_corrupt_accepted",
                    f"{audit.corrupt_accepted} corrupt frame(s) applied at "
                    f"{where}",
                    user=user,
                )
            )
        if audit.duplicate_applied:
            report.violations.append(
                Violation(
                    "stabilized_exactly_once",
                    f"{audit.duplicate_applied} duplicate frame(s) "
                    f"re-applied at {where}",
                    user=user,
                )
            )
        limit = getattr(side.tx, "resend_limit", None)
        if limit is not None and audit.max_resend_rounds > limit + 1:
            report.violations.append(
                Violation(
                    "convergence_bounded",
                    f"a frame took {audit.max_resend_rounds} resend rounds "
                    f"(ceiling {limit + 1}) at {where}",
                    user=user,
                )
            )
        # Queue-drained only binds when shipping was possible at settle:
        # a run ending with the peer crashed or the link down legitimately
        # leaves records queued (the flush loop retries forever).
        peer = side.peer
        shippable = (
            side.host.up
            and peer.host.up
            and side.pair.link.usable(toward=peer.host)
        )
        if side.unshipped and shippable:
            report.violations.append(
                Violation(
                    "convergence_bounded",
                    f"{len(side.unshipped)} record(s) still unshipped after "
                    f"settle at {where}",
                    user=user,
                )
            )

    # ------------------------------------------------------------------
    # Replication invariants
    # ------------------------------------------------------------------

    @staticmethod
    def _check_epoch_fencing(report: OracleReport, pair, user: str) -> None:
        """``at_most_one_active_epoch``: no initiation under a stale epoch.

        Guards consult the fencing service synchronously *before* the
        audit record is written, so an ack/route recorded under epoch E
        strictly after a later epoch's promotion means a guard was
        bypassed.  Same-instant records are legal (the promotion and the
        action raced within one kernel timestep).
        """
        audit = pair.audit
        offending = []
        for action in audit.actions:
            if action.kind not in ("ack", "route"):
                continue
            for promo in audit.promotions:
                if promo.epoch > action.epoch and action.at > promo.at:
                    offending.append((action, promo))
                    break
        if offending:
            action, promo = offending[0]
            report.violations.append(
                Violation(
                    "at_most_one_active_epoch",
                    f"{len(offending)} action(s) initiated under a fenced "
                    f"epoch, e.g. '{action.kind}' under epoch "
                    f"{action.epoch} at t={action.at:.1f} after epoch "
                    f"{promo.epoch} promoted at t={promo.at:.1f}",
                    user=user,
                )
            )

    @staticmethod
    def _check_cross_epoch_routes(
        report: OracleReport,
        pair,
        user: str,
        alert_id: str,
        routed: list[ObservedOutcome],
    ) -> None:
        """Judge an alert with multiple terminal 'routed' trips on a pair.

        Legal only as the partition carve-out: for each epoch step the
        earlier epoch's routing pass was initiated *before* the later
        epoch's promotion (the trip was in flight when the primary lost
        the lease), and the alert's ``processed`` mark never reached the
        standby before the later epoch re-routed (so the mirrored entry
        was still unprocessed and the replay was correct).
        """
        audit = pair.audit
        by_epoch: dict[Optional[int], int] = defaultdict(int)
        for trip in routed:
            by_epoch[trip.epoch] += 1
        for epoch, count in sorted(
            by_epoch.items(), key=lambda item: (item[0] is None, item[0])
        ):
            if count > 1 or epoch is None:
                report.violations.append(
                    Violation(
                        "exactly_once",
                        f"{count} terminal 'routed' trips under epoch "
                        f"{epoch}",
                        user=user,
                        alert_id=alert_id,
                    )
                )
        epochs = sorted(e for e in by_epoch if e is not None)
        route_at = {
            epoch: min(
                (
                    a.at
                    for a in audit.actions
                    if a.kind == "route"
                    and a.alert_id == alert_id
                    and a.epoch == epoch
                ),
                default=None,
            )
            for epoch in epochs
        }
        for earlier, later in zip(epochs, epochs[1:]):
            promoted_at = audit.promotion_at(later)
            earlier_at = route_at[earlier]
            later_at = route_at[later]
            if promoted_at is None or earlier_at is None or later_at is None:
                report.violations.append(
                    Violation(
                        "no_fenced_reroute",
                        f"routed under epochs {earlier} and {later} but "
                        "the audit trail is missing the promotion or a "
                        "route initiation record",
                        user=user,
                        alert_id=alert_id,
                    )
                )
                continue
            if earlier_at >= promoted_at:
                report.violations.append(
                    Violation(
                        "no_fenced_reroute",
                        f"epoch-{earlier} route initiated at "
                        f"t={earlier_at:.1f}, after epoch {later} promoted "
                        f"at t={promoted_at:.1f}",
                        user=user,
                        alert_id=alert_id,
                    )
                )
            elif audit.mark_shipped_before(alert_id, later_at):
                report.violations.append(
                    Violation(
                        "no_fenced_reroute",
                        f"epoch {later} re-routed at t={later_at:.1f} an "
                        "alert whose 'processed' mark had already reached "
                        "the standby",
                        user=user,
                        alert_id=alert_id,
                    )
                )


# ----------------------------------------------------------------------
# Farm-vs-solo event equivalence
# ----------------------------------------------------------------------


@dataclass
class EquivalenceReport:
    """Did a farm run match the same users run as independent MABs?"""

    users: int
    mismatches: list[str] = field(default_factory=list)
    farm_outcomes: dict[str, dict[str, tuple]] = field(default_factory=dict)
    solo_outcomes: dict[str, dict[str, tuple]] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


#: The scripted keyword cycle: routed, unmapped, no_subscribers, rejected.
_SCRIPT_KEYWORDS = ("News", "Gossip", "Weather", "News")


def _configure_deployment(deployment, user) -> None:
    """Identical per-user configuration for farm and solo worlds."""
    config = deployment.config
    config.classifier.accept_source("portal")
    # A mapped category nobody subscribes to → deterministic no_subscribers.
    config.subscriptions.register_category("Weather")
    config.aggregator.map_keyword("Weather", "Weather")


def _scripted_emission(env, source, stranger, books, alerts_per_user: int):
    """Emit the same per-user script in either world (generator process).

    ``books`` maps user name → source-facing address book.  Every 4th alert
    comes from the unaccepted ``stranger`` source → ``rejected``.
    """
    sent: dict[str, dict[str, str]] = {name: {} for name in books}
    for index in range(alerts_per_user):
        keyword = _SCRIPT_KEYWORDS[index % len(_SCRIPT_KEYWORDS)]
        emitter = stranger if index % 4 == 3 else source
        for name, book in books.items():
            alert, _ = emitter.emit_to(book, keyword, f"a{index}", "body")
            sent[name][alert.alert_id] = alert.subject
        yield env.timeout(20.0)
    return sent


def _final_outcomes(
    oracle: DeliveryOracle, name: str, id_to_subject: dict[str, str]
) -> dict[str, tuple]:
    """subject → sorted tuple of outcome kinds for one user."""
    result: dict[str, tuple] = {}
    for alert_id, trips in oracle.outcomes_by_user().get(name, {}).items():
        subject = id_to_subject.get(alert_id, alert_id)
        result[subject] = tuple(sorted(t.kind or "(none)" for t in trips))
    return result


def _delivered_subjects(user, id_to_subject: dict[str, str]) -> set[str]:
    return {
        id_to_subject.get(alert_id, alert_id)
        for alert_id in user.unique_alerts_received()
    }


def check_farm_equivalence(
    n_users: int = 3,
    seed: int = 7,
    alerts_per_user: int = 8,
    settle: float = 3 * MINUTE,
) -> EquivalenceReport:
    """Run one scripted workload farm-wide and solo, compare per-user events.

    Determinism by name-keyed RNG streams makes this meaningful: user
    ``user0``'s reaction/buddy streams are identical in both worlds, so any
    divergence in outcome kinds or delivered subjects is a farm bug, not
    noise.  Channel latency streams *are* shared farm-wide, so wall-clock
    timings legitimately differ and are not compared.
    """
    from repro.core.farm import FarmProfile
    from repro.world import SimbaWorld, WorldConfig

    horizon = alerts_per_user * 20.0 + settle
    report = EquivalenceReport(users=n_users)

    # --- farm world -----------------------------------------------------
    world = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
    farm = world.create_farm(
        shards=4,
        profile=FarmProfile(categories=("News",), accept_sources=("portal",)),
    )
    tenants = farm.add_users(n_users)
    farm_oracle = DeliveryOracle()
    for tenant in tenants:
        _configure_deployment(tenant.deployment, tenant.user)
        tenant.deployment.config.pipeline_observer = farm_oracle.observer_for(
            tenant.name
        )
    farm.launch_all()
    source = world.create_source("portal")
    stranger = world.create_source("stranger")
    books = {tenant.name: tenant.book for tenant in tenants}
    farm_sent: dict[str, dict[str, str]] = {}

    def farm_script(env):
        sent = yield from _scripted_emission(
            env, source, stranger, books, alerts_per_user
        )
        farm_sent.update(sent)

    world.env.process(farm_script(world.env), name="equivalence-script")
    world.run(until=horizon)

    for tenant in tenants:
        report.farm_outcomes[tenant.name] = _final_outcomes(
            farm_oracle, tenant.name, farm_sent.get(tenant.name, {})
        )

    farm_delivered = {
        tenant.name: _delivered_subjects(
            tenant.user, farm_sent.get(tenant.name, {})
        )
        for tenant in tenants
    }

    # --- one solo world per user ---------------------------------------
    for index in range(n_users):
        name = f"user{index}"
        solo = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
        user = solo.create_user(name)
        deployment = solo.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        _configure_deployment(deployment, user)
        solo_oracle = DeliveryOracle()
        deployment.config.pipeline_observer = solo_oracle.observer_for(name)
        deployment.launch()
        solo_source = solo.create_source("portal")
        solo_stranger = solo.create_source("stranger")
        solo_books = {name: deployment.source_facing_book()}
        solo_sent: dict[str, dict[str, str]] = {}

        def solo_script(env, src=solo_source, strg=solo_stranger,
                        bks=solo_books, out=solo_sent):
            sent = yield from _scripted_emission(
                env, src, strg, bks, alerts_per_user
            )
            out.update(sent)

        solo.env.process(solo_script(solo.env), name="equivalence-script")
        solo.run(until=horizon)

        solo_final = _final_outcomes(solo_oracle, name, solo_sent.get(name, {}))
        report.solo_outcomes[name] = solo_final
        if solo_final != report.farm_outcomes.get(name):
            report.mismatches.append(
                f"{name}: outcome kinds differ — farm "
                f"{report.farm_outcomes.get(name)} vs solo {solo_final}"
            )
        solo_delivered = _delivered_subjects(user, solo_sent.get(name, {}))
        if solo_delivered != farm_delivered.get(name):
            report.mismatches.append(
                f"{name}: delivered subjects differ — farm "
                f"{sorted(farm_delivered.get(name, set()))} vs solo "
                f"{sorted(solo_delivered)}"
            )
    return report


# ----------------------------------------------------------------------
# Shard-count invariance
# ----------------------------------------------------------------------


def check_shard_count_invariance(
    results=None,
    shard_counts: tuple[int, ...] = (1, 2),
    *,
    population: int = 48,
    seed: int = 7,
    duration: float = 120.0,
    epoch: float = 30.0,
    drain: float = 120.0,
    workload_kwargs: Optional[dict] = None,
    inline: bool = True,
) -> OracleReport:
    """Audit that a sharded run's results do not depend on the shard count.

    The determinism contract of :mod:`repro.core.shard` — placement,
    per-tenant streams and bridge timestamps are all pure functions of seed
    and tenant name — promises that partitioning the tenant set differently
    only changes *where* work runs, never *what* happens.  This oracle pins
    the promise: the merged journal fingerprint, aggregate counts and
    receipt totals must be bit-identical across every layout.

    Pass ``results`` (a list of
    :class:`~repro.experiments.sharded.ShardedRunResult`, e.g. the ones an
    e13 sweep just measured) to audit existing runs; otherwise the oracle
    runs its own small inline comparison over ``shard_counts``.
    """
    report = OracleReport()
    if results is None:
        from repro.experiments.sharded import run_sharded_throughput

        results = [
            run_sharded_throughput(
                shards=count,
                users=population,
                seed=seed,
                duration=duration,
                epoch=epoch,
                drain=drain,
                workload_kwargs=workload_kwargs,
                inline=inline,
            )
            for count in shard_counts
        ]
    report.checked["shard_layouts"] = len(results)
    if not results:
        report.violations.append(
            Violation("shard_count_invariance", "no sharded runs to compare")
        )
        return report
    reference = results[0]
    report.checked["tenants"] = reference.tenants
    report.info["receipts"] = reference.receipts
    for other in results[1:]:
        label = f"shards={other.shards} vs shards={reference.shards}"
        if other.merged_fingerprint != reference.merged_fingerprint:
            report.violations.append(
                Violation(
                    "shard_count_invariance",
                    f"{label}: merged journal fingerprint "
                    f"{other.merged_fingerprint[:16]} != "
                    f"{reference.merged_fingerprint[:16]}",
                )
            )
        if dict(other.counts) != dict(reference.counts):
            report.violations.append(
                Violation(
                    "shard_count_invariance",
                    f"{label}: aggregate counts differ — "
                    f"{dict(other.counts)} != {dict(reference.counts)}",
                )
            )
        if other.receipts != reference.receipts:
            report.violations.append(
                Violation(
                    "shard_count_invariance",
                    f"{label}: receipt totals differ — "
                    f"{other.receipts} != {reference.receipts}",
                )
            )
        if other.tenants != reference.tenants:
            report.violations.append(
                Violation(
                    "shard_count_invariance",
                    f"{label}: materialized tenant counts differ — "
                    f"{other.tenants} != {reference.tenants}",
                )
            )
    return report
