"""The delivery oracle: end-to-end invariants a chaos run must satisfy.

The §4.2.1 dependability story compresses to a handful of checkable
statements.  The oracle hooks the pipeline (via ``BuddyConfig
.pipeline_observer``) and, after the run quiesces, audits every tenant's
user endpoint, pessimistic log, journal and ack table:

- **delivered-or-dead-letter** — every alert the MAB accepted either
  reached the user's devices or carries an explicit dead-letter outcome
  (``rejected`` / ``unmapped`` / ``filtered`` / ``no_subscribers`` /
  ``delivery_abandoned``).  Silent loss is the one unforgivable outcome.
- **exactly-once** — at most one terminal ``routed`` pipeline trip per
  alert per tenant (the journal's ``routed_ids`` dedup is load-bearing).
- **tenant-isolation** — no user ever receives an alert addressed to a
  different tenant.
- **no-duplicate-acks** — no (peer, seq) is ever acknowledged twice
  (:class:`~repro.core.router.AckTable` classifies every ack; *late* acks
  after an ack-timeout fallback are legal and only reported as info).
- **log-quiescent** — the pessimistic log holds no unprocessed entries
  once the run settles: every crash left nothing behind to replay.
- **replay-idempotent** — re-running recovery over the log would be a
  no-op: every processed entry is either in ``routed_ids`` (replay would
  hit the duplicate-incoming guard) or was explicitly dead-lettered.
- **pipeline-terminal** — every observed trip through the stages finished
  with an outcome.  A trip that ran off the end of the stage list dropped
  its alert on the floor (exactly what a missing RetryStage looks like).

:func:`check_farm_equivalence` is the remaining ISSUE invariant: a
BuddyFarm run must be event-equivalent to the same users run as
independent MABs.  Channel latencies *do* differ (tenants share the
farm's channel RNG streams), so equivalence is asserted on
latency-invariant facts: per-alert outcome kinds and delivered subjects.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.clock import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.farm import BuddyFarm
    from repro.core.pipeline import PipelineContext

#: Journal outcome kinds that explicitly dead-letter an alert: the system
#: decided, on the record, that the user will not get it.
DEAD_LETTER_KINDS = frozenset(
    {"rejected", "unmapped", "filtered", "no_subscribers", "delivery_abandoned"}
)


@dataclass
class ObservedOutcome:
    """One completed pipeline trip, as seen by the oracle's observer."""

    user: str
    alert_id: str
    subject: str
    kind: Optional[str]
    finished: bool
    at: float


@dataclass
class Violation:
    """One invariant breach (``invariant`` names which)."""

    invariant: str
    detail: str
    user: Optional[str] = None
    alert_id: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.user}]" if self.user else ""
        return f"{self.invariant}{where}: {self.detail}"


@dataclass
class OracleReport:
    """Everything the oracle concluded about one run."""

    checked: dict[str, int] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    #: Legal-but-notable counters (late acks, unsolicited acks, duplicates
    #: discarded at the user) — reported, never asserted on.
    info: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        checked = ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
        if self.ok:
            return f"oracle OK ({checked})"
        lines = [f"oracle FAILED: {len(self.violations)} violation(s) ({checked})"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


class DeliveryOracle:
    """Observes pipeline outcomes during a run, audits invariants after it."""

    def __init__(self):
        self.observed: list[ObservedOutcome] = []

    # ------------------------------------------------------------------
    # Live capture
    # ------------------------------------------------------------------

    def observer_for(self, user: str) -> Callable[["PipelineContext"], None]:
        """A ``BuddyConfig.pipeline_observer`` recording this user's trips."""

        def observe(ctx: "PipelineContext") -> None:
            self.observed.append(
                ObservedOutcome(
                    user=user,
                    alert_id=ctx.alert.alert_id,
                    subject=ctx.alert.subject,
                    kind=ctx.outcome_kind,
                    finished=ctx.finished,
                    at=ctx.env.now,
                )
            )

        return observe

    def outcomes_by_user(self) -> dict[str, dict[str, list[ObservedOutcome]]]:
        """user → alert_id → trips, in observation order."""
        table: dict[str, dict[str, list[ObservedOutcome]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for obs in self.observed:
            table[obs.user][obs.alert_id].append(obs)
        return table

    # ------------------------------------------------------------------
    # Post-run audit
    # ------------------------------------------------------------------

    def check(
        self,
        farm: "BuddyFarm",
        offered: Optional[dict[str, set[str]]] = None,
        source_endpoints: Iterable = (),
    ) -> OracleReport:
        """Audit every invariant against a quiesced farm.

        ``offered`` maps tenant name to the alert ids the workload addressed
        to that tenant — required for the tenant-isolation check, optional
        otherwise.
        """
        report = OracleReport()
        by_user = self.outcomes_by_user()
        report.checked["tenants"] = len(farm)
        report.checked["observations"] = len(self.observed)
        alerts_checked = 0
        log_entries = 0
        late_acks = 0
        unsolicited_acks = 0
        user_duplicates = 0

        for tenant in farm:
            name = tenant.name
            delivered = tenant.user.unique_alerts_received()
            per_alert = by_user.get(name, {})
            alerts_checked += len(per_alert)
            user_duplicates += tenant.user.duplicates_discarded()

            for alert_id, trips in per_alert.items():
                kinds = [t.kind for t in trips]
                # pipeline-terminal: a trip must end with an outcome.
                for trip in trips:
                    if not trip.finished or trip.kind is None:
                        report.violations.append(
                            Violation(
                                "pipeline_terminal",
                                f"trip at t={trip.at:.1f} ended without an "
                                "outcome (alert dropped by the stage list)",
                                user=name,
                                alert_id=alert_id,
                            )
                        )
                # exactly-once: one terminal routed trip per alert.
                routed_trips = sum(1 for k in kinds if k == "routed")
                if routed_trips > 1:
                    report.violations.append(
                        Violation(
                            "exactly_once",
                            f"{routed_trips} terminal 'routed' trips",
                            user=name,
                            alert_id=alert_id,
                        )
                    )
                # delivered-or-dead-letter.
                if alert_id in delivered:
                    continue
                if any(k in DEAD_LETTER_KINDS for k in kinds):
                    continue
                report.violations.append(
                    Violation(
                        "delivered_or_dead_letter",
                        f"accepted alert never reached the user and was "
                        f"never dead-lettered (outcomes: {kinds})",
                        user=name,
                        alert_id=alert_id,
                    )
                )

            # tenant-isolation.
            if offered is not None:
                foreign = delivered - offered.get(name, set())
                if foreign:
                    report.violations.append(
                        Violation(
                            "tenant_isolation",
                            f"received {len(foreign)} alert(s) addressed to "
                            "other tenants",
                            user=name,
                        )
                    )

            # no-duplicate-acks (MAB side).
            acks = tenant.deployment.endpoint.engine.acks
            if acks.duplicate_count:
                report.violations.append(
                    Violation(
                        "no_duplicate_acks",
                        f"{acks.duplicate_count} duplicate ack(s) at the MAB",
                        user=name,
                    )
                )
            late_acks += acks.late_count
            unsolicited_acks += acks.unsolicited_count

            # log-quiescent.
            pending = tenant.deployment.log.unprocessed()
            if pending:
                report.violations.append(
                    Violation(
                        "log_quiescent",
                        f"{len(pending)} unprocessed log entr(ies) after "
                        "settle",
                        user=name,
                    )
                )

            # replay-idempotent.
            journal = tenant.deployment.journal
            for entry in tenant.deployment.log.entries():
                log_entries += 1
                if not entry.processed:
                    continue  # already a log_quiescent violation
                if entry.alert_id in journal.routed_ids:
                    continue  # replay would hit the duplicate-incoming guard
                kinds = [t.kind for t in per_alert.get(entry.alert_id, [])]
                if any(k in DEAD_LETTER_KINDS for k in kinds):
                    continue  # replay would deterministically dead-letter
                report.violations.append(
                    Violation(
                        "replay_idempotent",
                        "processed log entry is neither in routed_ids nor "
                        f"dead-lettered (outcomes: {kinds})",
                        user=name,
                        alert_id=entry.alert_id,
                    )
                )

        # no-duplicate-acks (source side: sources wait on MAB acks).
        for endpoint in source_endpoints:
            acks = endpoint.engine.acks
            if acks.duplicate_count:
                report.violations.append(
                    Violation(
                        "no_duplicate_acks",
                        f"{acks.duplicate_count} duplicate ack(s) at source "
                        f"{endpoint.name}",
                    )
                )
            late_acks += acks.late_count
            unsolicited_acks += acks.unsolicited_count

        report.checked["alerts"] = alerts_checked
        report.checked["log_entries"] = log_entries
        report.info["late_acks"] = late_acks
        report.info["unsolicited_acks"] = unsolicited_acks
        report.info["user_duplicates_discarded"] = user_duplicates
        return report


# ----------------------------------------------------------------------
# Farm-vs-solo event equivalence
# ----------------------------------------------------------------------


@dataclass
class EquivalenceReport:
    """Did a farm run match the same users run as independent MABs?"""

    users: int
    mismatches: list[str] = field(default_factory=list)
    farm_outcomes: dict[str, dict[str, tuple]] = field(default_factory=dict)
    solo_outcomes: dict[str, dict[str, tuple]] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


#: The scripted keyword cycle: routed, unmapped, no_subscribers, rejected.
_SCRIPT_KEYWORDS = ("News", "Gossip", "Weather", "News")


def _configure_deployment(deployment, user) -> None:
    """Identical per-user configuration for farm and solo worlds."""
    config = deployment.config
    config.classifier.accept_source("portal")
    # A mapped category nobody subscribes to → deterministic no_subscribers.
    config.subscriptions.register_category("Weather")
    config.aggregator.map_keyword("Weather", "Weather")


def _scripted_emission(env, source, stranger, books, alerts_per_user: int):
    """Emit the same per-user script in either world (generator process).

    ``books`` maps user name → source-facing address book.  Every 4th alert
    comes from the unaccepted ``stranger`` source → ``rejected``.
    """
    sent: dict[str, dict[str, str]] = {name: {} for name in books}
    for index in range(alerts_per_user):
        keyword = _SCRIPT_KEYWORDS[index % len(_SCRIPT_KEYWORDS)]
        emitter = stranger if index % 4 == 3 else source
        for name, book in books.items():
            alert, _ = emitter.emit_to(book, keyword, f"a{index}", "body")
            sent[name][alert.alert_id] = alert.subject
        yield env.timeout(20.0)
    return sent


def _final_outcomes(
    oracle: DeliveryOracle, name: str, id_to_subject: dict[str, str]
) -> dict[str, tuple]:
    """subject → sorted tuple of outcome kinds for one user."""
    result: dict[str, tuple] = {}
    for alert_id, trips in oracle.outcomes_by_user().get(name, {}).items():
        subject = id_to_subject.get(alert_id, alert_id)
        result[subject] = tuple(sorted(t.kind or "(none)" for t in trips))
    return result


def _delivered_subjects(user, id_to_subject: dict[str, str]) -> set[str]:
    return {
        id_to_subject.get(alert_id, alert_id)
        for alert_id in user.unique_alerts_received()
    }


def check_farm_equivalence(
    n_users: int = 3,
    seed: int = 7,
    alerts_per_user: int = 8,
    settle: float = 3 * MINUTE,
) -> EquivalenceReport:
    """Run one scripted workload farm-wide and solo, compare per-user events.

    Determinism by name-keyed RNG streams makes this meaningful: user
    ``user0``'s reaction/buddy streams are identical in both worlds, so any
    divergence in outcome kinds or delivered subjects is a farm bug, not
    noise.  Channel latency streams *are* shared farm-wide, so wall-clock
    timings legitimately differ and are not compared.
    """
    from repro.core.farm import FarmProfile
    from repro.world import SimbaWorld, WorldConfig

    horizon = alerts_per_user * 20.0 + settle
    report = EquivalenceReport(users=n_users)

    # --- farm world -----------------------------------------------------
    world = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
    farm = world.create_farm(
        shards=4,
        profile=FarmProfile(categories=("News",), accept_sources=("portal",)),
    )
    tenants = farm.add_users(n_users)
    farm_oracle = DeliveryOracle()
    for tenant in tenants:
        _configure_deployment(tenant.deployment, tenant.user)
        tenant.deployment.config.pipeline_observer = farm_oracle.observer_for(
            tenant.name
        )
    farm.launch_all()
    source = world.create_source("portal")
    stranger = world.create_source("stranger")
    books = {tenant.name: tenant.book for tenant in tenants}
    farm_sent: dict[str, dict[str, str]] = {}

    def farm_script(env):
        sent = yield from _scripted_emission(
            env, source, stranger, books, alerts_per_user
        )
        farm_sent.update(sent)

    world.env.process(farm_script(world.env), name="equivalence-script")
    world.run(until=horizon)

    for tenant in tenants:
        report.farm_outcomes[tenant.name] = _final_outcomes(
            farm_oracle, tenant.name, farm_sent.get(tenant.name, {})
        )

    farm_delivered = {
        tenant.name: _delivered_subjects(
            tenant.user, farm_sent.get(tenant.name, {})
        )
        for tenant in tenants
    }

    # --- one solo world per user ---------------------------------------
    for index in range(n_users):
        name = f"user{index}"
        solo = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
        user = solo.create_user(name)
        deployment = solo.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        _configure_deployment(deployment, user)
        solo_oracle = DeliveryOracle()
        deployment.config.pipeline_observer = solo_oracle.observer_for(name)
        deployment.launch()
        solo_source = solo.create_source("portal")
        solo_stranger = solo.create_source("stranger")
        solo_books = {name: deployment.source_facing_book()}
        solo_sent: dict[str, dict[str, str]] = {}

        def solo_script(env, src=solo_source, strg=solo_stranger,
                        bks=solo_books, out=solo_sent):
            sent = yield from _scripted_emission(
                env, src, strg, bks, alerts_per_user
            )
            out.update(sent)

        solo.env.process(solo_script(solo.env), name="equivalence-script")
        solo.run(until=horizon)

        solo_final = _final_outcomes(solo_oracle, name, solo_sent.get(name, {}))
        report.solo_outcomes[name] = solo_final
        if solo_final != report.farm_outcomes.get(name):
            report.mismatches.append(
                f"{name}: outcome kinds differ — farm "
                f"{report.farm_outcomes.get(name)} vs solo {solo_final}"
            )
        solo_delivered = _delivered_subjects(user, solo_sent.get(name, {}))
        if solo_delivered != farm_delivered.get(name):
            report.mismatches.append(
                f"{name}: delivered subjects differ — farm "
                f"{sorted(farm_delivered.get(name, set()))} vs solo "
                f"{sorted(solo_delivered)}"
            )
    return report
