"""Trace-backed invariants: what the causal span tree must always satisfy.

The journal-backed :class:`~repro.testkit.oracle.DeliveryOracle` audits
*endpoints* — what each tenant's journal, log and ack table say happened.
This module audits the *path*: the :class:`~repro.obs.TraceSink` recorded
who caused what, so a class of bugs invisible to endpoint state (a fallback
block firing before its predecessor failed, a fenced side starting a trip
after losing the epoch, a stage list that silently drops alerts) becomes a
structural property of the span tree.

Invariants (each conservative enough to hold by construction on a healthy
run — the seed-sensitivity smoke test asserts the trace verdict and the
journal verdict *agree* across seeds):

- **trace-terminal-delivery** — at most one successful ``deliver.user``
  span per (alert, user, epoch).  Cross-epoch repeats are the replication
  partition shape and are judged by the journal oracle's
  ``no_fenced_reroute``, not here.
- **trace-fallback-ordering** — within one delivery-mode execution (one
  ``deliver`` span), block *i* > 0 may start only if block *i − 1* ran and
  did not succeed.  Fallback is ordered error handling; out-of-order
  blocks mean the engine broke its §3.2 contract.
- **trace-fenced-epoch** — no ``trip`` span annotated with epoch *E*
  starts strictly after a ``failover.promote`` event for the same user
  with a later epoch.  Mirrors the journal oracle's
  ``at_most_one_active_epoch`` (same-instant actions are legal: the
  promotion and the last old-epoch action may share a timestamp).
- **trace-terminal** — a *closed* ``trip`` span must carry a terminal
  outcome, never ``"unfinished"``: a trip that ran off the end of the
  stage list dropped its alert.  Spans left *open* are legal — a crash
  cuts processes mid-yield and their spans simply never end.
- **trace-structural** — every span's parent exists in its trace and no
  closed span ends before it starts.  Skipped when the sink evicted
  anything (a dropped parent is bounded memory, not a bug).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.trace import LIFECYCLE_PREFIX, Span
from repro.testkit.oracle import Violation

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import TraceSink

#: ``trip`` outcomes that legitimately end a trip.
TERMINAL_TRIP_OUTCOMES = frozenset(
    {
        "routed",
        "retry_scheduled",
        "delivery_abandoned",
        "rejected",
        "unmapped",
        "filtered",
        "no_subscribers",
        "duplicate_incoming",
        "fenced",
    }
)


def check_trace(sink: "TraceSink") -> tuple[dict[str, int], list[Violation]]:
    """Audit every trace invariant; returns (checked counters, violations)."""
    checked: dict[str, int] = {
        "trace_traces": len(sink.trace_ids()),
        "trace_spans": sink.span_count(),
    }
    violations: list[Violation] = []

    promotions = _promotions_by_user(sink)

    # Completeness-dependent checks would false-positive on an evicting
    # sink (a dropped predecessor block looks like out-of-order fallback).
    complete = not (sink.dropped_traces or sink.dropped_spans)

    for trace_id in sink.trace_ids():
        if trace_id.startswith(LIFECYCLE_PREFIX):
            continue
        spans = sink.spans(trace_id)
        _check_terminal_delivery(trace_id, spans, violations)
        _check_fenced_epoch(trace_id, spans, promotions, violations)
        _check_trip_terminal(trace_id, spans, violations)
        if complete:
            _check_fallback_ordering(trace_id, spans, violations)
            _check_structure(trace_id, spans, violations)
    return checked, violations


# ----------------------------------------------------------------------
# Individual invariants
# ----------------------------------------------------------------------


def _promotions_by_user(sink: "TraceSink") -> dict[str, list[tuple[int, float]]]:
    """user → [(epoch, promoted_at)] from the lifecycle traces."""
    table: dict[str, list[tuple[int, float]]] = {}
    for span in sink.find_spans("failover.promote"):
        user = span.annotations.get("user")
        epoch = span.annotations.get("epoch")
        if user is None or epoch is None:
            continue
        table.setdefault(user, []).append((epoch, span.start))
    return table


def _check_terminal_delivery(
    trace_id: str, spans: list[Span], violations: list[Violation]
) -> None:
    delivered: dict[tuple[str, object], int] = {}
    for span in spans:
        if span.name != "deliver.user" or span.outcome != "delivered":
            continue
        key = (
            span.annotations.get("user", "?"),
            span.annotations.get("epoch"),
        )
        delivered[key] = delivered.get(key, 0) + 1
    for (user, epoch), count in delivered.items():
        if count > 1:
            where = f" under epoch {epoch}" if epoch is not None else ""
            violations.append(
                Violation(
                    "trace_terminal_delivery",
                    f"{count} successful deliver.user spans{where} "
                    "(one terminal delivery per alert per user per epoch)",
                    user=user,
                    alert_id=trace_id,
                )
            )


def _check_fallback_ordering(
    trace_id: str, spans: list[Span], violations: list[Violation]
) -> None:
    blocks_by_deliver: dict[int, dict[int, Span]] = {}
    for span in spans:
        if span.name != "block" or span.parent_id is None:
            continue
        index = span.annotations.get("index")
        if index is None:
            continue
        blocks_by_deliver.setdefault(span.parent_id, {})[index] = span
    for blocks in blocks_by_deliver.values():
        for index, span in sorted(blocks.items()):
            if index == 0:
                continue
            prev = blocks.get(index - 1)
            if prev is None:
                violations.append(
                    Violation(
                        "trace_fallback_ordering",
                        f"block {index} ran without block {index - 1}",
                        alert_id=trace_id,
                    )
                )
            elif prev.outcome == "success":
                violations.append(
                    Violation(
                        "trace_fallback_ordering",
                        f"block {index} ran although block {index - 1} "
                        "succeeded (fallback after success)",
                        alert_id=trace_id,
                    )
                )


def _check_fenced_epoch(
    trace_id: str,
    spans: list[Span],
    promotions: dict[str, list[tuple[int, float]]],
    violations: list[Violation],
) -> None:
    for span in spans:
        if span.name != "trip":
            continue
        epoch = span.annotations.get("epoch")
        user = span.annotations.get("user")
        if epoch is None or user is None:
            continue
        for later_epoch, promoted_at in promotions.get(user, ()):
            if later_epoch > epoch and span.start > promoted_at:
                violations.append(
                    Violation(
                        "trace_fenced_epoch",
                        f"trip under epoch {epoch} started at "
                        f"t={span.start:.1f}, after epoch {later_epoch} "
                        f"was promoted at t={promoted_at:.1f}",
                        user=user,
                        alert_id=trace_id,
                    )
                )


def _check_trip_terminal(
    trace_id: str, spans: list[Span], violations: list[Violation]
) -> None:
    for span in spans:
        if span.name != "trip" or not span.closed:
            continue
        if span.outcome not in TERMINAL_TRIP_OUTCOMES:
            violations.append(
                Violation(
                    "trace_terminal",
                    f"trip closed with non-terminal outcome "
                    f"{span.outcome!r} (alert dropped by the stage list)",
                    user=span.annotations.get("user"),
                    alert_id=trace_id,
                )
            )


def _check_structure(
    trace_id: str, spans: list[Span], violations: list[Violation]
) -> None:
    ids = {span.span_id for span in spans}
    for span in spans:
        if span.parent_id is not None and span.parent_id not in ids:
            violations.append(
                Violation(
                    "trace_structural",
                    f"span {span.span_id} ({span.name}) parents under "
                    f"unknown span {span.parent_id}",
                    alert_id=trace_id,
                )
            )
        if span.closed and span.end < span.start:
            violations.append(
                Violation(
                    "trace_structural",
                    f"span {span.span_id} ({span.name}) ends before it "
                    f"starts ({span.end} < {span.start})",
                    alert_id=trace_id,
                )
            )
