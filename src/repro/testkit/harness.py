"""The chaos harness: replay one fault schedule against a live farm.

:func:`run_chaos` assembles a *zero-loss* world (random channel loss would
make honest fire-and-forget deliveries look like oracle violations — every
loss here must come from the fault schedule), populates a
:class:`~repro.core.farm.BuddyFarm` whose tenants run under their own MDC
watchdogs, drives a steady round-robin alert workload, injects the
schedule, lets everything quiesce, and hands the world to the
:class:`~repro.testkit.oracle.DeliveryOracle`.

Determinism contract: for a fixed (:class:`ChaosRunConfig`, schedule) pair
the run is bit-for-bit reproducible — :meth:`ChaosReport.fingerprint`
digests only process-independent facts (outcome-kind counts, delivered
subjects, ack counters, violations; never raw alert ids, which come from a
process-global counter).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.admission import AdmissionConfig
from repro.core.alert import AlertSeverity
from repro.core.farm import FarmProfile
from repro.net.adversary import DEFAULT_REORDER_HORIZON, AdversaryModel
from repro.net.channel import LatencyModel
from repro.sim.clock import HOUR, MINUTE
from repro.sim.failures import FaultInjector, FaultKind, ScheduledFault
from repro.testkit.generator import StormConfig, StormTrafficGenerator
from repro.testkit.oracle import DeliveryOracle, OracleReport
from repro.workloads.faultload import (
    TARGET_EMAIL_SERVICE,
    TARGET_HOST,
    TARGET_IM_CLIENT,
    TARGET_IM_SERVICE,
    TARGET_MAB,
    TARGET_REPLICATION_LINK,
    TARGET_SCREEN,
    TARGET_STANDBY_HOST,
)
from repro.world import SimbaWorld, WorldConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.farm import BuddyFarm, FarmTenant

#: Fast store-and-forward email so chaos runs quiesce inside the settle
#: window (the default model's tail is hours).
EMAIL_FAST = LatencyModel(median=20.0, sigma=0.4, low=2.0, high=600.0)


@dataclass(frozen=True)
class ChaosRunConfig:
    """Run parameters (all JSON-serializable, for reproducer pinning)."""

    seed: int = 0
    n_users: int = 3
    #: The fault window the schedule was generated for.
    duration: float = 2 * HOUR
    #: Quiet head start before the first fault may fire.
    start: float = 5 * MINUTE
    #: One alert lands somewhere on the farm this often (round-robin).
    alert_period: float = 40.0
    #: Quiesce time after the last fault clears: must cover the retry
    #: chain (max_attempts × retry_delay), recovery replays and the email
    #: latency tail.
    settle: float = 30 * MINUTE
    #: How long a human takes to register an unknown dialog's rule (§5).
    operator_response: float = 5 * MINUTE
    delivery_retry_delay: float = 60.0
    delivery_max_attempts: int = 4
    mdc_check_interval: float = 60.0
    #: Give every tenant a warm-standby pair (:meth:`~repro.core.farm
    #: .BuddyFarm.enable_replication`) and register the replication
    #: injection targets (``replication-link:<user>``,
    #: ``standby-host:<user>``).
    replication: bool = False
    heartbeat_interval: float = 5.0
    lease_timeout: float = 20.0
    lease_check_interval: float = 2.0
    #: Traffic hardening applied to every tenant (None = legacy path;
    #: :meth:`AdmissionConfig.permissive` = hardening wired but all off).
    admission: Optional[AdmissionConfig] = None
    #: Replace the steady round-robin workload with an alert storm
    #: (burst arrivals from many sources, duplicate submissions).
    storm: Optional[StormConfig] = None
    #: Ambient adversary applied to every channel (IM, email, SMS, and in
    #: replication mode every pair's ship link) for the whole run; pulse
    #: faults (LINK_REORDER / LINK_DUPLICATE / LINK_CORRUPT) layer bounded
    #: windows on top.  None = benign channels, and the field is dropped
    #: from the fingerprint so pre-adversary pins are unchanged.
    adversary: Optional[AdversaryModel] = None
    #: Replication record transport: "stabilizing" (checksum + dedup +
    #: bounded resend) or "naive" (the E14 baseline).  None = the default
    #: ("stabilizing"), dropped from the fingerprint like ``adversary``.
    transport: Optional[str] = None


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    config: ChaosRunConfig
    schedule: list[ScheduledFault]
    oracle: OracleReport
    #: Per-tenant workload counts.
    offered: dict[str, int] = field(default_factory=dict)
    delivered: dict[str, int] = field(default_factory=dict)
    #: Aggregate pipeline outcome kinds across the farm.
    outcome_counts: dict[str, int] = field(default_factory=dict)
    injected: int = 0
    rejected_injections: int = 0
    horizon: float = 0.0
    #: Replication mode only: per-tenant failover promotion counts.
    promotions: dict[str, int] = field(default_factory=dict)
    #: Hardened runs only: the farm's summed admission counters
    #: (:meth:`~repro.core.farm.BuddyFarm.admission_summary`).
    admission: Optional[dict] = None
    #: The run's :class:`repro.obs.TraceSink` when ``run_chaos(trace=True)``
    #: — excluded from :meth:`fingerprint` (tracing is pure observation;
    #: traced and untraced runs must fingerprint identically).
    trace: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.oracle.ok

    def fingerprint(self) -> str:
        """Deterministic digest of the run's observable behaviour."""
        config_payload = asdict(self.config)
        # Optional=None fields are dropped so pre-change fingerprints
        # (pinned reproducers) are byte-identical — same pattern as the
        # "promotions"/"admission" keys below.
        for optional in ("adversary", "transport"):
            if config_payload.get(optional) is None:
                config_payload.pop(optional, None)
        payload = {
            "config": config_payload,
            "schedule": [
                (f.at, f.kind.value, f.target, f.duration,
                 sorted(f.params.items()))
                for f in self.schedule
            ],
            "offered": sorted(self.offered.items()),
            "delivered": sorted(self.delivered.items()),
            "outcomes": sorted(self.outcome_counts.items()),
            "injected": self.injected,
            "rejected_injections": self.rejected_injections,
            "violations": sorted(str(v) for v in self.oracle.violations),
            "info": sorted(self.oracle.info.items()),
        }
        if self.promotions:
            # Only stamped in replication mode, so pre-replication
            # fingerprints (pinned reproducers) are unchanged.
            payload["promotions"] = sorted(self.promotions.items())
        if self.admission is not None:
            # Same pattern: only hardened runs carry the rollup.
            payload["admission"] = sorted(self.admission.items())
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        failovers = ""
        if self.promotions:
            failovers = f" ({sum(self.promotions.values())} failover(s))"
        return (
            f"chaos {verdict}: {self.injected} faults injected{failovers}, "
            f"{sum(self.offered.values())} alerts offered, "
            f"{sum(self.delivered.values())} delivered — "
            + self.oracle.summary()
        )


#: The channel-adversary pulse kinds a handler maps to ``adversary_pulse``.
ADVERSARY_PULSE_KINDS = frozenset(
    {FaultKind.LINK_REORDER, FaultKind.LINK_DUPLICATE, FaultKind.LINK_CORRUPT}
)


def adversary_model_for(fault: ScheduledFault) -> AdversaryModel:
    """The one-effect :class:`AdversaryModel` a pulse fault pins.

    Each pulse kind turns up exactly one knob (probability and the
    kind-specific parameter ride in ``fault.params``), so a shrunk
    schedule isolates which misbehaviour broke the run.
    """
    probability = float(fault.params.get("probability", 0.25))
    if fault.kind is FaultKind.LINK_REORDER:
        return AdversaryModel(
            reorder_probability=probability,
            reorder_horizon=float(
                fault.params.get("horizon", DEFAULT_REORDER_HORIZON)
            ),
        )
    if fault.kind is FaultKind.LINK_DUPLICATE:
        return AdversaryModel(
            duplicate_probability=probability,
            duplicate_max=int(fault.params.get("copies", 3)),
        )
    if fault.kind is FaultKind.LINK_CORRUPT:
        return AdversaryModel(corrupt_probability=probability)
    raise ValueError(f"{fault.kind} is not an adversary pulse kind")


def wire_chaos_targets(
    world: SimbaWorld,
    farm: "BuddyFarm",
    operator_response: float,
) -> FaultInjector:
    """Register handlers for every target name the generator can emit.

    Global targets reuse the faultload names (``im-service``, ``host``…);
    per-user faults address one tenant's slice as ``mab:<user>`` /
    ``im-client:<user>``.
    """
    injector = FaultInjector(world.env)

    def on_im_service(fault: ScheduledFault) -> bool:
        if fault.kind is FaultKind.IM_SERVICE_OUTAGE:
            world.im.outage(fault.duration)
            return True
        if fault.kind in ADVERSARY_PULSE_KINDS:
            world.im.adversary_pulse(
                adversary_model_for(fault), fault.duration
            )
            return True
        return False

    def on_email_service(fault: ScheduledFault) -> bool:
        if fault.kind is FaultKind.EMAIL_OUTAGE:
            world.email.outage(fault.duration)
            return True
        if fault.kind in ADVERSARY_PULSE_KINDS:
            world.email.adversary_pulse(
                adversary_model_for(fault), fault.duration
            )
            return True
        return False

    def on_host(fault: ScheduledFault) -> bool:
        if fault.kind is FaultKind.POWER_OUTAGE and world.host.up:
            return world.host.power_failure(fault.duration)
        return False

    def on_screen(fault: ScheduledFault) -> bool:
        if not world.host.up:
            return False
        caption = fault.params.get("caption", "Mystery dialog")
        button = fault.params.get("button", "OK")
        world.host.screen.pop_dialog(caption, (button,), owner=None)
        if fault.kind is FaultKind.UNKNOWN_DIALOG_POPUP:
            def operator(env):
                yield env.timeout(operator_response)
                for deployment in farm.deployments():
                    deployment.endpoint.im_manager.register_dialog_rule(
                        caption, button
                    )
                    deployment.endpoint.email_manager.register_dialog_rule(
                        caption, button
                    )
                blocking = [
                    d
                    for d in world.host.screen.open_dialogs()
                    if d.caption == caption
                ]
                for dialog in blocking:
                    world.host.screen.click(dialog, button)

            world.env.process(operator(world.env), name="operator-fix")
        return True

    injector.register(TARGET_IM_SERVICE, on_im_service)
    injector.register(TARGET_EMAIL_SERVICE, on_email_service)
    injector.register(TARGET_HOST, on_host)
    injector.register(TARGET_SCREEN, on_screen)

    for tenant in farm:
        injector.register(
            f"{TARGET_MAB}:{tenant.name}", _mab_handler(tenant)
        )
        injector.register(
            f"{TARGET_IM_CLIENT}:{tenant.name}", _client_handler(world, tenant)
        )
        if tenant.pair is not None:
            injector.register(
                f"{TARGET_REPLICATION_LINK}:{tenant.name}",
                _link_handler(tenant),
            )
            injector.register(
                f"{TARGET_STANDBY_HOST}:{tenant.name}",
                _standby_host_handler(tenant),
            )
    return injector


def _mab_handler(tenant: "FarmTenant"):
    def on_mab(fault: ScheduledFault) -> bool:
        current = tenant.deployment.current
        if current is None or not current.alive:
            return False
        if fault.kind is FaultKind.PROCESS_CRASH:
            return current.crash()
        if fault.kind is FaultKind.PROCESS_HANG:
            return current.hang()
        if fault.kind is FaultKind.MEMORY_LEAK:
            return current.leak_memory(fault.params.get("megabytes", 300.0))
        return False

    return on_mab


def _link_handler(tenant: "FarmTenant"):
    def on_link(fault: ScheduledFault) -> bool:
        if fault.kind is FaultKind.REPLICATION_LINK_DOWN:
            tenant.pair.link.outage(fault.duration)
            return True
        if fault.kind in ADVERSARY_PULSE_KINDS:
            tenant.pair.link.adversary_pulse(
                adversary_model_for(fault), fault.duration
            )
            return True
        return False

    return on_link


def _standby_host_handler(tenant: "FarmTenant"):
    # Targets the pair's *dedicated* second machine (side "b"'s host) —
    # after a failover that machine is the active primary, which is
    # exactly the double-failure the storm schedules go looking for.
    def on_standby_host(fault: ScheduledFault) -> bool:
        host = tenant.pair.b.host
        if fault.kind is FaultKind.POWER_OUTAGE and host.up:
            return host.power_failure(fault.duration)
        return False

    return on_standby_host


def _client_handler(world: SimbaWorld, tenant: "FarmTenant"):
    def on_im_client(fault: ScheduledFault) -> bool:
        endpoint = tenant.deployment.endpoint
        if fault.kind is FaultKind.CLIENT_LOGOUT:
            return world.im.force_logout(tenant.deployment.im_address)
        if fault.kind is FaultKind.CLIENT_HANG:
            return endpoint.im_client.hang()
        if fault.kind is FaultKind.CLIENT_STALE_POINTER:
            client = endpoint.im_client
            if not client.running:
                return False
            client.terminate()
            client.start()
            return True
        return False

    return on_im_client


def run_chaos(
    schedule: list[ScheduledFault],
    config: Optional[ChaosRunConfig] = None,
    stage_factory: Optional[Callable[[], list]] = None,
    oracle: Optional[DeliveryOracle] = None,
    trace: bool = False,
) -> ChaosReport:
    """Replay ``schedule`` against a fresh farm; return the audited report.

    ``stage_factory`` swaps every tenant's pipeline stages — the way the
    testkit's own tests (and :mod:`repro.testkit.bugs`) plant deliberately
    broken pipelines to prove the oracle has teeth.

    ``trace`` installs a :class:`repro.obs.TraceSink` for the run; the
    sink rides back on ``report.trace`` and the oracle additionally audits
    the trace-backed invariants (``report.oracle.trace_violations``).  A
    parameter, not a :class:`ChaosRunConfig` field: the config is part of
    every pinned reproducer's fingerprint, and tracing must never change a
    run's identity.
    """
    if config is None:
        config = ChaosRunConfig()
    if oracle is None:
        oracle = DeliveryOracle()

    world = SimbaWorld(
        WorldConfig(
            seed=config.seed,
            email_latency=EMAIL_FAST,
            email_loss=0.0,
            sms_loss=0.0,
        )
    )
    sink = None
    if trace:
        from repro.obs import TraceSink

        sink = TraceSink().install(world.env)
    storm_names = (
        [f"storm{i}" for i in range(config.storm.n_sources)]
        if config.storm is not None
        else []
    )
    farm = world.create_farm(
        shards=4,
        profile=FarmProfile(
            categories=("News",),
            accept_sources=("portal", *storm_names),
        ),
    )
    tenants = farm.add_users(config.n_users)
    for tenant in tenants:
        cfg = tenant.deployment.config
        cfg.pipeline_observer = oracle.observer_for(tenant.name)
        cfg.delivery_retry_delay = config.delivery_retry_delay
        cfg.delivery_max_attempts = config.delivery_max_attempts
        cfg.admission = config.admission
        if stage_factory is not None:
            cfg.stage_factory = stage_factory
    if config.replication:
        farm.enable_replication(
            heartbeat_interval=config.heartbeat_interval,
            lease_timeout=config.lease_timeout,
            check_interval=config.lease_check_interval,
            transport=config.transport or "stabilizing",
        )
    if config.adversary is not None:
        for channel in (world.im, world.email, world.sms):
            channel.set_adversary(config.adversary)
        for tenant in tenants:
            if tenant.pair is not None:
                tenant.pair.link.set_adversary(config.adversary)
    farm.start_watchdogs(check_interval=config.mdc_check_interval)

    source = world.create_source("portal")
    farm.register_with(source)
    storm_sources = [world.create_source(name) for name in storm_names]
    for storm_source in storm_sources:
        farm.register_with(storm_source)

    fault_window_end = max(
        [config.start + config.duration]
        + [f.at + f.duration for f in schedule]
    )
    horizon = fault_window_end + config.settle
    offered: dict[str, set[str]] = {t.name: set() for t in tenants}

    def workload(env):
        index = 0
        while env.now < fault_window_end:
            tenant = tenants[index % len(tenants)]
            alert, _ = source.emit_to(
                tenant.book, "News", f"alert-{index}-{tenant.name}", "body"
            )
            offered[tenant.name].add(alert.alert_id)
            index += 1
            yield env.timeout(config.alert_period)

    def storm_workload(env):
        events = StormTrafficGenerator(
            config.seed,
            [t.name for t in tenants],
            config.storm,
            duration=config.duration,
            start=config.start,
        ).generate()
        books = {t.name: t.book for t in tenants}
        # Per-user memory of the last fresh emission, so a ``duplicate``
        # event re-submits the *same* alert object from the same source —
        # the upstream at-least-once copy dedup keys must suppress.
        last: dict[str, tuple] = {}
        index = 0
        for event in events:
            if event.at > env.now:
                yield env.timeout(event.at - env.now)
            src = storm_sources[event.source]
            if event.duplicate and event.user in last:
                prev_src, prev_alert = last[event.user]
                env.process(
                    prev_src.deliver(prev_alert, books[event.user]),
                    name=f"{prev_src.name}-redeliver-{prev_alert.alert_id}",
                )
                continue
            alert, _ = src.emit_to(
                books[event.user],
                "News",
                f"storm-{index}-{event.user}",
                "body",
                severity=AlertSeverity(event.severity),
            )
            offered[event.user].add(alert.alert_id)
            last[event.user] = (src, alert)
            index += 1

    if config.storm is not None:
        world.env.process(storm_workload(world.env), name="storm-workload")
    else:
        world.env.process(workload(world.env), name="chaos-workload")

    injector = wire_chaos_targets(world, farm, config.operator_response)
    injector.load(schedule)

    world.run(until=horizon)

    report = oracle.check(
        farm,
        offered=offered,
        source_endpoints=[source.endpoint]
        + [s.endpoint for s in storm_sources],
        trace_sink=sink,
    )
    outcome_counts: dict[str, int] = {}
    for obs in oracle.observed:
        kind = obs.kind or "(dropped)"
        outcome_counts[kind] = outcome_counts.get(kind, 0) + 1
    return ChaosReport(
        config=config,
        schedule=list(schedule),
        oracle=report,
        offered={name: len(ids) for name, ids in offered.items()},
        delivered={
            t.name: len(t.user.unique_alerts_received() & offered[t.name])
            for t in tenants
        },
        outcome_counts=outcome_counts,
        injected=sum(1 for r in injector.records if r.accepted),
        rejected_injections=sum(
            1 for r in injector.records if not r.accepted
        ),
        horizon=horizon,
        promotions={
            t.name: len(t.pair.audit.promotions) - 1
            for t in tenants
            if t.pair is not None
        },
        admission=farm.admission_summary(),
        trace=sink,
    )
