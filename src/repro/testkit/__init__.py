"""Deterministic chaos-testing subsystem for the SIMBA reproduction.

The paper's dependability claim (§5) rests on MyAlertBuddy surviving one
month of *naturally occurring* failures.  :mod:`repro.sim.failures` replays
that taxonomy, but only on hand-written schedules — a single trace.  This
package closes the gap with property-based chaos testing: dependability is
checked against *arbitrary* adversarial fault interleavings, not one log.

Four pieces compose:

- :class:`FaultScheduleGenerator` samples seeded random
  :class:`~repro.sim.failures.ScheduledFault` sequences over the full
  :class:`~repro.sim.failures.FaultKind` taxonomy — compound faults,
  bursts, faults injected during recovery — parameterized by
  :class:`ChaosIntensity`.
- :func:`run_chaos` replays one schedule against a live
  :class:`~repro.core.farm.BuddyFarm` (every tenant under its own MDC
  watchdog) while a workload emits alerts, then lets the system quiesce.
- :class:`DeliveryOracle` asserts end-to-end invariants after every run:
  every accepted alert is delivered exactly once or explicitly
  dead-lettered, no duplicate ACKs, journal replay is idempotent, and a
  farm run is event-equivalent to the same users run as independent MABs.
- :func:`shrink` delta-debugs a failing schedule down to a minimal
  reproducer, serializable (seed + schedule JSON) for regression pinning
  via :func:`dump_reproducer` / :func:`replay_reproducer`.

:func:`chaos_sweep` ties them together: N seeded trials, oracle-checked,
failures shrunk — bit-for-bit reproducible for a fixed seed.
"""

from repro.testkit.bugs import (
    AbandonAmnesiaRetryStage,
    SilentDropRetryStage,
    drop_retry_stages,
    silent_drop_stages,
)
from repro.testkit.generator import (
    ADVERSARY_FAULT_KINDS,
    ChaosIntensity,
    FaultScheduleGenerator,
    StormConfig,
    StormEvent,
    StormTrafficGenerator,
)
from repro.testkit.harness import (
    ChaosReport,
    ChaosRunConfig,
    adversary_model_for,
    run_chaos,
)
from repro.testkit.oracle import (
    ADMISSION_TERMINAL_KINDS,
    DeliveryOracle,
    EquivalenceReport,
    OracleReport,
    Violation,
    check_farm_equivalence,
    check_shard_count_invariance,
)
from repro.testkit.parallel import SweepPool, fanout, sweep_pool
from repro.testkit.schedule import (
    Reproducer,
    dump_reproducer,
    fault_from_dict,
    fault_to_dict,
    load_reproducer,
    replay_reproducer,
    schedule_from_json,
    schedule_to_json,
)
from repro.testkit.shrink import ShrinkResult, shrink
from repro.testkit.sweep import ChaosSweepResult, ChaosTrial, chaos_sweep
from repro.testkit.trace_oracle import check_trace

__all__ = [
    "ADMISSION_TERMINAL_KINDS",
    "ADVERSARY_FAULT_KINDS",
    "AbandonAmnesiaRetryStage",
    "adversary_model_for",
    "ChaosIntensity",
    "ChaosReport",
    "ChaosRunConfig",
    "ChaosSweepResult",
    "ChaosTrial",
    "DeliveryOracle",
    "EquivalenceReport",
    "FaultScheduleGenerator",
    "OracleReport",
    "Reproducer",
    "ShrinkResult",
    "SilentDropRetryStage",
    "StormConfig",
    "StormEvent",
    "StormTrafficGenerator",
    "SweepPool",
    "Violation",
    "chaos_sweep",
    "check_farm_equivalence",
    "check_shard_count_invariance",
    "check_trace",
    "fanout",
    "sweep_pool",
    "drop_retry_stages",
    "dump_reproducer",
    "fault_from_dict",
    "fault_to_dict",
    "load_reproducer",
    "replay_reproducer",
    "run_chaos",
    "schedule_from_json",
    "schedule_to_json",
    "shrink",
    "silent_drop_stages",
]
