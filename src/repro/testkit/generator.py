"""Seeded random fault-schedule generation over the full taxonomy.

A :class:`FaultScheduleGenerator` turns (seed, users, window, intensity)
into a :class:`~repro.sim.failures.ScheduledFault` list.  Unlike
:func:`~repro.workloads.faultload.generate_month_faultload`, which
reproduces the paper's §5 category *mix*, this generator searches the space
of adversarial interleavings:

- **base faults** arrive Poisson over the window, each drawing a kind from
  the whole :class:`~repro.sim.failures.FaultKind` taxonomy;
- **bursts** stack extra compound faults (usually different kinds, often
  different targets) within seconds of a base fault — the overlapping
  IM-outage-during-hang, power-loss-mid-outage days;
- **recovery chasers** inject a follow-up fault shortly after a crash,
  hang or power loss, while the MDC/replay machinery is mid-recovery —
  the interleavings hand-written schedules never cover.

Everything is drawn from one ``numpy`` generator seeded in the
constructor, so a (seed, parameters) pair always yields the identical
schedule — which is what makes sweep results reproducible and shrunk
schedules pinnable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.clock import HOUR, MINUTE
from repro.sim.failures import FaultKind, ScheduledFault
from repro.workloads.arrivals import BurstWindow, storm_arrival_times
from repro.workloads.faultload import (
    KNOWN_DIALOG_CAPTIONS,
    TARGET_EMAIL_SERVICE,
    TARGET_HOST,
    TARGET_IM_CLIENT,
    TARGET_IM_SERVICE,
    TARGET_MAB,
    TARGET_REPLICATION_LINK,
    TARGET_SCREEN,
    TARGET_STANDBY_HOST,
    UNKNOWN_DIALOG_CAPTIONS,
)

#: Kinds that hit one user's slice of the farm (target carries the user).
PER_USER_KINDS = (
    FaultKind.CLIENT_LOGOUT,
    FaultKind.CLIENT_HANG,
    FaultKind.CLIENT_STALE_POINTER,
    FaultKind.PROCESS_CRASH,
    FaultKind.PROCESS_HANG,
    FaultKind.MEMORY_LEAK,
)
#: Kinds whose injection leaves the system recovering for a while — the
#: anchors recovery-chaser faults are scheduled after.
RECOVERY_KINDS = (
    FaultKind.PROCESS_CRASH,
    FaultKind.PROCESS_HANG,
    FaultKind.POWER_OUTAGE,
    FaultKind.IM_SERVICE_OUTAGE,
)


def per_user_target(kind: FaultKind, user: str) -> str:
    """Injection-target name for a per-user fault (``mab:alice``)."""
    if kind in (
        FaultKind.CLIENT_LOGOUT,
        FaultKind.CLIENT_HANG,
        FaultKind.CLIENT_STALE_POINTER,
    ):
        return f"{TARGET_IM_CLIENT}:{user}"
    return f"{TARGET_MAB}:{user}"


@dataclass(frozen=True)
class ChaosIntensity:
    """How hard the generator leans on the system.

    The defaults are calibrated for a 2-hour window on a handful of
    tenants: a fault every ~8 minutes, a quarter of them seeding compound
    bursts.  Scale ``faults_per_hour`` up (or the run window down) to turn
    a smoke sweep into a soak.
    """

    faults_per_hour: float = 8.0
    #: Probability that a base fault seeds a burst of compound faults.
    burst_probability: float = 0.25
    #: 1..burst_max extra faults stacked inside ``burst_window``.
    burst_max: int = 3
    burst_window: float = 45.0
    #: Probability of a follow-up fault while recovery from a crash /
    #: hang / outage is still in flight.
    recovery_chaser_probability: float = 0.35
    #: Chaser lands this long after its anchor (recovery is mid-flight).
    recovery_chaser_delay: tuple[float, float] = (5.0, 90.0)
    #: Service-outage durations (IM and email alike).
    outage_duration: tuple[float, float] = (30.0, 10 * MINUTE)
    #: Power-outage durations (bounded so the host is back well before the
    #: settle window ends).
    power_duration: tuple[float, float] = (MINUTE, 8 * MINUTE)
    #: Leaked megabytes per MEMORY_LEAK fault (over the 200 MB default
    #: limit triggers rejuvenation; under it just loads the heap).
    leak_megabytes: tuple[float, float] = (100.0, 400.0)
    #: Replication mode: how long the log-ship link stays partitioned.
    #: The upper bound comfortably exceeds the default 20 s lease, so some
    #: partitions promote the standby while the primary is still alive —
    #: the split-brain-shaped interleaving epoch fencing exists for.
    link_down_duration: tuple[float, float] = (10.0, 5 * MINUTE)
    #: Replication mode: probability a primary-host power loss seeds a
    #: *failover storm* — a standby-host crash landing while promotion /
    #: takeover recovery is still in flight.
    failover_storm_probability: float = 0.5
    #: The storm's standby crash lands this long after the primary's (the
    #: default lease expires at ~20 s, so the window straddles promotion).
    standby_crash_delay: tuple[float, float] = (8.0, 45.0)
    #: Adversarial mode: how long one LINK_REORDER / LINK_DUPLICATE /
    #: LINK_CORRUPT pulse keeps a channel's adversary knobs turned up.
    adversary_pulse_duration: tuple[float, float] = (30.0, 4 * MINUTE)
    #: Adversarial mode: per-packet effect probability inside a pulse.
    adversary_probability: tuple[float, float] = (0.1, 0.5)
    #: Adversarial mode: reorder-pulse latency-inversion horizon (seconds).
    adversary_horizon: tuple[float, float] = (0.5, 10.0)

    def __post_init__(self):
        if self.faults_per_hour < 0:
            raise ConfigurationError(
                f"faults_per_hour must be >= 0, got {self.faults_per_hour}"
            )
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ConfigurationError(
                f"burst_probability must be in [0, 1], got {self.burst_probability}"
            )
        if self.burst_max < 1:
            raise ConfigurationError(
                f"burst_max must be >= 1, got {self.burst_max}"
            )
        if not 0.0 <= self.recovery_chaser_probability <= 1.0:
            raise ConfigurationError(
                "recovery_chaser_probability must be in [0, 1], got "
                f"{self.recovery_chaser_probability}"
            )


#: Relative draw weights over the taxonomy.  Service outages and process
#: faults dominate (as in the paper's log); unknown dialogs are rare
#: because each one parks every client on the shared screen until the
#: simulated operator responds.
KIND_WEIGHTS: dict[FaultKind, float] = {
    FaultKind.IM_SERVICE_OUTAGE: 2.0,
    FaultKind.EMAIL_OUTAGE: 1.5,
    FaultKind.CLIENT_LOGOUT: 2.0,
    FaultKind.CLIENT_HANG: 1.5,
    FaultKind.CLIENT_STALE_POINTER: 1.0,
    FaultKind.DIALOG_POPUP: 1.0,
    FaultKind.UNKNOWN_DIALOG_POPUP: 0.25,
    FaultKind.PROCESS_CRASH: 2.5,
    FaultKind.PROCESS_HANG: 1.5,
    FaultKind.MEMORY_LEAK: 0.75,
    FaultKind.POWER_OUTAGE: 0.5,
}

#: Extra weights layered on in replication mode: link partitions join the
#: taxonomy and host power loss becomes a *featured* fault (it is exactly
#: what the warm standby exists to survive).  Kept out of
#: :data:`KIND_WEIGHTS` so non-replicated schedules are bit-for-bit
#: unchanged for a fixed seed.
REPLICATION_KIND_WEIGHTS: dict[FaultKind, float] = {
    FaultKind.REPLICATION_LINK_DOWN: 1.5,
    FaultKind.POWER_OUTAGE: 2.0,
}

#: Extra weights layered on in adversarial mode: windows during which a
#: channel reorders, duplicates or corrupts packets in flight.  A separate
#: dict for the same reason as :data:`REPLICATION_KIND_WEIGHTS` — the
#: default generator never draws these kinds, so pre-adversary schedules
#: stay bit-for-bit unchanged for a fixed seed.
ADVERSARIAL_KIND_WEIGHTS: dict[FaultKind, float] = {
    FaultKind.LINK_REORDER: 1.0,
    FaultKind.LINK_DUPLICATE: 1.0,
    FaultKind.LINK_CORRUPT: 0.75,
}

#: The adversarial pulse kinds (handlers map these to ``adversary_pulse``).
ADVERSARY_FAULT_KINDS = frozenset(ADVERSARIAL_KIND_WEIGHTS)


class FaultScheduleGenerator:
    """Sample random fault schedules for a fixed set of users."""

    def __init__(
        self,
        seed: int,
        users: list[str],
        duration: float = 2 * HOUR,
        start: float = 5 * MINUTE,
        intensity: ChaosIntensity | None = None,
        replication: bool = False,
        adversarial: bool = False,
    ):
        if not users:
            raise ConfigurationError("at least one user is required")
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.seed = int(seed)
        self.users = list(users)
        self.duration = float(duration)
        self.start = float(start)
        self.intensity = intensity if intensity is not None else ChaosIntensity()
        self.replication = bool(replication)
        self.adversarial = bool(adversarial)
        self.rng = np.random.default_rng(self.seed)
        weight_table = dict(KIND_WEIGHTS)
        if self.replication:
            weight_table.update(REPLICATION_KIND_WEIGHTS)
        if self.adversarial:
            weight_table.update(ADVERSARIAL_KIND_WEIGHTS)
        kinds = list(weight_table)
        weights = np.array([weight_table[k] for k in kinds], dtype=float)
        self._kinds = kinds
        self._kind_probs = weights / weights.sum()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _draw_kind(self) -> FaultKind:
        return self._kinds[
            int(self.rng.choice(len(self._kinds), p=self._kind_probs))
        ]

    def _draw_user(self) -> str:
        return self.users[int(self.rng.integers(0, len(self.users)))]

    def _uniform(self, bounds: tuple[float, float]) -> float:
        return float(self.rng.uniform(bounds[0], bounds[1]))

    def make_fault(self, at: float, kind: FaultKind | None = None) -> ScheduledFault:
        """One concrete fault at ``at`` (kind drawn if not given)."""
        intensity = self.intensity
        if kind is None:
            kind = self._draw_kind()
        if kind is FaultKind.IM_SERVICE_OUTAGE:
            return ScheduledFault(
                at=at, kind=kind, target=TARGET_IM_SERVICE,
                duration=self._uniform(intensity.outage_duration),
            )
        if kind is FaultKind.EMAIL_OUTAGE:
            return ScheduledFault(
                at=at, kind=kind, target=TARGET_EMAIL_SERVICE,
                duration=self._uniform(intensity.outage_duration),
            )
        if kind is FaultKind.POWER_OUTAGE:
            target = TARGET_HOST
            if self.replication and self.rng.random() < 0.4:
                # Sometimes the *standby's* machine loses power instead of
                # the primary pool — promotion must then wait for it, and a
                # dead standby must never be promoted.
                target = f"{TARGET_STANDBY_HOST}:{self._draw_user()}"
            return ScheduledFault(
                at=at, kind=kind, target=target,
                duration=self._uniform(intensity.power_duration),
            )
        if kind is FaultKind.REPLICATION_LINK_DOWN:
            return ScheduledFault(
                at=at, kind=kind,
                target=f"{TARGET_REPLICATION_LINK}:{self._draw_user()}",
                duration=self._uniform(intensity.link_down_duration),
            )
        if kind in ADVERSARY_FAULT_KINDS:
            return self._make_adversary_pulse(at, kind)
        if kind is FaultKind.DIALOG_POPUP:
            caption, button = KNOWN_DIALOG_CAPTIONS[
                int(self.rng.integers(0, len(KNOWN_DIALOG_CAPTIONS)))
            ]
            return ScheduledFault(
                at=at, kind=kind, target=TARGET_SCREEN,
                params={"caption": caption, "button": button},
            )
        if kind is FaultKind.UNKNOWN_DIALOG_POPUP:
            caption = UNKNOWN_DIALOG_CAPTIONS[
                int(self.rng.integers(0, len(UNKNOWN_DIALOG_CAPTIONS)))
            ]
            return ScheduledFault(
                at=at, kind=kind, target=TARGET_SCREEN,
                params={"caption": caption, "button": "OK"},
            )
        user = self._draw_user()
        params = {}
        if kind is FaultKind.MEMORY_LEAK:
            params = {
                "megabytes": round(self._uniform(intensity.leak_megabytes), 1)
            }
        return ScheduledFault(
            at=at, kind=kind, target=per_user_target(kind, user), params=params,
        )

    def _make_adversary_pulse(
        self, at: float, kind: FaultKind
    ) -> ScheduledFault:
        """One bounded window of channel misbehaviour.

        The pulse targets a shared service channel — or, in replication
        mode, sometimes one tenant's log-ship link, the path the
        stabilizing transport exists to defend.  Params pin the knobs the
        handler hands to :meth:`~repro.net.channel.ChannelBase
        .adversary_pulse`, so a shrunk schedule replays the identical
        window.
        """
        intensity = self.intensity
        if self.replication and self.rng.random() < 0.5:
            target = f"{TARGET_REPLICATION_LINK}:{self._draw_user()}"
        else:
            target = (TARGET_IM_SERVICE, TARGET_EMAIL_SERVICE)[
                int(self.rng.integers(0, 2))
            ]
        params: dict = {
            "probability": round(
                self._uniform(intensity.adversary_probability), 3
            )
        }
        if kind is FaultKind.LINK_REORDER:
            params["horizon"] = round(
                self._uniform(intensity.adversary_horizon), 2
            )
        elif kind is FaultKind.LINK_DUPLICATE:
            params["copies"] = int(self.rng.integers(2, 6))
        return ScheduledFault(
            at=at, kind=kind, target=target,
            duration=self._uniform(intensity.adversary_pulse_duration),
            params=params,
        )

    def make_failover_storm(self, at: float) -> list[ScheduledFault]:
        """The nastiest replicated-pair interleaving, as one compound.

        The primary's host loses power (so with alerts flowing every few
        tens of seconds, some run dies between log-append and ack), and
        while the lease is expiring / the standby is mid-promotion-takeover
        the standby's host crashes too.  Half the time the ship link was
        already partitioned when the primary died, so the standby promotes
        from a mirror missing the freshest unshipped appends.
        """
        intensity = self.intensity
        user = self._draw_user()
        storm = []
        if self.rng.random() < 0.5:
            storm.append(
                ScheduledFault(
                    at=max(0.0, at - self._uniform((1.0, 30.0))),
                    kind=FaultKind.REPLICATION_LINK_DOWN,
                    target=f"{TARGET_REPLICATION_LINK}:{user}",
                    duration=self._uniform(intensity.link_down_duration),
                )
            )
        storm.append(
            ScheduledFault(
                at=at, kind=FaultKind.POWER_OUTAGE, target=TARGET_HOST,
                duration=self._uniform(intensity.power_duration),
            )
        )
        storm.append(
            ScheduledFault(
                at=at + self._uniform(intensity.standby_crash_delay),
                kind=FaultKind.POWER_OUTAGE,
                target=f"{TARGET_STANDBY_HOST}:{user}",
                duration=self._uniform(intensity.power_duration),
            )
        )
        return storm

    def generate(self) -> list[ScheduledFault]:
        """One full schedule: base Poisson arrivals + bursts + chasers."""
        intensity = self.intensity
        expected = intensity.faults_per_hour * self.duration / HOUR
        n_base = int(self.rng.poisson(expected))
        base_times = np.sort(
            self.rng.uniform(self.start, self.start + self.duration, n_base)
        )
        faults: list[ScheduledFault] = []
        for at in base_times:
            fault = self.make_fault(float(at))
            if (
                self.replication
                and fault.kind is FaultKind.POWER_OUTAGE
                and fault.target == TARGET_HOST
                and self.rng.random() < intensity.failover_storm_probability
            ):
                faults.extend(self.make_failover_storm(fault.at))
            else:
                faults.append(fault)
            if self.rng.random() < intensity.burst_probability:
                extra = int(self.rng.integers(1, intensity.burst_max + 1))
                for _ in range(extra):
                    offset = self._uniform((0.5, intensity.burst_window))
                    faults.append(self.make_fault(float(at) + offset))
            if (
                fault.kind in RECOVERY_KINDS
                and self.rng.random() < intensity.recovery_chaser_probability
            ):
                delay = self._uniform(intensity.recovery_chaser_delay)
                anchor_end = fault.at + max(fault.duration, 0.0)
                faults.append(self.make_fault(anchor_end + delay))
        return sorted(faults, key=lambda f: f.at)

    def window_end(self, schedule: list[ScheduledFault]) -> float:
        """When the last fault (including its duration) is over."""
        if not schedule:
            return self.start
        return max(f.at + f.duration for f in schedule)


# ----------------------------------------------------------------------
# Alert-storm traffic (burst arrivals from many sources at once)
# ----------------------------------------------------------------------

#: Seed-sequence spice for the storm traffic stream, so storm traffic and
#: fault schedules generated from the same run seed stay independent.
_STORM_STREAM = 0x73746F72  # "stor"


@dataclass(frozen=True)
class StormConfig:
    """Alert-storm traffic shape (JSON-serializable, reproducer-pinnable).

    Unlike the steady round-robin chaos workload, a storm run drives the
    farm from ``n_sources`` independent sources whose arrivals spike in
    shared burst windows — many sources at once, which is what overloads
    a per-recipient pipeline — and re-submits a fraction of alerts as
    duplicate copies (the upstream at-least-once behaviour dedup keys
    exist for).
    """

    n_sources: int = 4
    #: Farm-wide base arrival rate (alerts/second) outside bursts.
    base_rate: float = 0.02
    #: *Additional* farm-wide rate inside each burst window.
    burst_rate: float = 0.8
    n_bursts: int = 3
    burst_duration: float = 60.0
    #: Probability an arrival re-submits the recipient's previous alert
    #: (a duplicate copy from the same source) instead of a fresh one.
    duplicate_probability: float = 0.15
    #: Severity mix (the remainder is routine — the only shed-eligible
    #: class under the default admission config).
    important_probability: float = 0.15
    critical_probability: float = 0.05

    def __post_init__(self):
        if self.n_sources < 1:
            raise ConfigurationError(
                f"n_sources must be >= 1, got {self.n_sources}"
            )
        for name in ("duplicate_probability", "important_probability",
                     "critical_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value!r}"
                )

    @classmethod
    def from_dict(cls, data: dict) -> "StormConfig":
        """Rebuild from a JSON dict (reproducer replay); unknown keys are
        dropped so old pins survive new fields."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class StormEvent:
    """One storm arrival: which source hits which user, and how."""

    at: float
    source: int
    user: str
    severity: str
    #: Re-submit the user's previous alert from its original source
    #: instead of emitting a fresh one.
    duplicate: bool


class StormTrafficGenerator:
    """Sample a deterministic alert-storm event list for a fixed user set.

    Everything is drawn from one ``numpy`` generator seeded from
    ``(seed, storm-stream)``, so a (seed, config) pair always yields the
    identical traffic — and never perturbs the fault-schedule stream
    seeded from the bare run seed.
    """

    def __init__(
        self,
        seed: int,
        users: list[str],
        config: StormConfig | None = None,
        duration: float = 2 * HOUR,
        start: float = 5 * MINUTE,
    ):
        if not users:
            raise ConfigurationError("at least one user is required")
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.seed = int(seed)
        self.users = list(users)
        self.config = config if config is not None else StormConfig()
        self.duration = float(duration)
        self.start = float(start)
        self.rng = np.random.default_rng([self.seed, _STORM_STREAM])

    def burst_windows(self) -> list[BurstWindow]:
        """The shared burst windows every source's arrivals spike inside."""
        config = self.config
        latest = max(self.start, self.start + self.duration
                     - config.burst_duration)
        return [
            BurstWindow(
                start=float(self.rng.uniform(self.start, latest)),
                duration=config.burst_duration,
                rate=config.burst_rate,
            )
            for _ in range(config.n_bursts)
        ]

    def generate(self) -> list[StormEvent]:
        """One full storm: burst-shaped arrivals fanned over the sources."""
        config = self.config
        bursts = self.burst_windows()
        times = storm_arrival_times(
            self.rng, config.base_rate, self.duration, bursts, self.start
        )
        events = []
        for at in times:
            severity = "routine"
            roll = float(self.rng.random())
            if roll < config.critical_probability:
                severity = "critical"
            elif roll < config.critical_probability + config.important_probability:
                severity = "important"
            events.append(
                StormEvent(
                    at=float(at),
                    source=int(self.rng.integers(0, config.n_sources)),
                    user=self.users[
                        int(self.rng.integers(0, len(self.users)))
                    ],
                    severity=severity,
                    duplicate=bool(
                        self.rng.random() < config.duplicate_probability
                    ),
                )
            )
        return events
