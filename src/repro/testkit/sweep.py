"""``chaos_sweep``: seeded random search over fault schedules.

One sweep = N trials.  Each trial derives its own sub-seed from the sweep
seed, generates a schedule, replays it through :func:`~repro.testkit
.harness.run_chaos`, and records the oracle verdict.  Failing trials are
delta-debugged down to minimal reproducers (budgeted — each shrink probe
is a full run) which callers can pin via
:func:`~repro.testkit.schedule.dump_reproducer`.

Reproducibility contract: ``chaos_sweep(seed=N, ...)`` is bit-for-bit
deterministic — :meth:`ChaosSweepResult.fingerprint` over two sweeps with
identical arguments is identical.  Trials are mutually independent (each
builds its own world from its own sub-seed), so ``jobs > 1`` fans them
out across a :func:`~repro.testkit.parallel.fanout` process pool and
merges results in trial-index order: the merged sweep — fingerprint
included — is identical to the sequential one, it just finishes sooner.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.clock import HOUR, MINUTE
from repro.sim.failures import ScheduledFault
from repro.testkit.generator import ChaosIntensity, FaultScheduleGenerator
from repro.testkit.harness import ChaosReport, ChaosRunConfig, run_chaos
from repro.testkit.parallel import fanout
from repro.testkit.schedule import Reproducer, make_reproducer
from repro.testkit.shrink import ShrinkResult, shrink

#: Knuth-style multiplicative mix so trial sub-seeds are decorrelated.
_SEED_MIX = 2654435761


def trial_seed(sweep_seed: int, index: int) -> int:
    return (sweep_seed * _SEED_MIX + index * 97 + 1) % (2**31)


@dataclass
class ChaosTrial:
    """One generated schedule and its verdict."""

    index: int
    seed: int
    schedule_size: int
    ok: bool
    violations: list[str]
    fingerprint: str
    report: ChaosReport = field(repr=False, default=None)
    shrink_result: Optional[ShrinkResult] = field(repr=False, default=None)
    reproducer: Optional[Reproducer] = field(repr=False, default=None)


@dataclass
class ChaosSweepResult:
    """Every trial of one sweep plus the aggregate verdict."""

    seed: int
    trials: list[ChaosTrial] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.trials)

    @property
    def failures(self) -> list[ChaosTrial]:
        return [t for t in self.trials if not t.ok]

    def fingerprint(self) -> str:
        """Digest over every trial — the bit-for-bit reproducibility hook."""
        payload = {
            "seed": self.seed,
            "trials": [
                (t.index, t.seed, t.schedule_size, t.ok, t.fingerprint,
                 sorted(t.violations))
                for t in self.trials
            ],
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def summary(self) -> str:
        failed = self.failures
        lines = [
            f"chaos sweep seed={self.seed}: {len(self.trials)} trial(s), "
            f"{len(failed)} failing — fingerprint {self.fingerprint()[:16]}"
        ]
        for trial in self.trials:
            verdict = "PASS" if trial.ok else "FAIL"
            extra = ""
            if trial.shrink_result is not None:
                extra = (
                    f" (shrunk {trial.shrink_result.original_size} → "
                    f"{len(trial.shrink_result.schedule)} faults)"
                )
            lines.append(
                f"  trial {trial.index} [seed {trial.seed}]: {verdict}, "
                f"{trial.schedule_size} faults{extra}"
            )
        return "\n".join(lines)


@dataclass
class _TrialSpec:
    """Everything one worker needs to run one trial (fully picklable when
    ``intensity``/``stage_factory`` are — module-level factories qualify,
    closures do not)."""

    sweep_seed: int
    index: int
    sub_seed: int
    run_config: ChaosRunConfig
    n_users: int
    duration: float
    intensity: Optional[ChaosIntensity]
    stage_factory: Optional[Callable[[], list]]
    shrink_failures: bool
    shrink_budget: int
    trace: bool = False


def _run_trial(spec: _TrialSpec) -> ChaosTrial:
    """Run one seeded trial end to end (generate → replay → shrink)."""
    run_config = spec.run_config
    generator = FaultScheduleGenerator(
        seed=spec.sub_seed,
        users=[f"user{i}" for i in range(spec.n_users)],
        duration=spec.duration,
        start=run_config.start,
        intensity=spec.intensity,
        replication=run_config.replication,
    )
    schedule = generator.generate()
    report = run_chaos(
        schedule,
        run_config,
        stage_factory=spec.stage_factory,
        trace=spec.trace,
    )
    trial = ChaosTrial(
        index=spec.index,
        seed=spec.sub_seed,
        schedule_size=len(schedule),
        ok=report.ok,
        violations=[
            str(v)
            for v in (
                report.oracle.violations + report.oracle.trace_violations
            )
        ],
        fingerprint=report.fingerprint(),
        report=report,
    )
    if not report.ok and spec.shrink_failures and schedule:
        def still_fails(candidate: list[ScheduledFault]) -> bool:
            # Probes trace iff the trial did: a failure detected only by
            # the trace oracle must stay reproducible while shrinking.
            probe = run_chaos(
                candidate,
                run_config,
                stage_factory=spec.stage_factory,
                trace=spec.trace,
            )
            return not probe.ok

        trial.shrink_result = shrink(
            schedule, still_fails, max_trials=spec.shrink_budget
        )
        trial.reproducer = make_reproducer(
            report,
            trial.shrink_result.schedule,
            note=(
                f"sweep seed={spec.sweep_seed} trial={spec.index}: shrunk "
                f"{trial.shrink_result.original_size} → "
                f"{len(trial.shrink_result.schedule)} faults"
            ),
        )
    return trial


def chaos_sweep(
    seed: int = 0,
    trials: int = 5,
    n_users: int = 3,
    duration: float = 1 * HOUR,
    settle: float = 20 * MINUTE,
    intensity: Optional[ChaosIntensity] = None,
    config: Optional[ChaosRunConfig] = None,
    stage_factory: Optional[Callable[[], list]] = None,
    shrink_failures: bool = True,
    shrink_budget: int = 24,
    replication: Optional[bool] = None,
    jobs: Optional[int] = None,
    trace: bool = False,
) -> ChaosSweepResult:
    """Run ``trials`` random chaos trials; shrink whatever fails.

    ``config`` overrides the per-run parameters (its ``seed``, ``n_users``,
    ``duration`` are re-derived per trial); ``stage_factory`` plants a
    broken pipeline in every trial — the self-test path.  ``replication``
    flips warm-standby pairs on (or off) for every trial, overriding
    ``config.replication``; the generator then targets primaries, standbys
    and the ship link independently.

    ``jobs`` fans trials out across worker processes (None → the
    ``REPRO_SWEEP_JOBS`` environment default, 1 → sequential).  Results are
    merged in trial order and are identical to a sequential sweep's; with
    ``jobs > 1``, ``stage_factory``/``intensity`` must be picklable.

    ``trace`` runs every trial with a :class:`repro.obs.TraceSink` (it
    rides back on each ``trial.report.trace``) and folds the trace-backed
    invariants into each trial's verdict.  Fingerprints are unchanged —
    tracing is pure observation.
    """
    base = config if config is not None else ChaosRunConfig()
    specs = []
    for index in range(trials):
        sub_seed = trial_seed(seed, index)
        run_config = ChaosRunConfig(
            **{
                **base.__dict__,
                "seed": sub_seed,
                "n_users": n_users,
                "duration": duration,
                "settle": settle,
                **(
                    {"replication": replication}
                    if replication is not None
                    else {}
                ),
            }
        )
        specs.append(
            _TrialSpec(
                sweep_seed=seed,
                index=index,
                sub_seed=sub_seed,
                run_config=run_config,
                n_users=n_users,
                duration=duration,
                intensity=intensity,
                stage_factory=stage_factory,
                shrink_failures=shrink_failures,
                shrink_budget=shrink_budget,
                trace=trace,
            )
        )
    return ChaosSweepResult(
        seed=seed, trials=fanout(_run_trial, specs, jobs=jobs)
    )
