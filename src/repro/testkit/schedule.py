"""Serialize fault schedules and shrunk reproducers as JSON.

A failing chaos trial is only useful if it can be *pinned*: the shrunk
schedule plus the harness seed and parameters are written to a small JSON
file, committed under ``tests/data/chaos/``, and replayed forever after as
a regression test.  The format is deliberately plain — kind values (the
enum's string), floats, and the params dict — so pinned files stay
readable in review diffs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.sim.failures import FaultKind, ScheduledFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.testkit.harness import ChaosReport

FORMAT_VERSION = 1


def fault_to_dict(fault: ScheduledFault) -> dict[str, Any]:
    """Plain-JSON form of one fault."""
    row: dict[str, Any] = {
        "at": fault.at,
        "kind": fault.kind.value,
        "target": fault.target,
    }
    if fault.duration:
        row["duration"] = fault.duration
    if fault.params:
        row["params"] = dict(fault.params)
    return row


def fault_from_dict(row: dict[str, Any]) -> ScheduledFault:
    """Inverse of :func:`fault_to_dict` (raises on unknown kinds)."""
    try:
        kind = FaultKind(row["kind"])
    except ValueError as exc:
        raise ConfigurationError(f"unknown fault kind {row['kind']!r}") from exc
    return ScheduledFault(
        at=float(row["at"]),
        kind=kind,
        target=str(row["target"]),
        duration=float(row.get("duration", 0.0)),
        params=dict(row.get("params", {})),
    )


def schedule_to_json(schedule: list[ScheduledFault], indent: int | None = 1) -> str:
    """Byte-stable JSON for a whole schedule."""
    return json.dumps(
        [fault_to_dict(f) for f in schedule], indent=indent, sort_keys=True
    )


def schedule_from_json(text: str) -> list[ScheduledFault]:
    return [fault_from_dict(row) for row in json.loads(text)]


@dataclass
class Reproducer:
    """A pinned failing (or formerly failing) chaos scenario.

    ``violations`` records what the oracle reported when the reproducer
    was captured; a regression replay against the *fixed* pipeline must
    report none.
    """

    seed: int
    schedule: list[ScheduledFault]
    config: dict[str, Any] = field(default_factory=dict)
    note: str = ""
    violations: list[str] = field(default_factory=list)
    version: int = FORMAT_VERSION

    def to_json(self) -> str:
        payload = {
            "version": self.version,
            "seed": self.seed,
            "note": self.note,
            "config": self.config,
            "violations": list(self.violations),
            "schedule": [fault_to_dict(f) for f in self.schedule],
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Reproducer":
        payload = json.loads(text)
        return cls(
            seed=int(payload["seed"]),
            schedule=[fault_from_dict(r) for r in payload["schedule"]],
            config=dict(payload.get("config", {})),
            note=str(payload.get("note", "")),
            violations=list(payload.get("violations", [])),
            version=int(payload.get("version", FORMAT_VERSION)),
        )


def dump_reproducer(reproducer: Reproducer, path: str | Path) -> Path:
    """Write a reproducer JSON file (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(reproducer.to_json() + "\n")
    return path


def load_reproducer(path: str | Path) -> Reproducer:
    return Reproducer.from_json(Path(path).read_text())


def make_reproducer(
    report: "ChaosReport",
    schedule: list[ScheduledFault],
    note: str = "",
) -> Reproducer:
    """Capture a run's seed/config plus ``schedule`` (usually the shrunk one)."""
    config = asdict(report.config)
    return Reproducer(
        seed=report.config.seed,
        schedule=list(schedule),
        config=config,
        note=note,
        violations=[v.invariant for v in report.oracle.violations],
    )


def replay_reproducer(
    path: str | Path,
    stage_factory=None,
    trace: bool = False,
    overrides: dict[str, Any] | None = None,
) -> "ChaosReport":
    """Re-run a pinned scenario against the current pipeline.

    ``stage_factory`` re-injects a deliberately broken pipeline (to prove a
    pinned schedule still has teeth); None replays against the real stages,
    which is the regression direction CI runs.  ``trace`` replays with a
    :class:`repro.obs.TraceSink` installed (``report.trace``) — same run,
    same fingerprint, plus the causal span record.  ``overrides`` patches
    individual :class:`ChaosRunConfig` fields over the pinned ones — the
    adversarial teeth test replays its pin with ``{"transport": "naive"}``
    to prove the schedule still breaks the unprotected transport.
    """
    from repro.core.admission import AdmissionConfig
    from repro.net.adversary import AdversaryModel
    from repro.testkit.generator import StormConfig
    from repro.testkit.harness import ChaosRunConfig, run_chaos

    reproducer = load_reproducer(path)
    known = {f.name for f in ChaosRunConfig.__dataclass_fields__.values()}
    kwargs = {k: v for k, v in reproducer.config.items() if k in known}
    # Nested hardening configs land as plain dicts in the JSON pin.
    if isinstance(kwargs.get("admission"), dict):
        kwargs["admission"] = AdmissionConfig.from_dict(kwargs["admission"])
    if isinstance(kwargs.get("storm"), dict):
        kwargs["storm"] = StormConfig.from_dict(kwargs["storm"])
    if isinstance(kwargs.get("adversary"), dict):
        kwargs["adversary"] = AdversaryModel.from_dict(kwargs["adversary"])
    if overrides:
        kwargs.update(overrides)
    config = ChaosRunConfig(**kwargs)
    return run_chaos(
        reproducer.schedule,
        config,
        stage_factory=stage_factory,
        trace=trace,
    )
