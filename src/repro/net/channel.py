"""Shared channel machinery: latency models, outages, statistics.

Every concrete channel (IM, email, SMS) composes a :class:`LatencyModel`
(seeded, long-tailed), a loss probability, and an availability flag that the
fault injector can toggle to create outages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.errors import ChannelUnavailable, ConfigurationError
from repro.net.adversary import AdversaryModel, AdversaryStats, draw_effects
from repro.sim.rng import bounded_lognormal

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclass(frozen=True)
class LatencyModel:
    """Lognormal delivery-latency distribution, clipped to [low, high].

    The defaults of the three channels (see their modules) are calibrated so
    the benches land near the paper's figures: IM "typically less than one
    second", email/SMS "seconds to days".
    """

    median: float
    sigma: float
    low: float
    high: float

    def __post_init__(self):
        if self.median <= 0 or self.sigma < 0:
            raise ConfigurationError(
                f"invalid latency model median={self.median} sigma={self.sigma}"
            )
        if not 0 <= self.low <= self.high:
            raise ConfigurationError(
                f"invalid latency bounds [{self.low}, {self.high}]"
            )

    def draw(self, rng: np.random.Generator) -> float:
        """Sample one delivery latency in seconds."""
        if self.sigma == 0:
            return float(min(max(self.median, self.low), self.high))
        return bounded_lognormal(rng, self.median, self.sigma, self.low, self.high)


@dataclass
class ChannelStats:
    """Counters every channel keeps; benches read these directly."""

    submitted: int = 0
    delivered: int = 0
    lost: int = 0
    rejected: int = 0
    latencies: list[float] = field(default_factory=list)

    def record_delivery(self, latency: float) -> None:
        self.delivered += 1
        self.latencies.append(latency)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.mean(self.latencies))

    @property
    def delivery_ratio(self) -> float:
        if self.submitted == 0:
            return float("nan")
        return self.delivered / self.submitted


class ChannelBase:
    """Availability and outage handling common to all channels."""

    def __init__(self, env: "Environment", name: str):
        self.env = env
        self.name = name
        self.available = True
        self.stats = ChannelStats()
        self.adversary = AdversaryModel.off()
        self.adversary_stats = AdversaryStats()
        self._outage_listeners: list[Callable[[bool], None]] = []
        self._outage_until: Optional[float] = None
        self._adversary_until: Optional[float] = None
        self._adversary_baseline = AdversaryModel.off()

    def on_availability_change(self, listener: Callable[[bool], None]) -> None:
        """Register a callback invoked with the new availability state."""
        self._outage_listeners.append(listener)

    def set_available(self, available: bool) -> None:
        """Flip channel availability (fault-injection hook)."""
        if available == self.available:
            return
        self.available = available
        for listener in list(self._outage_listeners):
            listener(available)

    def outage(self, duration: float) -> None:
        """Take the channel down for ``duration`` simulated seconds.

        Overlapping outages extend each other rather than reviving the
        channel early.
        """
        if duration <= 0:
            raise ConfigurationError(f"outage duration must be > 0, got {duration}")
        end = self.env.now + duration
        if self._outage_until is not None and self._outage_until >= end:
            return
        first = self._outage_until is None or self._outage_until <= self.env.now
        self._outage_until = end
        if first:
            self.set_available(False)
            self.env.process(self._outage_timer(), name=f"{self.name}-outage")

    def _outage_timer(self):
        # Extension-aware sleep under a TimerScope: each extension re-arms
        # a fresh scope-owned timer, and killing the channel's host while
        # an outage is pending settles the timer with the process.
        with self.env.timers() as timers:
            while (
                self._outage_until is not None
                and self.env.now < self._outage_until
            ):
                yield timers.acquire(self._outage_until - self.env.now)
        self._outage_until = None
        self.set_available(True)

    def set_adversary(self, model: AdversaryModel) -> None:
        """Install ``model`` as this channel's *ambient* adversary (fault
        hook); pulses layer on top and revert to it when they expire."""
        self.adversary = model
        self._adversary_baseline = model

    def adversary_pulse(self, model: AdversaryModel, duration: float) -> None:
        """Run ``model`` for ``duration`` simulated seconds, then revert to
        the ambient adversary.  Overlapping pulses extend the window (the
        latest model wins), mirroring :meth:`outage` semantics.
        """
        if duration <= 0:
            raise ConfigurationError(
                f"adversary pulse duration must be > 0, got {duration}"
            )
        end = self.env.now + duration
        self.adversary = model
        if self._adversary_until is not None and self._adversary_until >= end:
            return
        first = (
            self._adversary_until is None
            or self._adversary_until <= self.env.now
        )
        self._adversary_until = end
        if first:
            self.env.process(
                self._adversary_timer(), name=f"{self.name}-adversary"
            )

    def _adversary_timer(self):
        with self.env.timers() as timers:
            while (
                self._adversary_until is not None
                and self.env.now < self._adversary_until
            ):
                yield timers.acquire(self._adversary_until - self.env.now)
        self._adversary_until = None
        self.adversary = self._adversary_baseline

    def _adversary_effects(
        self, rng, copy: bool = False
    ) -> tuple[float, int, bool]:
        """Draw this send's (extra delay, extra copies, corrupt flag)."""
        return draw_effects(self.adversary, rng, self.adversary_stats, copy)

    def _require_available(self) -> None:
        if not self.available:
            self.stats.rejected += 1
            raise ChannelUnavailable(f"channel {self.name!r} is down")

    def _trace_transit(self, message, outcome: str) -> None:
        """Record the message's in-flight interval as a retroactive span.

        Channels know a message's fate only at the *end* of its transit, so
        the span is opened with ``start=message.created_at`` and closed at
        ``env.now`` in one step.  Requires ``env.tracer`` — call sites guard
        on that so the disabled path stays one slot load.
        """
        tracer = self.env.tracer
        if tracer is None or message.correlation is None:
            return
        span = tracer.begin(
            message.correlation,
            f"transit.{message.channel.value}",
            parent=message.trace_parent,
            start=message.created_at,
            recipient=message.recipient,
        )
        tracer.end(span, outcome)
