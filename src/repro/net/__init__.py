"""Communication substrates: IM, email and SMS channels.

The paper's dependability argument rests on the *shape* of three channels:

- **IM** — sub-second, synchronous, presence-aware, supports application-level
  acknowledgements, but requires the recipient to be logged in and suffers
  extended service outages.
- **Email** — store-and-forward, always accepts a submission, but delivery
  time is unpredictable ("seconds to days") and unacknowledged.
- **SMS** — carrier-queued, similar unpredictability to email, and the
  address (phone number) is privacy-sensitive.

Each channel draws its per-message latency from a seeded long-tailed
distribution and exposes outage/loss injection hooks used by the
fault-tolerance experiments.
"""

from repro.net.adversary import AdversaryModel, AdversaryStats
from repro.net.channel import ChannelStats, LatencyModel
from repro.net.email import EmailMessage, EmailService
from repro.net.im import IMMessage, IMService, IMSession
from repro.net.message import ChannelType, Message
from repro.net.presence import PresenceService
from repro.net.sms import SMSGateway, SMSMessage

__all__ = [
    "AdversaryModel",
    "AdversaryStats",
    "ChannelStats",
    "ChannelType",
    "EmailMessage",
    "EmailService",
    "IMMessage",
    "IMService",
    "IMSession",
    "LatencyModel",
    "Message",
    "PresenceService",
    "SMSGateway",
    "SMSMessage",
]
