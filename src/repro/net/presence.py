"""Presence service for the IM substrate.

IM services "do provide presence" (§3.1): before routing through an IM
action, SIMBA can ask whether the target address is online.  The presence
service is also how outages manifest — when the IM service goes down, every
address is reported offline and sessions are force-logged-out.
"""

from __future__ import annotations

from typing import Callable


class PresenceService:
    """Tracks online/offline status per IM address."""

    def __init__(self):
        self._online: set[str] = set()
        self._watchers: list[Callable[[str, bool], None]] = []

    def set_online(self, address: str, online: bool) -> None:
        before = address in self._online
        if online:
            self._online.add(address)
        else:
            self._online.discard(address)
        if before != online:
            for watcher in list(self._watchers):
                watcher(address, online)

    def is_online(self, address: str) -> bool:
        return address in self._online

    def online_addresses(self) -> frozenset[str]:
        return frozenset(self._online)

    def watch(self, callback: Callable[[str, bool], None]) -> None:
        """Register ``callback(address, online)`` for presence transitions."""
        self._watchers.append(callback)
