"""Cell-carrier SMS gateway.

"Our experience with the cell phone SMS delivery time with a large carrier
shows a similar range of unpredictability" to email (§3.1).  The gateway
queues messages per phone, draws long-tailed delivery latency, and loses a
small fraction.  A phone can be marked unreachable (battery dead, out of
coverage) — the scenario §3.3 uses to motivate temporarily disabling the SMS
address at MyAlertBuddy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.channel import ChannelBase, LatencyModel
from repro.net.message import ChannelType, Message
from repro.sim.stores import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: Median ~1 min, tail to days: "a similar range of unpredictability" (§3.1).
DEFAULT_SMS_LATENCY = LatencyModel(median=60.0, sigma=1.7, low=3.0, high=172800.0)
DEFAULT_SMS_LOSS = 0.02


@dataclass
class SMSMessage(Message):
    """A short message; bodies are truncated to the SMS length limit."""


class Phone:
    """A handset: an inbox plus a reachability flag."""

    def __init__(self, env: "Environment", number: str):
        self.env = env
        self.number = number
        self.inbox: Store = Store(env)
        self.reachable = True

    def receive(self, predicate=None):
        return self.inbox.get(predicate)


class SMSGateway(ChannelBase):
    """Carrier gateway switching SMS messages to registered phones."""

    #: GSM single-segment limit; longer alert bodies are truncated, which is
    #: one more reason SMS alone is a poor channel for rich alerts.
    MAX_LENGTH = 160

    def __init__(
        self,
        env: "Environment",
        rng: np.random.Generator,
        latency: LatencyModel = DEFAULT_SMS_LATENCY,
        loss_probability: float = DEFAULT_SMS_LOSS,
        name: str = "sms",
    ):
        super().__init__(env, name)
        self.rng = rng
        self.latency = latency
        self.loss_probability = loss_probability
        self._phones: dict[str, Phone] = {}

    def phone(self, number: str) -> Phone:
        """Return (creating on first use) the handset for ``number``."""
        if number not in self._phones:
            self._phones[number] = Phone(self.env, number)
        return self._phones[number]

    def set_reachable(self, number: str, reachable: bool) -> None:
        """Coverage/battery hook: unreachable phones never receive messages."""
        self.phone(number).reachable = reachable

    def send(
        self,
        sender: str,
        to: str,
        body: str,
        correlation: Optional[str] = None,
    ) -> SMSMessage:
        """Submit an SMS.  The gateway accepts even for unreachable phones —
        the sender cannot tell; the message is simply never delivered, which
        is why blanket SMS redundancy gives no delivery guarantee (§2.3)."""
        self._require_available()
        message = SMSMessage(
            channel=ChannelType.SMS,
            sender=sender,
            recipient=to,
            body=body[: self.MAX_LENGTH],
            created_at=self.env.now,
            correlation=correlation,
        )
        self.stats.submitted += 1
        self.env.process(
            self._deliver(message), name=f"sms-deliver-{message.message_id}"
        )
        return message

    def _deliver(self, message: SMSMessage, duplicate: bool = False):
        # Transit time rides on a scope-owned timer so an interrupted
        # delivery process never leaves its in-flight entry queued.
        extra_delay, extra_copies, corrupt = self._adversary_effects(
            self.rng, copy=duplicate
        )
        for index in range(extra_copies):
            self.env.process(
                self._deliver(replace(message), duplicate=True),
                name=f"sms-dup-{message.message_id}-{index}",
            )
        with self.env.timers() as timers:
            yield timers.acquire(self.latency.draw(self.rng) + extra_delay)
        phone = self.phone(message.recipient)
        if not phone.reachable:
            if not duplicate:
                self.stats.lost += 1
                if self.env.tracer is not None:
                    self._trace_transit(message, "lost")
            return
        if self.loss_probability and self.rng.random() < self.loss_probability:
            if not duplicate:
                self.stats.lost += 1
                if self.env.tracer is not None:
                    self._trace_transit(message, "lost")
            return
        if corrupt:
            message = replace(message, corrupt=True)
        yield phone.inbox.put(message)
        if duplicate:
            self.adversary_stats.duplicates_delivered += 1
            return
        self.stats.record_delivery(self.env.now - message.created_at)
        if self.env.tracer is not None:
            self._trace_transit(message, "delivered")
