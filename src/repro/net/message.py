"""Message envelopes shared by all channels.

SIMBA's subscription layer tags addresses with a communication type —
``"IM"``, ``"SMS"`` or ``"EM"`` (§4.1) — so the same constants name both
address types and the channels that serve them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class ChannelType(enum.Enum):
    """The paper's three communication types (§4.1 XML address schema)."""

    IM = "IM"
    EMAIL = "EM"
    SMS = "SMS"

    @classmethod
    def from_tag(cls, tag: str) -> "ChannelType":
        """Parse a type tag as written in address XML ('IM', 'EM', 'SMS')."""
        for member in cls:
            if member.value == tag:
                return member
        raise ValueError(f"unknown communication type tag {tag!r}")


_message_ids = itertools.count(1)


@dataclass
class Message:
    """A message in flight on some channel.

    ``correlation`` carries the originating alert id end-to-end so metrics
    can compute per-alert latency across multi-hop routes, and so the user
    endpoint can detect duplicate deliveries by (alert id, origin timestamp)
    as §4.2.1 prescribes.
    """

    channel: ChannelType
    sender: str
    recipient: str
    body: str
    subject: str = ""
    created_at: float = 0.0
    correlation: Optional[str] = None
    headers: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))
    #: Flagged at receive time when the adversary flipped bits in flight —
    #: the receiver's checksum failed, so the payload must not be trusted.
    corrupt: bool = False
    #: Tracing only: span id of the delivery block (or ack) that submitted
    #: this message, so the channel's retroactive transit span and the
    #: receiver's receive span parent correctly.  None when tracing is off.
    trace_parent: Optional[int] = None

    def reply_body(self, body: str) -> "Message":
        """Build a reply on the same channel with sender/recipient swapped."""
        return Message(
            channel=self.channel,
            sender=self.recipient,
            recipient=self.sender,
            body=body,
            subject=f"Re: {self.subject}" if self.subject else "",
            correlation=self.correlation,
        )
