"""Instant Messaging service: presence, sessions, sequence numbers.

SIMBA uses IM as the universal, reliable alert channel: delivery is
sub-second, the service knows who is online, and receivers send
application-level acknowledgements "tagged with IM message sequence numbers"
(§3.1).  This module models the *service*: accounts, login sessions with an
inbox, per-session outgoing sequence numbers, latency/loss, and outages that
force-log-out every session (the paper's "extended IM downtimes").

Acknowledgement logic itself lives in the SIMBA library (application level),
exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import (
    AddressUnknownError,
    ChannelUnavailable,
    DeliveryFailure,
)
from repro.net.channel import ChannelBase, LatencyModel
from repro.net.message import ChannelType, Message
from repro.net.presence import PresenceService
from repro.sim.stores import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: Calibrated so one-way delivery is "typically less than one second" (§5).
DEFAULT_IM_LATENCY = LatencyModel(median=0.4, sigma=0.45, low=0.05, high=8.0)


@dataclass
class IMMessage(Message):
    """An IM with the service-assigned per-session sequence number."""

    seq: int = 0


class IMSession:
    """A logged-in connection for one address.

    The session owns an inbox :class:`Store`; receiving is ``yield
    session.receive()``.  A force-logout (outage, server recovery, injected
    fault) invalidates the session: subsequent sends raise
    :class:`~repro.errors.NotLoggedInError`-adjacent channel errors and
    pending messages are dropped.
    """

    def __init__(self, service: "IMService", address: str):
        self.service = service
        self.address = address
        self.inbox: Store = Store(service.env)
        self.active = True
        self._next_seq = 1

    def allocate_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def send(
        self,
        to: str,
        body: str,
        subject: str = "",
        correlation: Optional[str] = None,
    ) -> IMMessage:
        """Submit an IM to ``to``; returns the message with its seq number."""
        return self.service.send(self, to, body, subject, correlation)

    def receive(self, predicate=None):
        """Event yielding the next inbox message (optionally filtered)."""
        return self.inbox.get(predicate)

    def logout(self) -> None:
        self.service.logout(self)

    def __repr__(self) -> str:
        state = "active" if self.active else "dead"
        return f"<IMSession {self.address!r} {state}>"


class IMService(ChannelBase):
    """The IM server: accounts, presence, message switching."""

    def __init__(
        self,
        env: "Environment",
        rng: np.random.Generator,
        latency: LatencyModel = DEFAULT_IM_LATENCY,
        loss_probability: float = 0.0,
        name: str = "im",
    ):
        super().__init__(env, name)
        self.rng = rng
        self.latency = latency
        self.loss_probability = loss_probability
        self.presence = PresenceService()
        self._accounts: set[str] = set()
        self._sessions: dict[str, IMSession] = {}

    # ------------------------------------------------------------------
    # Accounts and sessions
    # ------------------------------------------------------------------

    def register_account(self, address: str) -> None:
        """Create an IM account (idempotent)."""
        self._accounts.add(address)

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def login(self, address: str) -> IMSession:
        """Log ``address`` in, force-logging-out any prior session."""
        self._require_available()
        if address not in self._accounts:
            raise AddressUnknownError(f"no IM account for {address!r}")
        previous = self._sessions.get(address)
        if previous is not None:
            self._kill_session(previous)
        session = IMSession(self, address)
        self._sessions[address] = session
        self.presence.set_online(address, True)
        return session

    def logout(self, session: IMSession) -> None:
        """Orderly logout; safe to call on an already-dead session."""
        if self._sessions.get(session.address) is session:
            del self._sessions[session.address]
            self.presence.set_online(session.address, False)
        session.active = False

    def force_logout(self, address: str) -> bool:
        """Server-side logout (fault hook).  Returns True if a session died."""
        session = self._sessions.get(address)
        if session is None:
            return False
        self._kill_session(session)
        return True

    def session_for(self, address: str) -> Optional[IMSession]:
        return self._sessions.get(address)

    def _kill_session(self, session: IMSession) -> None:
        session.active = False
        del self._sessions[session.address]
        self.presence.set_online(session.address, False)
        session.inbox.clear()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(
        self,
        session: IMSession,
        to: str,
        body: str,
        subject: str = "",
        correlation: Optional[str] = None,
    ) -> IMMessage:
        """Switch one IM from ``session`` to address ``to``.

        Raises :class:`ChannelUnavailable` if the service is down or the
        sender's session has been invalidated, and :class:`DeliveryFailure`
        if the recipient is not online (IM is synchronous: there is no
        offline spool — that is exactly why SIMBA needs an email fallback).
        """
        self._require_available()
        if not session.active or self._sessions.get(session.address) is not session:
            self.stats.rejected += 1
            raise ChannelUnavailable(
                f"session for {session.address!r} is no longer logged in"
            )
        if not self.presence.is_online(to):
            self.stats.rejected += 1
            raise DeliveryFailure(f"IM recipient {to!r} is offline")
        message = IMMessage(
            channel=ChannelType.IM,
            sender=session.address,
            recipient=to,
            body=body,
            subject=subject,
            created_at=self.env.now,
            correlation=correlation,
            seq=session.allocate_seq(),
        )
        self.stats.submitted += 1
        self.env.process(self._deliver(message), name=f"im-deliver-{message.seq}")
        return message

    def _deliver(self, message: IMMessage, duplicate: bool = False):
        # Transit time rides on a scope-owned timer so an interrupted
        # delivery process never leaves its in-flight entry queued.
        extra_delay, extra_copies, corrupt = self._adversary_effects(
            self.rng, copy=duplicate
        )
        for index in range(extra_copies):
            self.env.process(
                self._deliver(replace(message), duplicate=True),
                name=f"im-dup-{message.seq}-{index}",
            )
        with self.env.timers() as timers:
            yield timers.acquire(self.latency.draw(self.rng) + extra_delay)
        if self.loss_probability and self.rng.random() < self.loss_probability:
            if not duplicate:
                self.stats.lost += 1
                if self.env.tracer is not None:
                    self._trace_transit(message, "lost")
            return
        target = self._sessions.get(message.recipient)
        if target is None or not self.available:
            # Recipient logged out (or service died) while the IM was in
            # flight; synchronous IM has nowhere to park it.
            if not duplicate:
                self.stats.lost += 1
                if self.env.tracer is not None:
                    self._trace_transit(message, "lost")
            return
        if corrupt:
            message = replace(message, corrupt=True)
        yield target.inbox.put(message)
        if duplicate:
            # Duplicate copies ride the adversary counters only, keeping
            # the primary stream's submitted == delivered + lost exact.
            self.adversary_stats.duplicates_delivered += 1
            return
        self.stats.record_delivery(self.env.now - message.created_at)
        if self.env.tracer is not None:
            self._trace_transit(message, "delivered")

    # ------------------------------------------------------------------
    # Outages
    # ------------------------------------------------------------------

    def set_available(self, available: bool) -> None:
        if not available:
            for session in list(self._sessions.values()):
                self._kill_session(session)
        super().set_available(available)
