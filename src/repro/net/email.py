"""Store-and-forward email substrate.

"It is well understood that email delivery is not guaranteed to be reliable,
and the unpredictable delivery time can range from seconds to days" (§3.1).
We model exactly that: submission always succeeds while the relay is up,
delivery happens after a long-tailed latency draw, a small fraction of
messages is silently lost, and mailboxes exist independently of whether the
owner is "online" (unlike IM).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.channel import ChannelBase, LatencyModel
from repro.net.message import ChannelType, Message
from repro.sim.stores import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: Median ~1.5 min with a heavy tail reaching days; "the unpredictable
#: delivery time can range from seconds to days" (§3.1).
DEFAULT_EMAIL_LATENCY = LatencyModel(median=90.0, sigma=1.6, low=3.0, high=259200.0)
DEFAULT_EMAIL_LOSS = 0.01


@dataclass
class EmailMessage(Message):
    """An email; ``headers['importance']`` carries the importance flag."""


class Mailbox:
    """A recipient mailbox: a Store plus a read archive.

    ``receive()`` consumes the next unread message (blocking); ``unread``
    peeks without consuming (used by MAB's backlog invariant check).
    """

    def __init__(self, env: "Environment", address: str):
        self.env = env
        self.address = address
        self._unread: Store = Store(env)
        self.read: list[EmailMessage] = []

    @property
    def unread_count(self) -> int:
        return len(self._unread)

    def peek_unread(self) -> list[EmailMessage]:
        return list(self._unread.items)

    def deposit(self, message: EmailMessage):
        return self._unread.put(message)

    def receive(self, predicate=None):
        """Event yielding the next unread message (it is marked read)."""
        get_event = self._unread.get(predicate)
        get_event.callbacks.append(
            lambda evt: self.read.append(evt.value) if evt.ok else None
        )
        return get_event

    def put_back(self, message: "EmailMessage") -> None:
        """Return a received message to the head of the unread queue.

        Used by stale consumers handing work to their successor; undoes the
        read-marking that :meth:`receive` performed.
        """
        if message in self.read:
            self.read.remove(message)
        self._unread.put_front(message)


class EmailService(ChannelBase):
    """SMTP-like relay network with per-address mailboxes."""

    def __init__(
        self,
        env: "Environment",
        rng: np.random.Generator,
        latency: LatencyModel = DEFAULT_EMAIL_LATENCY,
        loss_probability: float = DEFAULT_EMAIL_LOSS,
        name: str = "email",
    ):
        super().__init__(env, name)
        self.rng = rng
        self.latency = latency
        self.loss_probability = loss_probability
        self._mailboxes: dict[str, Mailbox] = {}

    def mailbox(self, address: str) -> Mailbox:
        """Return (creating on first use) the mailbox for ``address``."""
        if address not in self._mailboxes:
            self._mailboxes[address] = Mailbox(self.env, address)
        return self._mailboxes[address]

    def send(
        self,
        sender: str,
        to: str,
        subject: str,
        body: str,
        correlation: Optional[str] = None,
        importance: str = "normal",
    ) -> EmailMessage:
        """Submit an email.  Raises ChannelUnavailable only if the relay is down."""
        self._require_available()
        message = EmailMessage(
            channel=ChannelType.EMAIL,
            sender=sender,
            recipient=to,
            subject=subject,
            body=body,
            created_at=self.env.now,
            correlation=correlation,
            headers={"importance": importance},
        )
        self.stats.submitted += 1
        self.env.process(
            self._deliver(message), name=f"email-deliver-{message.message_id}"
        )
        return message

    def _deliver(self, message: EmailMessage, duplicate: bool = False):
        # Transit time rides on a scope-owned timer so an interrupted
        # delivery process never leaves its in-flight entry queued.
        extra_delay, extra_copies, corrupt = self._adversary_effects(
            self.rng, copy=duplicate
        )
        for index in range(extra_copies):
            self.env.process(
                self._deliver(replace(message), duplicate=True),
                name=f"email-dup-{message.message_id}-{index}",
            )
        with self.env.timers() as timers:
            yield timers.acquire(self.latency.draw(self.rng) + extra_delay)
        if self.loss_probability and self.rng.random() < self.loss_probability:
            if not duplicate:
                self.stats.lost += 1
                if self.env.tracer is not None:
                    self._trace_transit(message, "lost")
            return
        if corrupt:
            message = replace(message, corrupt=True)
        yield self.mailbox(message.recipient).deposit(message)
        if duplicate:
            self.adversary_stats.duplicates_delivered += 1
            return
        self.stats.record_delivery(self.env.now - message.created_at)
        if self.env.tracer is not None:
            self._trace_transit(message, "delivered")
