"""Adversarial channel behaviour: reordering, duplication, corruption.

The substrates model benign failure — outage, delay, loss.  Real IM/email/SMS
backbones and WAN replication links also *reorder* packets (a later send
overtakes an earlier one), *duplicate* them (retransmit amplification), and
*corrupt* them in flight (flagged here at receive time, the way a failed
checksum is).  Dolev, Dubois, Potop-Butucaru & Tixeuil's stabilizing
exactly-once results are stated against exactly this adversary: an unreliable
non-FIFO duplicating channel.

An :class:`AdversaryModel` is attached to any :class:`~repro.net.channel.
ChannelBase`.  The off model draws **no** random numbers, so enabling the
machinery without turning any knob leaves every existing seeded run
byte-identical — the same inertness contract `AdmissionConfig.permissive()`
honours.  All draws come from the owning channel's component RNG stream, so
adversarial schedules are bit-reproducible and shrinkable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

#: Knob preset used by the chaos generator's adversarial pulses when a
#: scheduled fault does not carry explicit parameters.
DEFAULT_PULSE_REORDER = 0.25
DEFAULT_PULSE_DUPLICATE = 0.25
DEFAULT_PULSE_CORRUPT = 0.15
DEFAULT_REORDER_HORIZON = 2.0
DEFAULT_DUPLICATE_MAX = 3


@dataclass(frozen=True)
class AdversaryModel:
    """Per-channel adversary knobs; all zero means benign (and draw-free).

    ``reorder_probability``
        Chance a copy is held back an extra ``U(0, reorder_horizon]``
        seconds — enough for later sends to overtake it (latency inversion
        with a bounded horizon, never unbounded reordering).
    ``duplicate_probability``
        Chance a send is amplified into extra copies.  The copy count is
        drawn so the *total* number of copies lands in
        ``[2, duplicate_max]``; each copy gets an independent latency (and
        reorder/corruption) draw.
    ``corrupt_probability``
        Chance an arriving copy is flagged corrupt — the bit-flip itself is
        not simulated byte-by-byte; the flag models a failed checksum at
        receive time.
    """

    reorder_probability: float = 0.0
    reorder_horizon: float = DEFAULT_REORDER_HORIZON
    duplicate_probability: float = 0.0
    duplicate_max: int = DEFAULT_DUPLICATE_MAX
    corrupt_probability: float = 0.0

    def __post_init__(self):
        for knob in ("reorder_probability", "duplicate_probability",
                     "corrupt_probability"):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{knob} must be in [0, 1], got {value!r}"
                )
        if self.reorder_horizon < 0:
            raise ConfigurationError(
                f"reorder horizon must be >= 0, got {self.reorder_horizon!r}"
            )
        if self.duplicate_max < 1:
            raise ConfigurationError(
                f"duplicate_max must be >= 1, got {self.duplicate_max!r}"
            )

    @classmethod
    def off(cls) -> "AdversaryModel":
        """The benign adversary: no knob set, no RNG ever drawn."""
        return cls()

    @classmethod
    def pulse(cls) -> "AdversaryModel":
        """The default mid-run pulse the chaos generator injects."""
        return cls(
            reorder_probability=DEFAULT_PULSE_REORDER,
            duplicate_probability=DEFAULT_PULSE_DUPLICATE,
            corrupt_probability=DEFAULT_PULSE_CORRUPT,
        )

    @property
    def enabled(self) -> bool:
        return bool(
            self.reorder_probability
            or self.duplicate_probability
            or self.corrupt_probability
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AdversaryModel":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class AdversaryStats:
    """Injection-side counters, separate from :class:`ChannelStats` so the
    ``submitted == delivered + lost`` primary-stream invariant stays exact."""

    reordered: int = 0
    duplicates_injected: int = 0
    duplicates_delivered: int = 0
    corrupt_injected: int = 0


def draw_effects(
    model: AdversaryModel,
    rng: np.random.Generator,
    stats: AdversaryStats,
    copy: bool = False,
) -> tuple[float, int, bool]:
    """Draw ``(extra_delay, extra_copies, corrupt)`` for one send.

    The draw order is fixed (reorder, duplicate, corrupt) and the off model
    short-circuits before any draw — that is the byte-identity contract.
    ``copy=True`` is a duplicate copy drawing its own reorder/corruption;
    copies never re-duplicate.
    """
    if not model.enabled:
        return 0.0, 0, False
    extra_delay = 0.0
    extra_copies = 0
    corrupt = False
    if model.reorder_probability and rng.random() < model.reorder_probability:
        extra_delay = model.reorder_horizon * float(rng.random())
        stats.reordered += 1
    if (
        not copy
        and model.duplicate_probability
        and model.duplicate_max > 1
        and rng.random() < model.duplicate_probability
    ):
        extra_copies = int(rng.integers(1, model.duplicate_max))
        stats.duplicates_injected += extra_copies
    if model.corrupt_probability and rng.random() < model.corrupt_probability:
        corrupt = True
        stats.corrupt_injected += 1
    return extra_delay, extra_copies, corrupt
