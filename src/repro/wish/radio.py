"""RF signal propagation model (RADAR-style log-distance path loss).

Received power at distance ``d`` from a transmitter::

    P(d) = p0 - 10 * n * log10(max(d, d0) / d0)  [+ shadowing noise]

with ``p0`` the power at reference distance ``d0`` and ``n`` the path-loss
exponent (~2 free space, 3-4 indoors).  The WISH server uses the noiseless
model for its fingerprint table; clients measure with lognormal shadowing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

#: Below this received power the AP is simply not heard.
DEFAULT_SENSITIVITY_DBM = -90.0


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional Gaussian shadowing."""

    p0_dbm: float = -30.0
    d0: float = 1.0
    exponent: float = 3.0
    shadowing_sigma_db: float = 3.0
    sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM

    def __post_init__(self):
        if self.d0 <= 0:
            raise ConfigurationError(f"reference distance must be > 0, got {self.d0}")
        if self.exponent <= 0:
            raise ConfigurationError(
                f"path-loss exponent must be > 0, got {self.exponent}"
            )
        if self.shadowing_sigma_db < 0:
            raise ConfigurationError("shadowing sigma must be >= 0")

    def mean_power(self, distance: float) -> float:
        """Noiseless received power in dBm at ``distance`` metres."""
        effective = max(distance, self.d0)
        return self.p0_dbm - 10.0 * self.exponent * math.log10(
            effective / self.d0
        )

    def measure(
        self, distance: float, rng: Optional[np.random.Generator] = None
    ) -> Optional[float]:
        """One noisy measurement; None when below receiver sensitivity."""
        power = self.mean_power(distance)
        if rng is not None and self.shadowing_sigma_db > 0:
            power += float(rng.normal(0.0, self.shadowing_sigma_db))
        if power < self.sensitivity_dbm:
            return None
        return power


def signal_distance(
    sample_a: dict[str, float],
    sample_b: dict[str, float],
    missing_dbm: float = DEFAULT_SENSITIVITY_DBM,
) -> float:
    """Euclidean distance between two signal-space samples.

    APs missing from one sample count as being at the sensitivity floor —
    not hearing an AP is informative.
    """
    keys = set(sample_a) | set(sample_b)
    if not keys:
        return 0.0
    total = 0.0
    for key in keys:
        a = sample_a.get(key, missing_dbm)
        b = sample_b.get(key, missing_dbm)
        total += (a - b) ** 2
    return math.sqrt(total)
