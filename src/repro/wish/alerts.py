"""The WISH location alert service (§2.4).

"A user of the alert service specifies the name of the person to track and
the address for alert delivery.  An alert can be generated when the tracked
person enters a building, moves to a different part of the building, and/or
leaves the building."

Privacy (§2.4: dissemination is "solely with the user"): a tracking request
is only honoured if the tracked person has authorized the requester.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.aladdin.sss import SSSEvent, SSSEventKind
from repro.core.addresses import AddressBook
from repro.core.alert import AlertSeverity
from repro.core.endpoint import SimbaEndpoint
from repro.errors import SimbaError
from repro.sources.base import AlertSource
from repro.wish.floorplan import FloorPlan
from repro.wish.server import USER_TYPE, WISHServer

from typing import TYPE_CHECKING, Optional

from repro.net.channel import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: Web-service overhead: matching the transition against subscriptions and
#: assembling the alert.
SERVICE_PROCESSING = LatencyModel(median=0.6, sigma=0.25, low=0.1, high=3.0)


class NotAuthorized(SimbaError):
    """The tracked person has not authorized this requester."""


class LocationTrigger(enum.Enum):
    ENTER_BUILDING = "enter_building"
    LEAVE_BUILDING = "leave_building"
    MOVE_REGION = "move_region"


@dataclass
class TrackingRequest:
    requester: str
    tracked: str
    triggers: frozenset[LocationTrigger]
    target_book: AddressBook
    alerts_sent: int = 0


@dataclass
class _TrackState:
    last_region: Optional[str] = None
    requests: list[TrackingRequest] = field(default_factory=list)


class WISHAlertService(AlertSource):
    """Web front end turning location transitions into SIMBA alerts."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        endpoint: SimbaEndpoint,
        server: WISHServer,
        mode=None,
    ):
        super().__init__(env, name, endpoint, mode=mode)
        self.server = server
        self.plan = server.plan
        # Reuse the shared source pipeline for the web-service processing
        # delay: every delivery pays SERVICE_PROCESSING before the mode runs.
        self.pipeline.processing = SERVICE_PROCESSING
        self.pipeline.rng = server.rng
        #: tracked person → set of requesters they allow.
        self._authorized: dict[str, set[str]] = {}
        self._tracks: dict[str, _TrackState] = {}
        #: alert_id → time the triggering client report left the laptop
        #: (the §5 end-to-end anchor for the 5 s measurement).
        self.provenance: dict[str, float] = {}
        server.store.subscribe(self._on_store_event, type_name=USER_TYPE)

    # ------------------------------------------------------------------
    # Authorization + requests
    # ------------------------------------------------------------------

    def authorize(self, tracked: str, requester: str) -> None:
        """The tracked person grants ``requester`` visibility."""
        self._authorized.setdefault(tracked, set()).add(requester)

    def revoke(self, tracked: str, requester: str) -> None:
        self._authorized.get(tracked, set()).discard(requester)

    def request_tracking(
        self,
        requester: str,
        tracked: str,
        triggers: set[LocationTrigger],
        target_book: AddressBook,
    ) -> TrackingRequest:
        """Enter a location-alert subscription (the Web form of §2.4)."""
        if requester not in self._authorized.get(tracked, set()):
            raise NotAuthorized(
                f"{tracked!r} has not authorized {requester!r} to track them"
            )
        request = TrackingRequest(
            requester=requester,
            tracked=tracked,
            triggers=frozenset(triggers),
            target_book=target_book,
        )
        self._tracks.setdefault(tracked, _TrackState()).requests.append(request)
        return request

    # ------------------------------------------------------------------
    # Store events → alerts
    # ------------------------------------------------------------------

    def _on_store_event(self, event: SSSEvent) -> None:
        if event.kind not in (SSSEventKind.CHANGED, SSSEventKind.CREATED):
            return
        user = event.variable.removeprefix("wish.user.")
        state = self._tracks.get(user)
        if state is None:
            return
        region = event.value["region"]
        previous = state.last_region
        state.last_region = region
        if previous is None or previous == region:
            return
        trigger = self._classify_transition(previous, region)
        confidence = event.value.get("confidence", 0.0)
        sent_at = event.value.get("report_sent_at", event.at)
        for request in state.requests:
            if trigger in request.triggers:
                request.alerts_sent += 1
                self._emit_to(
                    request,
                    trigger,
                    f"{user}: {previous} -> {region} "
                    f"(confidence {confidence}%)",
                    report_sent_at=sent_at,
                )

    def _classify_transition(self, previous: str, region: str) -> LocationTrigger:
        if previous == FloorPlan.OUTSIDE:
            return LocationTrigger.ENTER_BUILDING
        if region == FloorPlan.OUTSIDE:
            return LocationTrigger.LEAVE_BUILDING
        return LocationTrigger.MOVE_REGION

    def _emit_to(
        self,
        request: TrackingRequest,
        trigger: LocationTrigger,
        body: str,
        report_sent_at: Optional[float] = None,
    ) -> None:
        alert = self.make_alert(
            keyword=f"Location {trigger.value}",
            subject=f"{request.tracked} location update",
            body=body,
            severity=AlertSeverity.ROUTINE,
        )
        if report_sent_at is not None:
            self.provenance[alert.alert_id] = report_sent_at
        self.emitted.append(alert)
        self.env.process(
            self.deliver(alert, request.target_book),
            name=f"{self.name}-deliver-{alert.alert_id}",
        )
