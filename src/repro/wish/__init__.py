"""The WISH wireless user-location system (§2.4).

"The WISH client software, running on the user's handheld device, extracts
from its RF wireless network card the identity of the Access Point the
device is connected to and the strength of the signals received from the AP.
It then sends that information along with the user's name and activity
status to a WISH server.  The WISH server maintains an RF signal propagation
model and a table that maps each AP to a physical location ...  the WISH
system is able to determine the user's real-time location to within a few
meters.  A confidence percentage is associated with each estimate."

The implementation follows the RADAR lineage [11]: a log-distance path-loss
radio model (:mod:`~repro.wish.radio`), a building floor plan with APs
(:mod:`~repro.wish.floorplan`), reporting clients (:mod:`~repro.wish.client`),
a nearest-neighbour-in-signal-space server (:mod:`~repro.wish.server`), and
the privacy-guarded location alert service (:mod:`~repro.wish.alerts`).
"""

from repro.wish.alerts import LocationTrigger, WISHAlertService
from repro.wish.client import WISHClient
from repro.wish.floorplan import AccessPoint, FloorPlan, Region
from repro.wish.radio import PathLossModel
from repro.wish.server import LocationEstimate, WISHServer

__all__ = [
    "AccessPoint",
    "FloorPlan",
    "LocationEstimate",
    "LocationTrigger",
    "PathLossModel",
    "Region",
    "WISHAlertService",
    "WISHClient",
    "WISHServer",
]
