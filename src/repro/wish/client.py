"""The WISH client on the user's handheld device (§2.4).

Periodically measures the signal strengths of audible APs at the device's
current physical position, picks the strongest as "the AP the device is
connected to", and ships the report to the WISH server over the wireless
link.  Movement is scripted with waypoints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.channel import LatencyModel
from repro.wish.floorplan import FloorPlan, Point
from repro.wish.radio import PathLossModel
from repro.wish.server import ClientReport, WISHServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: One hop over the 802.11 network to the server.
WIRELESS_LATENCY = LatencyModel(median=0.3, sigma=0.3, low=0.05, high=2.0)

DEFAULT_REPORT_PERIOD = 3.0


class WISHClient:
    """The tracked user's device."""

    def __init__(
        self,
        env: "Environment",
        user: str,
        plan: FloorPlan,
        radio: PathLossModel,
        server: WISHServer,
        rng: np.random.Generator,
        position: Optional[Point] = None,
        activity: str = "available",
        report_period: float = DEFAULT_REPORT_PERIOD,
        wireless: LatencyModel = WIRELESS_LATENCY,
    ):
        self.env = env
        self.user = user
        self.plan = plan
        self.radio = radio
        self.server = server
        self.rng = rng
        self.position: Optional[Point] = position
        self.activity = activity
        self.report_period = report_period
        self.wireless = wireless
        self.reports_sent = 0
        self._running = False

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------

    def set_position(self, position: Optional[Point]) -> None:
        """Teleport (None = left the building: no APs audible)."""
        self.position = position

    def walk(self, waypoints: list[tuple[float, Optional[Point]]]) -> None:
        """Script a movement: [(at_time, position), ...]."""

        def mover(env):
            for at, position in sorted(waypoints, key=lambda w: w[0]):
                if at > env.now:
                    yield env.timeout(at - env.now)
                self.set_position(position)

        self.env.process(mover(self.env), name=f"wish-walk-{self.user}")

    # ------------------------------------------------------------------
    # Measurement + reporting
    # ------------------------------------------------------------------

    def measure(self) -> dict[str, float]:
        """One scan: noisy strengths of every audible AP."""
        if self.position is None:
            return {}
        strengths = {}
        for ap in self.plan.access_points:
            power = self.radio.measure(ap.distance_to(self.position), self.rng)
            if power is not None:
                strengths[ap.ap_id] = power
        return strengths

    def send_report_now(self) -> ClientReport:
        """Measure and ship one report (also used by the periodic loop)."""
        strengths = self.measure()
        connected = max(strengths, key=strengths.get) if strengths else None
        report = ClientReport(
            user=self.user,
            activity=self.activity,
            connected_ap=connected,
            strengths=strengths,
            sent_at=self.env.now,
        )
        self.reports_sent += 1
        self.env.process(self._transmit(report), name=f"wish-tx-{self.user}")
        return report

    def _transmit(self, report: ClientReport):
        yield self.env.timeout(self.wireless.draw(self.rng))
        self.server.submit_report(report)

    def start(self) -> None:
        """Begin periodic reporting (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._report_loop(), name=f"wish-client-{self.user}")

    def stop(self) -> None:
        self._running = False

    def _report_loop(self):
        while self._running:
            yield self.env.timeout(self.report_period)
            if self._running:
                self.send_report_now()
