"""The WISH location server (§2.4, §5).

Maintains the propagation model, the AP location table, and a fingerprint
lattice built from the noiseless radio model.  For each client report it
estimates the position as the centroid of the k nearest lattice points in
signal space, attaches a confidence percentage, and updates the user's
soft-state variable — exactly the §5 pipeline ("The server updates the
Soft-State Store, in which each user is represented by a soft-state
variable").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.aladdin.sss import SoftStateStore, UnknownVariable
from repro.net.channel import LatencyModel
from repro.wish.floorplan import FloorPlan, Point
from repro.wish.radio import PathLossModel, signal_distance

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

import numpy as np

USER_TYPE = "wish.user"

#: Server-side location computation + store update.
SERVER_PROCESSING = LatencyModel(median=1.2, sigma=0.25, low=0.2, high=5.0)


@dataclass
class ClientReport:
    """What the WISH client sends: who, activity, AP id, signal strengths."""

    user: str
    activity: str
    connected_ap: Optional[str]
    strengths: dict[str, float]
    sent_at: float


@dataclass
class LocationEstimate:
    """Server output for one report."""

    user: str
    activity: str
    position: Optional[Point]
    region: str
    confidence: float
    at: float
    #: When the client sent the triggering report (end-to-end anchoring).
    report_sent_at: float = 0.0


class WISHServer:
    """Fingerprinting location server feeding a Soft-State Store."""

    def __init__(
        self,
        env: "Environment",
        plan: FloorPlan,
        radio: PathLossModel,
        store: SoftStateStore,
        rng: np.random.Generator,
        grid_spacing: float = 2.0,
        k: int = 3,
        processing: LatencyModel = SERVER_PROCESSING,
        user_refresh_period: float = 10.0,
        user_max_missed: int = 3,
    ):
        self.env = env
        self.plan = plan
        self.radio = radio
        self.store = store
        self.rng = rng
        self.k = k
        self.processing = processing
        self.user_refresh_period = user_refresh_period
        self.user_max_missed = user_max_missed
        store.define_type(USER_TYPE)
        self.estimates: list[LocationEstimate] = []
        #: (lattice point, noiseless fingerprint) pairs.
        self._fingerprints: list[tuple[Point, dict[str, float]]] = [
            (point, self._predict(point))
            for point in plan.grid_points(grid_spacing)
        ]

    def _predict(self, point: Point) -> dict[str, float]:
        fingerprint = {}
        for ap in self.plan.access_points:
            power = self.radio.mean_power(ap.distance_to(point))
            if power >= self.radio.sensitivity_dbm:
                fingerprint[ap.ap_id] = power
        return fingerprint

    # ------------------------------------------------------------------
    # Report handling
    # ------------------------------------------------------------------

    def submit_report(self, report: ClientReport) -> None:
        """Entry point for reports arriving over the wireless network."""
        self.env.process(self._handle(report), name=f"wish-{report.user}")

    def _handle(self, report: ClientReport):
        yield self.env.timeout(self.processing.draw(self.rng))
        estimate = self.locate(report)
        self.estimates.append(estimate)
        self._update_store(estimate)

    def locate(self, report: ClientReport) -> LocationEstimate:
        """Pure location computation (exposed for accuracy tests)."""
        if not report.strengths or not self._fingerprints:
            return LocationEstimate(
                user=report.user,
                activity=report.activity,
                position=None,
                region=FloorPlan.OUTSIDE,
                confidence=100.0 if not report.strengths else 0.0,
                at=self.env.now,
                report_sent_at=report.sent_at,
            )
        scored = sorted(
            (
                (signal_distance(report.strengths, fingerprint), point)
                for point, fingerprint in self._fingerprints
            ),
            key=lambda pair: pair[0],
        )
        nearest = scored[: self.k]
        xs = [point[0] for _d, point in nearest]
        ys = [point[1] for _d, point in nearest]
        position = (sum(xs) / len(xs), sum(ys) / len(ys))
        mean_mismatch = sum(d for d, _p in nearest) / len(nearest)
        # Confidence falls off with signal-space mismatch: a perfect match
        # is 100 %, ~20 dB aggregate mismatch is ~37 %.
        confidence = 100.0 * math.exp(-mean_mismatch / 20.0)
        return LocationEstimate(
            user=report.user,
            activity=report.activity,
            position=position,
            region=self.plan.region_at(position),
            confidence=confidence,
            at=self.env.now,
            report_sent_at=report.sent_at,
        )

    def _update_store(self, estimate: LocationEstimate) -> None:
        variable = f"wish.user.{estimate.user}"
        value = {
            "region": estimate.region,
            "position": estimate.position,
            "confidence": round(estimate.confidence, 1),
            "activity": estimate.activity,
            "report_sent_at": estimate.report_sent_at,
        }
        try:
            self.store.variable(variable)
        except UnknownVariable:
            self.store.create(
                variable,
                USER_TYPE,
                value,
                refresh_period=self.user_refresh_period,
                max_missed=self.user_max_missed,
            )
            return
        self.store.write(variable, value)

    def last_estimate(self, user: str) -> Optional[LocationEstimate]:
        for estimate in reversed(self.estimates):
            if estimate.user == user:
                return estimate
        return None
