"""Building floor plans: rooms, access points, positions.

The WISH server keeps "a table that maps each AP to a physical location"
(§2.4); regions are the granularity of location alerts ("enters a building,
moves to a different part of the building, and/or leaves the building").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

Point = tuple[float, float]


@dataclass(frozen=True)
class AccessPoint:
    """One 802.11 AP at a fixed position."""

    ap_id: str
    position: Point

    def distance_to(self, point: Point) -> float:
        return math.dist(self.position, point)


@dataclass(frozen=True)
class Region:
    """An axis-aligned named area of the building (a room, a wing)."""

    name: str
    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self):
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise ConfigurationError(f"degenerate region {self.name!r}")

    def contains(self, point: Point) -> bool:
        x, y = point
        return self.x_min <= x < self.x_max and self.y_min <= y < self.y_max


class FloorPlan:
    """One building: bounding regions plus AP placements."""

    #: Region name reported for positions outside every region (and outside
    #: the building once the client stops hearing any AP).
    OUTSIDE = "outside"

    def __init__(self, name: str):
        self.name = name
        self._regions: list[Region] = []
        self._aps: dict[str, AccessPoint] = {}

    def add_region(self, region: Region) -> Region:
        if any(r.name == region.name for r in self._regions):
            raise ConfigurationError(f"duplicate region {region.name!r}")
        self._regions.append(region)
        return region

    def add_ap(self, ap_id: str, position: Point) -> AccessPoint:
        if ap_id in self._aps:
            raise ConfigurationError(f"duplicate AP {ap_id!r}")
        ap = AccessPoint(ap_id=ap_id, position=position)
        self._aps[ap_id] = ap
        return ap

    @property
    def access_points(self) -> list[AccessPoint]:
        return list(self._aps.values())

    def ap(self, ap_id: str) -> AccessPoint:
        return self._aps[ap_id]

    @property
    def regions(self) -> list[Region]:
        return list(self._regions)

    def region_at(self, point: Optional[Point]) -> str:
        """Name of the region containing ``point`` (first match wins)."""
        if point is None:
            return self.OUTSIDE
        for region in self._regions:
            if region.contains(point):
                return region.name
        return self.OUTSIDE

    def grid_points(self, spacing: float) -> list[Point]:
        """Sample points covering all regions — the fingerprint lattice."""
        if spacing <= 0:
            raise ConfigurationError("grid spacing must be positive")
        if not self._regions:
            return []
        x_min = min(r.x_min for r in self._regions)
        x_max = max(r.x_max for r in self._regions)
        y_min = min(r.y_min for r in self._regions)
        y_max = max(r.y_max for r in self._regions)
        points = []
        x = x_min + spacing / 2
        while x < x_max:
            y = y_min + spacing / 2
            while y < y_max:
                points.append((x, y))
                y += spacing
            x += spacing
        return points
