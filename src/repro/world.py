"""World assembly: wire a complete SIMBA deployment in a few lines.

A :class:`SimbaWorld` owns the simulation environment, the three channel
substrates, and the host machine, and hands out pre-wired users, buddies and
watchdogs.  It is the recommended entry point::

    world = SimbaWorld(seed=7)
    alice = world.create_user("alice")
    buddy = world.create_buddy(alice)
    buddy.register_user_endpoint(alice)
    buddy.subscribe("Investment", alice, "normal", keywords=["Stocks"])
    mdc = world.start_mdc(buddy)
    world.run(until=3600)

Everything remains overridable: each piece is a plain object from
:mod:`repro.core` / :mod:`repro.net` that can also be assembled by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.addresses import AddressBook, UserAddress
from repro.core.aggregator import CategoryAggregator
from repro.core.buddy import BuddyConfig, BuddyJournal, MyAlertBuddy
from repro.core.classifier import AlertClassifier
from repro.core.delivery_modes import (
    Action,
    CommunicationBlock,
    DeliveryMode,
)
from repro.core.endpoint import SimbaEndpoint
from repro.core.farm import BuddyFarm
from repro.core.filters import FilterPolicy
from repro.core.host import Host
from repro.core.pessimistic_log import PessimisticLog
from repro.core.subscription import SubscriptionLayer
from repro.core.user_endpoint import UserEndpoint
from repro.core.watchdog import MasterDaemonController
from repro.net.channel import LatencyModel
from repro.net.email import DEFAULT_EMAIL_LATENCY, DEFAULT_EMAIL_LOSS, EmailService
from repro.net.im import DEFAULT_IM_LATENCY, IMService
from repro.net.message import ChannelType
from repro.net.sms import DEFAULT_SMS_LATENCY, DEFAULT_SMS_LOSS, SMSGateway
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry

#: Patience for the user's own acknowledgement (humans are slower than MAB).
USER_ACK_TIMEOUT = 30.0


@dataclass
class WorldConfig:
    """Tunable channel and logging parameters for a world."""

    seed: int = 0
    im_latency: LatencyModel = DEFAULT_IM_LATENCY
    im_loss: float = 0.0
    email_latency: LatencyModel = DEFAULT_EMAIL_LATENCY
    email_loss: float = DEFAULT_EMAIL_LOSS
    sms_latency: LatencyModel = DEFAULT_SMS_LATENCY
    sms_loss: float = DEFAULT_SMS_LOSS
    log_write_latency: float = 0.5
    host_has_ups: bool = False


class BuddyDeployment:
    """Everything persistent about one user's MyAlertBuddy.

    Incarnations (actual MAB processes) come and go — launched by the MDC or
    by :meth:`launch` directly; the deployment is what survives.
    """

    def __init__(
        self,
        world: "SimbaWorld",
        user_name: str,
        log_path=None,
        journal_max_events: Optional[int] = None,
        host: Optional[Host] = None,
        config: Optional[BuddyConfig] = None,
        rng_label: Optional[str] = None,
    ):
        self.world = world
        self.user_name = user_name
        #: The machine this deployment runs on.  Defaults to the world's
        #: desktop; a warm standby (repro.core.replication) passes its own
        #: second host so the pair fails independently.
        self.host = host if host is not None else world.host
        self.im_address = f"mab-{user_name}@im"
        self.email_address = f"mab-{user_name}@mail"
        self.endpoint = SimbaEndpoint(
            world.env,
            name=f"mab-{user_name}",
            screen=self.host.screen,
            im_service=world.im,
            email_service=world.email,
            sms_gateway=world.sms,
            im_address=self.im_address,
            email_address=self.email_address,
        )
        if log_path is not None:
            # File-backed: the log survives even simulated machine reboots
            # (PessimisticLog.load can rebuild it in a fresh world).
            self.log = PessimisticLog.load(
                world.env, log_path,
                write_latency=world.config.log_write_latency,
            )
        else:
            self.log = PessimisticLog(
                world.env, write_latency=world.config.log_write_latency
            )
        self.journal = BuddyJournal(max_events=journal_max_events)
        # A replicated standby shares the primary's config object, so both
        # sides see one subscription set, one classifier, one set of
        # testkit hooks — the pair is one logical MAB.
        self.config = config if config is not None else BuddyConfig(
            user=user_name,
            classifier=AlertClassifier(),
            aggregator=CategoryAggregator(),
            filters=FilterPolicy(),
            subscriptions=SubscriptionLayer(),
        )
        self.rng = world.rngs.stream(rng_label or f"buddy-{user_name}")
        self.incarnations: list[MyAlertBuddy] = []
        # Power loss / reboot kills the client software with everything else.
        self.host.on_shutdown(
            lambda: self.endpoint.stop(shutdown_clients=True)
        )

    # ------------------------------------------------------------------
    # Address book the alert *sources* use to reach this MAB
    # ------------------------------------------------------------------

    def source_facing_book(self) -> AddressBook:
        """The only addresses ever revealed to alert services (§3.3)."""
        book = AddressBook(owner=f"mab-{self.user_name}")
        book.add(UserAddress("IM", ChannelType.IM, self.im_address))
        book.add(UserAddress("Email", ChannelType.EMAIL, self.email_address))
        return book

    # ------------------------------------------------------------------
    # Incarnation management
    # ------------------------------------------------------------------

    def make_incarnation(self) -> MyAlertBuddy:
        """MDC factory: build (but do not start) a fresh incarnation."""
        buddy = MyAlertBuddy(
            self.world.env,
            config=self.config,
            endpoint=self.endpoint,
            log=self.log,
            journal=self.journal,
            rng=self.rng,
        )
        self.incarnations.append(buddy)
        return buddy

    def launch(self) -> MyAlertBuddy:
        """Start an incarnation directly (no watchdog).

        Use either :meth:`launch` (simple scenarios) or
        :meth:`SimbaWorld.start_mdc` (which launches its own incarnation) —
        not both, or two incarnations will race for the same endpoint.
        """
        buddy = self.make_incarnation()
        buddy.start()
        return buddy

    @property
    def current(self) -> Optional[MyAlertBuddy]:
        """The most recent incarnation (alive or not)."""
        return self.incarnations[-1] if self.incarnations else None

    # ------------------------------------------------------------------
    # Convenience configuration
    # ------------------------------------------------------------------

    def register_user_endpoint(
        self, user: UserEndpoint, modes: Optional[list[DeliveryMode]] = None
    ) -> AddressBook:
        """Register ``user`` with standard addresses and delivery modes."""
        book = standard_user_book(user)
        self.config.subscriptions.register_user(user.name, book)
        for mode in modes if modes is not None else standard_modes():
            self.config.subscriptions.register_mode(user.name, mode)
        return book

    def subscribe(
        self,
        category: str,
        user: UserEndpoint,
        mode_name: str,
        keywords: Optional[list[str]] = None,
    ) -> None:
        """Declare a personal category, map keywords into it, subscribe."""
        self.config.subscriptions.register_category(category)
        for keyword in keywords or [category]:
            self.config.aggregator.map_keyword(keyword, category)
        self.config.subscriptions.subscribe(category, user.name, mode_name)


def standard_user_book(user: UserEndpoint) -> AddressBook:
    """IM + SMS + Email addresses under their conventional friendly names."""
    book = AddressBook(owner=user.name)
    book.add(UserAddress("IM", ChannelType.IM, user.im_address))
    book.add(UserAddress("SMS", ChannelType.SMS, user.phone_number))
    book.add(UserAddress("Email", ChannelType.EMAIL, user.email_address))
    return book


def standard_modes() -> list[DeliveryMode]:
    """Three dependability levels a typical user would define (§3.2)."""
    return [
        # Critical: confirmable IM first; if unconfirmed, blast SMS + email.
        DeliveryMode(
            "critical",
            [
                CommunicationBlock(
                    [Action("IM")], require_ack=True, ack_timeout=USER_ACK_TIMEOUT
                ),
                CommunicationBlock([Action("SMS"), Action("Email")]),
            ],
        ),
        # Normal: try IM (fire-and-forget needs presence; use ack to detect
        # absence), fall back to email only.
        DeliveryMode(
            "normal",
            [
                CommunicationBlock(
                    [Action("IM")], require_ack=True, ack_timeout=USER_ACK_TIMEOUT
                ),
                CommunicationBlock([Action("Email")]),
            ],
        ),
        # Digest: email, nothing else — for alerts that can wait.
        DeliveryMode("digest", [CommunicationBlock([Action("Email")])]),
    ]


class SimbaWorld:
    """One simulated universe: channels, host, users, buddies."""

    def __init__(self, config: Optional[WorldConfig] = None, seed: Optional[int] = None):
        if config is None:
            config = WorldConfig()
        if seed is not None:
            config = WorldConfig(**{**config.__dict__, "seed": seed})
        self.config = config
        self.env = Environment()
        self.rngs = RngRegistry(seed=config.seed)
        self.im = IMService(
            self.env,
            self.rngs.stream("im"),
            latency=config.im_latency,
            loss_probability=config.im_loss,
        )
        self.email = EmailService(
            self.env,
            self.rngs.stream("email"),
            latency=config.email_latency,
            loss_probability=config.email_loss,
        )
        self.sms = SMSGateway(
            self.env,
            self.rngs.stream("sms"),
            latency=config.sms_latency,
            loss_probability=config.sms_loss,
        )
        self.host = Host(self.env, has_ups=config.host_has_ups)
        self.users: dict[str, UserEndpoint] = {}
        self.buddies: dict[str, BuddyDeployment] = {}
        self.source_hosts: dict[str, Host] = {}

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def create_user(
        self,
        name: str,
        present: bool = True,
        start: bool = True,
        ack_enabled: bool = True,
    ) -> UserEndpoint:
        if name in self.users:
            raise ValueError(f"user {name!r} already exists in this world")
        user = UserEndpoint(
            self.env,
            name=name,
            im_service=self.im,
            email_service=self.email,
            sms_gateway=self.sms,
            im_address=f"{name}@im",
            email_address=f"{name}@mail",
            phone_number=f"+1425555{len(self.users):04d}",
            rng=self.rngs.stream(f"user-{name}"),
            present=present,
            ack_enabled=ack_enabled,
        )
        if start:
            user.start()
        self.users[name] = user
        return user

    def create_buddy(
        self,
        user: UserEndpoint,
        log_path=None,
        journal_max_events: Optional[int] = None,
    ) -> BuddyDeployment:
        """Create the user's MAB deployment.

        ``log_path`` makes the pessimistic log file-backed (JSONL); an
        existing file is loaded, so a deployment can resume a previous
        world's unprocessed alerts — the disk-survives-reboot story.
        ``journal_max_events`` bounds the journal's retained event window
        (counts stay exact) for long high-volume runs.
        """
        if user.name in self.buddies:
            raise ValueError(f"{user.name!r} already has a MyAlertBuddy")
        deployment = BuddyDeployment(
            self, user.name, log_path=log_path,
            journal_max_events=journal_max_events,
        )
        self.buddies[user.name] = deployment
        return deployment

    def create_farm(self, shards: int = 16, profile=None) -> "BuddyFarm":
        """A multi-tenant :class:`~repro.core.farm.BuddyFarm` on this world.

        The farm shares this world's IM/email/SMS substrates and host; use
        :meth:`BuddyFarm.add_users` to populate it and
        :meth:`BuddyFarm.launch_all` to start every MAB.
        """
        return BuddyFarm(self, shards=shards, profile=profile)

    def create_source_endpoint(self, name: str) -> "SimbaEndpoint":
        """A started SIMBA-library endpoint for an alert source.

        Sources do not acknowledge incoming IMs (they only send), hence
        ``auto_ack=False``.
        """
        from repro.core.endpoint import SimbaEndpoint

        # Sources run on their own machines, not on the user's desktop —
        # each gets its own host (screen) so the user's host failures do not
        # take alert sources down with them.
        host = Host(self.env, name=f"{name}-host")
        self.source_hosts[name] = host
        endpoint = SimbaEndpoint(
            self.env,
            name=name,
            screen=host.screen,
            im_service=self.im,
            email_service=self.email,
            sms_gateway=self.sms,
            im_address=f"{name}@im",
            email_address=f"{name}@mail",
            auto_ack=False,
            maintenance_interval=60.0,
        )
        endpoint.start()
        return endpoint

    def create_source(self, name: str, mode=None):
        """A generic :class:`~repro.sources.base.AlertSource` named ``name``."""
        from repro.sources.base import AlertSource

        return AlertSource(
            self.env, name, self.create_source_endpoint(name), mode=mode
        )

    def start_mdc(
        self, deployment: BuddyDeployment, **mdc_kwargs
    ) -> MasterDaemonController:
        mdc = MasterDaemonController(
            self.env,
            deployment.host,
            buddy_factory=deployment.make_incarnation,
            **mdc_kwargs,
        )
        mdc.start()
        return mdc

    def run(self, until=None):
        return self.env.run(until=until)
