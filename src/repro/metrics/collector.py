"""Labelled latency collection for experiments."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.metrics.stats import Summary, summarize


class LatencyCollector:
    """Accumulates samples under string labels and summarizes per label."""

    def __init__(self):
        self._samples: dict[str, list[float]] = defaultdict(list)

    def record(self, label: str, value: float) -> None:
        self._samples[label].append(float(value))

    def extend(self, label: str, values: Iterable[float]) -> None:
        # Materialize before touching the samples list so a generator that
        # raises partway through cannot leave a half-recorded label behind.
        materialized = [float(v) for v in values]
        self._samples[label].extend(materialized)

    def samples(self, label: str) -> list[float]:
        return list(self._samples.get(label, []))

    def labels(self) -> list[str]:
        return sorted(self._samples)

    def summary(self, label: str) -> Summary:
        return summarize(self._samples.get(label, []))

    def report(self) -> str:
        """Multi-line text report, one row per label."""
        return "\n".join(
            self.summary(label).row(label) for label in self.labels()
        )
