"""E11-style latency attribution over a run's trace sink.

Per-alert journals answer *whether* an alert arrived; the trace answers
*where its latency went*.  This report buckets every traced alert's span
durations (:func:`repro.obs.attribute_spans`) — pipeline stage vs channel
wait vs channel transit vs failover stall — and prints one percentile row
per bucket, so a p95 regression is attributable to a layer in one glance.

Buckets overlap by construction (an IM ack's transit happens *during* the
sender's ack wait; an email transit outlives its fire-and-forget block),
so rows are shown side by side with their share of end-to-end time, never
summed into a partition.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.metrics.reports import format_table
from repro.metrics.stats import summarize
from repro.obs.render import attribute_spans
from repro.obs.trace import LIFECYCLE_PREFIX

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import TraceSink


def trace_attribution(sink: "TraceSink") -> dict[str, list[float]]:
    """bucket → per-alert duration samples, across every alert trace.

    A trace contributes one sample per bucket it actually touched; alerts
    that never waited on an ack simply do not appear in the ack-wait
    bucket (per-bucket ``n`` varies, which is the point — the count column
    tells you how many alerts a bucket even applies to).
    """
    samples: dict[str, list[float]] = defaultdict(list)
    for trace_id in sink.trace_ids():
        if trace_id.startswith(LIFECYCLE_PREFIX):
            continue
        for bucket, duration in attribute_spans(sink.spans(trace_id)).items():
            samples[bucket].append(duration)
    return dict(samples)


def trace_report(sink: "TraceSink", title: str = "") -> str:
    """Percentile table: one row per attribution bucket, largest p95 first."""
    samples = trace_attribution(sink)
    if not samples:
        return "(no traces recorded)"
    e2e = summarize(samples.get("end_to_end", []))
    rows = []
    order = sorted(
        samples.items(),
        key=lambda item: (-summarize(item[1]).p95, item[0]),
    )
    for bucket, values in order:
        summary = summarize(values)
        share = (
            f"{summary.mean / e2e.mean * 100.0:.0f}%"
            if bucket != "end_to_end" and e2e.mean and e2e.mean > 0
            else "—"
        )
        rows.append(
            [
                bucket,
                summary.count,
                f"{summary.mean:.2f} s",
                f"{summary.median:.2f} s",
                f"{summary.p95:.2f} s",
                f"{summary.maximum:.2f} s",
                share,
            ]
        )
    n_traces = sum(
        1 for t in sink.trace_ids() if not t.startswith(LIFECYCLE_PREFIX)
    )
    heading = title or (
        f"trace attribution ({n_traces} alert trace(s), "
        f"{sink.span_count()} spans)"
    )
    return format_table(
        ["bucket", "n", "mean", "p50", "p95", "max", "share of e2e"],
        rows,
        title=heading,
    )
