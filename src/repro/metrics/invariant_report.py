"""Render chaos-testkit results as the plain-text tables benches print.

Companion to :mod:`repro.metrics.recovery_report`: where that one
summarizes *what broke and recovered*, this one summarizes *what the
delivery oracle checked* — invariant coverage, violations, and the
per-trial sweep verdicts with their shrink outcomes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.reports import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.testkit.harness import ChaosReport
    from repro.testkit.sweep import ChaosSweepResult


def invariant_report(report: "ChaosReport") -> str:
    """One run: what was checked, what was observed, what failed."""
    lines = [report.summary(), ""]
    checked_rows = sorted(report.oracle.checked.items())
    info_rows = sorted(report.oracle.info.items())
    lines.append(
        format_table(
            ["measure", "value"],
            checked_rows + info_rows
            + sorted(report.outcome_counts.items()),
            title="oracle coverage",
        )
    )
    if report.oracle.violations:
        lines.append("")
        lines.append(
            format_table(
                ["invariant", "user", "detail"],
                [
                    (v.invariant, v.user or "-", v.detail)
                    for v in report.oracle.violations
                ],
                title="violations",
            )
        )
    return "\n".join(lines)


def sweep_report(result: "ChaosSweepResult") -> str:
    """Per-trial sweep table plus the reproducibility fingerprint."""
    rows = []
    for trial in result.trials:
        shrunk = "-"
        if trial.shrink_result is not None:
            shrunk = (
                f"{trial.shrink_result.original_size}→"
                f"{len(trial.shrink_result.schedule)}"
            )
        rows.append(
            (
                trial.index,
                trial.seed,
                trial.schedule_size,
                "PASS" if trial.ok else "FAIL",
                len(trial.violations),
                shrunk,
            )
        )
    table = format_table(
        ["trial", "seed", "faults", "verdict", "violations", "shrunk"],
        rows,
        title=f"chaos sweep seed={result.seed}",
    )
    verdict = "PASS" if result.ok else f"FAIL ({len(result.failures)} trial(s))"
    return (
        f"{table}\n"
        f"sweep verdict: {verdict}\n"
        f"fingerprint: {result.fingerprint()}"
    )
