"""Per-alert journey tracing: where did my alert go, and when?

Stitches together everything the stack already records about one alert —
source emission and per-block delivery outcomes, MAB's pessimistic-log
entry and journal events, and the user's device receipts — into one
time-ordered trace.  Invaluable when debugging a deployment ("why did this
ride email instead of IM?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.router import BlockStatus
from repro.sim.clock import format_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.user_endpoint import UserEndpoint
    from repro.sources.base import AlertSource
    from repro.world import BuddyDeployment


@dataclass(frozen=True)
class TraceEvent:
    """One hop in an alert's journey."""

    at: float
    actor: str
    description: str

    def render(self) -> str:
        return f"{format_time(self.at)}  [{self.actor:<8s}] {self.description}"


def trace_alert(
    alert_id: str,
    source: Optional["AlertSource"] = None,
    deployment: Optional["BuddyDeployment"] = None,
    user: Optional["UserEndpoint"] = None,
) -> list[TraceEvent]:
    """Collect every known event about ``alert_id``, time-ordered.

    Pass whichever parties you have; missing ones are simply skipped.
    """
    events: list[TraceEvent] = []

    if source is not None:
        for alert in source.emitted:
            if alert.alert_id == alert_id:
                events.append(
                    TraceEvent(
                        alert.created_at, "source",
                        f"emitted {alert.keyword!r}: {alert.subject!r}",
                    )
                )
        for outcome in source.outcomes:
            if outcome.correlation != alert_id:
                continue
            for block in outcome.blocks:
                events.append(
                    TraceEvent(
                        outcome.started_at, "source",
                        _describe_block(block),
                    )
                )
            verdict = (
                f"delivered via block {outcome.delivered_via}"
                if outcome.delivered else "delivery FAILED on all blocks"
            )
            events.append(
                TraceEvent(outcome.finished_at, "source",
                           f"{verdict} ({outcome.messages_sent} messages)")
            )

    if deployment is not None:
        entry = deployment.log.entry_for_alert(alert_id)
        if entry is not None:
            events.append(
                TraceEvent(entry.received_at, "mab-log",
                           "logged before ack (pessimistic logging)")
            )
            if entry.processed and entry.processed_at is not None:
                events.append(
                    TraceEvent(entry.processed_at, "mab-log",
                               "marked Processed")
                )
        for journal_event in deployment.journal.events:
            if journal_event.alert_id == alert_id:
                events.append(
                    TraceEvent(
                        journal_event.at, "mab",
                        f"{journal_event.kind}"
                        + (f": {journal_event.detail}"
                           if journal_event.detail else ""),
                    )
                )
        for outcome in deployment.endpoint.engine.history:
            if outcome.correlation != alert_id:
                continue
            for block in outcome.blocks:
                events.append(
                    TraceEvent(outcome.started_at, "mab",
                               "user delivery: " + _describe_block(block))
                )

    if user is not None:
        for receipt in user.receipts_for(alert_id):
            tag = "DUPLICATE discarded" if receipt.duplicate else "received"
            events.append(
                TraceEvent(
                    receipt.at, "user",
                    f"{tag} on {receipt.channel.value} "
                    f"({receipt.latency:.2f}s after creation)",
                )
            )

    return sorted(events, key=lambda e: e.at)


def _describe_block(block) -> str:
    if block.status is BlockStatus.SUCCESS:
        detail = (
            f"acked by {block.acked_by}" if block.acked_by
            else f"submitted to {', '.join(block.submitted)}"
        )
        return f"block {block.index} SUCCESS ({detail}, {block.elapsed:.2f}s)"
    parts = [f"block {block.index} {block.status.value}"]
    if block.skipped_disabled:
        parts.append(f"disabled: {', '.join(block.skipped_disabled)}")
    if block.errors:
        parts.append(
            "errors: " + "; ".join(f"{k}: {v}" for k, v in block.errors.items())
        )
    return " — ".join(parts)


def render_trace(events: list[TraceEvent]) -> str:
    """Format a trace as one line per hop."""
    if not events:
        return "(no events recorded for this alert)"
    return "\n".join(event.render() for event in events)
