"""Render the E12 storm-hardening comparison as the CI-published report.

One table row per admission config (permissive / hardened) under the
identical storm traffic and fault schedule, followed by the headline
verdict lines: what shedding bought on deadline misses and tail latency,
and whether the hardened farm held the zero-duplicates-past-dedup /
everything-accounted / oracle-green contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.reports import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.storm import StormResult


def admission_report(result: "StormResult") -> str:
    """Human-readable comparison table plus verdict lines."""
    rows = []
    for v in result.variants:
        rows.append(
            [
                v.name,
                v.offered,
                v.delivered,
                v.shed + v.coalesced,
                v.rate_limited,
                v.dead_letters,
                v.dedup_suppressed,
                v.user_duplicates,
                v.deadline_misses,
                f"{v.latency.p95:.1f} s",
                v.unaccounted,
                len(v.violations),
            ]
        )
    table = format_table(
        ["admission", "offered", "delivered", "shed", "rate-lim",
         "dead-let", "dedup", "user dups", "ddl miss", "p95",
         "unaccounted", "violations"],
        rows,
        title=(
            f"E12: storm hardening comparison (seed {result.seed}, "
            f"{result.storm.n_bursts} burst(s) x "
            f"{result.storm.burst_duration:.0f}s at "
            f"+{result.storm.burst_rate:g}/s, "
            f"deadline {result.deadline:.0f}s)"
        ),
    )
    lines = [table, ""]
    for fault in result.schedule:
        lines.append(
            f"  {fault.kind.value} at t={fault.at:.0f}s "
            f"for {fault.duration:.0f}s"
        )
    hardened = result.variant("hardened")
    permissive = result.variant("permissive")
    lines.append(
        f"deadline misses: {permissive.deadline_misses} (permissive) -> "
        f"{hardened.deadline_misses} (hardened); "
        f"p95 latency {permissive.latency.p95:.1f} s -> "
        f"{hardened.latency.p95:.1f} s"
    )
    lines.append(
        f"hardened accounting: {hardened.shed + hardened.coalesced} "
        f"shed/coalesced, {hardened.rate_limited} rate-limited, "
        f"{hardened.dead_letters} dead-lettered, "
        f"{hardened.dedup_suppressed} duplicate copies suppressed"
    )
    verdict = "PASS" if result.ok else "FAIL"
    lines.append(
        f"verdict: {verdict} (user duplicates={hardened.user_duplicates}, "
        f"unaccounted={hardened.unaccounted}, "
        f"violations={len(hardened.violations)})"
    )
    for violation in hardened.violations:
        lines.append(f"  ! {violation}")
    return "\n".join(lines)
