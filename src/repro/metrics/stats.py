"""Summary statistics for latency samples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Standard latency summary (seconds)."""

    count: int
    mean: float
    median: float
    p90: float
    p95: float
    minimum: float
    maximum: float

    def row(self, label: str) -> str:
        return (
            f"{label:<34} n={self.count:<6d} mean={self.mean:7.2f}s "
            f"median={self.median:7.2f}s p90={self.p90:7.2f}s "
            f"p95={self.p95:8.2f}s max={self.maximum:9.2f}s"
        )


def summarize(samples: list[float]) -> Summary:
    """Summarize ``samples``; an empty list yields a NaN summary."""
    if not samples:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan)
    data = np.asarray(samples, dtype=float)
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        median=float(np.median(data)),
        p90=float(np.percentile(data, 90)),
        p95=float(np.percentile(data, 95)),
        minimum=float(data.min()),
        maximum=float(data.max()),
    )
