"""Plain-text table rendering for benchmark output.

The benches print tables shaped like the paper's reported results; this
keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
