"""Render the E11 failover comparison as the CI-published report.

One table row per stack (solo / MDC-only / replicated pair) under the
identical crash schedule, followed by the headline verdict lines: how much
of the MDC-only unavailability window the warm standby removed, and
whether the replicated pair held the zero-loss / zero-duplicate /
oracle-green contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.reports import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.failover import FailoverResult


def failover_report(result: "FailoverResult") -> str:
    """Human-readable comparison table plus verdict lines."""
    rows = []
    for v in result.variants:
        rows.append(
            [
                v.name,
                v.offered,
                v.delivered,
                v.lost,
                v.duplicate_routes,
                v.promotions,
                f"{v.latency.median:.1f} s",
                f"{v.latency.p95:.1f} s",
                f"{v.latency.maximum:.1f} s",
                len(v.violations),
            ]
        )
    table = format_table(
        ["stack", "offered", "delivered", "lost", "dup routes",
         "failovers", "p50", "p95", "max", "violations"],
        rows,
        title=(
            f"E11: failover comparison (seed {result.seed}, "
            f"{len(result.schedule)} primary-host crash(es))"
        ),
    )
    lines = [table, ""]
    for fault in result.schedule:
        lines.append(
            f"  crash at t={fault.at:.0f}s for {fault.duration:.0f}s"
        )
    replicated = result.variant("replicated")
    mdc = result.variant("mdc")
    if mdc.latency.p95 > 0:
        gain = (1.0 - replicated.latency.p95 / mdc.latency.p95) * 100.0
        lines.append(
            f"p95 per-alert unavailability: {mdc.latency.p95:.1f} s "
            f"(MDC-only) -> {replicated.latency.p95:.1f} s (replicated), "
            f"{gain:.0f}% smaller"
        )
    verdict = "PASS" if result.ok else "FAIL"
    lines.append(
        f"verdict: {verdict} (replicated lost={replicated.lost}, "
        f"dup routes={replicated.duplicate_routes}, "
        f"violations={len(replicated.violations)})"
    )
    for violation in replicated.violations:
        lines.append(f"  ! {violation}")
    return "\n".join(lines)
