"""Render E14's naive-vs-stabilizing transport comparison."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.reports import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.adversarial import AdversarialResult


def adversarial_report(result: "AdversarialResult") -> str:
    """Human-readable comparison table plus verdict lines."""
    rows = []
    for v in result.variants:
        rows.append(
            [
                v.name,
                v.offered,
                v.delivered,
                v.shipped,
                v.corrupt_accepts,
                v.duplicate_applies,
                v.corrupt_rejected,
                v.duplicate_dropped,
                v.resends,
                f"{v.convergence_lag:.1f} s",
                len(v.violations),
            ]
        )
    pulses = [
        f for f in result.schedule if f.kind.value.startswith("link_")
    ]
    table = format_table(
        ["transport", "offered", "delivered", "shipped", "corrupt-acc",
         "dup-applied", "corrupt-rej", "dup-dropped", "resends",
         "conv lag", "violations"],
        rows,
        title=(
            f"E14: adversarial ship-link transport (seed {result.seed}, "
            f"{len(result.schedule)} faults, {len(pulses)} adversary "
            f"pulse(s), window {result.fault_window_end:.0f}s)"
        ),
    )
    lines = [table, ""]
    for fault in pulses:
        knobs = ", ".join(
            f"{k}={v}" for k, v in sorted(fault.params.items())
        )
        lines.append(
            f"  {fault.kind.value} on {fault.target} at t={fault.at:.0f}s "
            f"for {fault.duration:.0f}s ({knobs})"
        )
    naive = result.variant("naive")
    stabilizing = result.variant("stabilizing")
    lines.append(
        f"naive damage: {naive.corrupt_accepts} corrupt frame(s) applied, "
        f"{naive.duplicate_applies} duplicate(s) re-applied "
        f"({len(naive.transport_violations)} transport violation(s))"
    )
    lines.append(
        f"stabilizing defense: {stabilizing.corrupt_rejected} corrupt "
        f"frame(s) NACKed, {stabilizing.duplicate_dropped} duplicate "
        f"cop(ies) dropped, {stabilizing.resends} resend(s), converged "
        f"{stabilizing.convergence_lag:.1f}s past the fault window"
    )
    verdict = "PASS" if result.ok else "FAIL"
    lines.append(
        f"verdict: {verdict} (stabilizing corrupt-accepts="
        f"{stabilizing.corrupt_accepts}, duplicate-applies="
        f"{stabilizing.duplicate_applies}, transport violations="
        f"{len(stabilizing.transport_violations)})"
    )
    for violation in stabilizing.transport_violations:
        lines.append(f"  ! {violation}")
    return "\n".join(lines)
