"""Render the E13 sharded-throughput sweep as a report table."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.reports import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.sharded import ShardedComparisonResult


def shard_report(comparison: "ShardedComparisonResult") -> str:
    """One row per shard layout, then the invariance verdict.

    ``alerts/s`` is *wall-clock* aggregate delivery throughput (the number
    the single-core ceiling caps); ``speedup`` is relative to the first
    layout.  The fingerprint column shows a prefix of the merged journal
    digest — identical rows are the invariance guarantee made visible.
    """
    rows = []
    for result in comparison.results:
        rows.append(
            [
                result.shards,
                f"{result.population:,}",
                f"{result.tenants:,}",
                f"{result.delivered:,}",
                f"{result.wall_seconds:.1f} s",
                f"{result.alerts_per_wall_second:,.0f}",
                f"{comparison.speedup(result):.2f}x",
                result.merged_fingerprint[:12],
            ]
        )
    table = format_table(
        ["shards", "users", "tenants", "delivered", "wall", "alerts/s",
         "speedup", "fingerprint"],
        rows,
        title="E13: sharded farm-of-farms throughput (A4 beyond one core)",
    )
    lines = [table, "", comparison.invariance.summary()]
    hot = [
        f"  shards={r.shards}: {r.placement_summary}"
        for r in comparison.results
        if "hot" in r.placement_summary
    ]
    if hot:
        lines.append("hot-shard detector:")
        lines.extend(hot)
    else:
        lines.append("hot-shard detector: all layouts balanced")
    return "\n".join(lines)
