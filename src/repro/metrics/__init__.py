"""Measurement helpers: latency summaries, collectors, report tables."""

from repro.metrics.admission_report import admission_report
from repro.metrics.adversarial_report import adversarial_report
from repro.metrics.collector import LatencyCollector
from repro.metrics.failover_report import failover_report
from repro.metrics.invariant_report import invariant_report, sweep_report
from repro.metrics.recovery_report import recovery_report
from repro.metrics.reports import format_table
from repro.metrics.shard_report import shard_report
from repro.metrics.stats import Summary, summarize
from repro.metrics.timeline import TraceEvent, render_trace, trace_alert
from repro.metrics.trace_report import trace_attribution, trace_report

__all__ = [
    "LatencyCollector",
    "Summary",
    "TraceEvent",
    "admission_report",
    "adversarial_report",
    "failover_report",
    "format_table",
    "invariant_report",
    "recovery_report",
    "render_trace",
    "shard_report",
    "summarize",
    "sweep_report",
    "trace_alert",
    "trace_attribution",
    "trace_report",
]
