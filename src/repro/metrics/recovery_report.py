"""Paper-style recovery reports from a live deployment.

Turns a :class:`~repro.world.BuddyDeployment` (plus optionally its MDC and
user) into the §5-style recovery log the paper prints for its one-month
run — usable after any simulation, not just the E6 bench.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.metrics.reports import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.user_endpoint import UserEndpoint
    from repro.core.watchdog import MasterDaemonController
    from repro.world import BuddyDeployment


def recovery_report(
    deployment: "BuddyDeployment",
    mdc: Optional["MasterDaemonController"] = None,
    user: Optional["UserEndpoint"] = None,
    title: str = "MyAlertBuddy recovery log",
) -> str:
    """Render all recovery bookkeeping as one table."""
    im_stats = deployment.endpoint.im_manager.stats
    email_stats = deployment.endpoint.email_manager.stats
    im_monkey = deployment.endpoint.im_manager.monkey
    email_monkey = deployment.endpoint.email_manager.monkey
    journal = deployment.journal

    rows: list[list[object]] = [
        ["IM sanity checks run", im_stats.sanity_checks],
        ["IM simple re-logons", im_stats.relogons],
        ["IM client kill-and-restarts", im_stats.restarts],
        ["email client restarts", email_stats.restarts],
        ["monkey-thread dialog clicks",
         len(im_monkey.clicks) + len(email_monkey.clicks)],
    ]
    unknown = im_monkey.unknown_captions | email_monkey.unknown_captions
    rows.append(
        ["unknown dialog captions seen",
         ", ".join(sorted(unknown)) if unknown else "none"]
    )

    if mdc is not None:
        by_reason: dict[str, int] = {}
        for record in mdc.restarts:
            by_reason[record.reason.value] = (
                by_reason.get(record.reason.value, 0) + 1
            )
        rows.append(["MDC restarts of MAB", len(mdc.restarts)])
        for reason, count in sorted(by_reason.items()):
            rows.append([f"  of which {reason}", count])
        rows.append(["machine reboots requested", mdc.reboots_requested])

    by_kind: dict[str, int] = {}
    for record in journal.rejuvenations:
        by_kind[record.kind.value] = by_kind.get(record.kind.value, 0) + 1
    rows.append(["rejuvenations", len(journal.rejuvenations)])
    for kind, count in sorted(by_kind.items()):
        rows.append([f"  of which {kind}", count])

    rows.extend(
        [
            ["pessimistic-log entries", len(deployment.log)],
            ["  still unprocessed", len(deployment.log.unprocessed())],
            ["recovery replays", journal.count("recovery_replay")],
            ["delivery retries scheduled", journal.count("retry_scheduled")],
            ["deliveries abandoned", journal.count("delivery_abandoned")],
            ["alerts routed", journal.count("routed")],
            ["delivery failures (per block-set)",
             journal.count("delivery_failed")],
            ["incoming duplicates dropped",
             journal.count("duplicate_incoming")],
            ["alerts rejected (unaccepted source)", journal.count("rejected")],
            ["alerts filtered", journal.count("filtered")],
        ]
    )

    if user is not None:
        rows.extend(
            [
                ["user: unique alerts received",
                 len(user.unique_alerts_received())],
                ["user: duplicates discarded", user.duplicates_discarded()],
            ]
        )

    return format_table(["category", "count"], rows, title=title)
