"""The alert proxy: generates alerts for sites without alert services (§2.1).

"The alert proxy periodically polls the site and generates an alert when the
interesting block changes.  For example, an alert proxy was constructed to
monitor the year 2000 presidential election results and configured to send
an alert whenever the Florida recount updated the number of votes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.alert import AlertSeverity
from repro.core.delivery_modes import DeliveryMode
from repro.core.endpoint import SimbaEndpoint
from repro.errors import ConfigurationError, SimbaError
from repro.sources.base import AlertSource
from repro.sources.webserver import SimulatedWebSite

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclass
class ProxyRule:
    """One watched block of one page: the user-supplied proxy config."""

    site: SimulatedWebSite
    path: str
    poll_interval: float
    start_keyword: str
    end_keyword: str
    #: The native category keyword stamped on generated alerts.
    keyword: str
    severity: AlertSeverity = AlertSeverity.ROUTINE
    #: Statistics for the watch loop.
    polls: int = 0
    changes_detected: int = 0
    extraction_failures: int = 0
    last_block: Optional[str] = field(default=None, repr=False)

    def __post_init__(self):
        if self.poll_interval <= 0:
            raise ConfigurationError(
                f"poll interval must be positive, got {self.poll_interval!r}"
            )
        if not self.start_keyword or not self.end_keyword:
            raise ConfigurationError("start and end keywords must be non-empty")

    def extract(self, content: str) -> str:
        """Cut the interesting block out of the page content."""
        start = content.find(self.start_keyword)
        if start < 0:
            raise SimbaError(
                f"start keyword {self.start_keyword!r} not on page {self.path!r}"
            )
        start += len(self.start_keyword)
        end = content.find(self.end_keyword, start)
        if end < 0:
            raise SimbaError(
                f"end keyword {self.end_keyword!r} not on page {self.path!r}"
            )
        return content[start:end].strip()


class AlertProxy(AlertSource):
    """Polls simulated web sites and converts block changes into alerts."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        endpoint: SimbaEndpoint,
        mode: Optional[DeliveryMode] = None,
    ):
        super().__init__(env, name, endpoint, mode=mode)
        self.rules: list[ProxyRule] = []
        self._started = False

    def add_rule(self, rule: ProxyRule) -> ProxyRule:
        self.rules.append(rule)
        if self._started:
            self.env.process(
                self._watch(rule), name=f"{self.name}-watch-{rule.path}"
            )
        return rule

    def start(self) -> None:
        """Begin polling every configured rule (idempotent)."""
        if self._started:
            return
        self._started = True
        for rule in self.rules:
            self.env.process(
                self._watch(rule), name=f"{self.name}-watch-{rule.path}"
            )

    def _watch(self, rule: ProxyRule):
        while self._started:
            yield self.env.timeout(rule.poll_interval)
            if not self._started:
                return
            rule.polls += 1
            try:
                block = rule.extract(rule.site.fetch(rule.path))
            except SimbaError:
                rule.extraction_failures += 1
                continue
            if rule.last_block is None:
                rule.last_block = block  # baseline poll: no alert
                continue
            if block != rule.last_block:
                rule.last_block = block
                rule.changes_detected += 1
                self.emit(
                    rule.keyword,
                    subject=f"{rule.site.name}{rule.path} changed",
                    body=block,
                    severity=rule.severity,
                )

    def stop(self) -> None:
        self._started = False
