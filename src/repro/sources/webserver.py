"""Simulated web sites for alert proxies to poll.

"For each Web site, the user specifies the URL, the polling frequency, the
starting and ending keywords enclosing the interesting block of information"
(§2.1).  A :class:`SimulatedWebSite` is a tiny content store whose pages are
mutated by scenario scripts — e.g. the Florida-recount page the paper's
proxy watched during the 2000 election.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SimbaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class PageNotFound(SimbaError):
    """The polled path does not exist on this site."""


@dataclass
class PageChange:
    at: float
    path: str


class SimulatedWebSite:
    """A named web site with mutable pages."""

    def __init__(self, env: "Environment", name: str):
        self.env = env
        self.name = name
        self._pages: dict[str, str] = {}
        self.changes: list[PageChange] = []
        self.fetches = 0

    def publish(self, path: str, content: str) -> None:
        """Create or update a page."""
        previous = self._pages.get(path)
        self._pages[path] = content
        if previous != content:
            self.changes.append(PageChange(at=self.env.now, path=path))

    def fetch(self, path: str) -> str:
        """Read a page (what a proxy's HTTP GET returns)."""
        self.fetches += 1
        try:
            return self._pages[path]
        except KeyError:
            raise PageNotFound(f"{self.name}: no page at {path!r}") from None

    def schedule_updates(self, path: str, updates: list[tuple[float, str]]) -> None:
        """Script future content changes: [(at_time, content), ...]."""
        def driver(env):
            for at, content in sorted(updates):
                if at > env.now:
                    yield env.timeout(at - env.now)
                self.publish(path, content)

        self.env.process(driver(self.env), name=f"{self.name}-updates")
