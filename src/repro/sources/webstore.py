"""Web store / online community alert services (§2.2).

"When a new photo is added to the shared community photo album, interested
members can receive an alert containing the URL, which they can click to see
the picture."  A :class:`CommunityStore` holds shared albums and calendars
in a password-protected area; every mutation by a member produces a change
record and an alert to subscribed MABs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.alert import AlertSeverity
from repro.core.delivery_modes import DeliveryMode
from repro.core.endpoint import SimbaEndpoint
from repro.errors import SimbaError
from repro.sources.base import AlertSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class NotAMember(SimbaError):
    """Only community members may read or change shared content."""


@dataclass
class ChangeRecord:
    at: float
    member: str
    album: str
    item: str
    action: str


class CommunityStore(AlertSource):
    """A private community area whose content changes generate alerts."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        endpoint: SimbaEndpoint,
        mode: Optional[DeliveryMode] = None,
    ):
        super().__init__(env, name, endpoint, mode=mode)
        self.members: set[str] = set()
        self.albums: dict[str, dict[str, str]] = {}
        self.changes: list[ChangeRecord] = []

    # ------------------------------------------------------------------
    # Membership & content
    # ------------------------------------------------------------------

    def add_member(self, member: str) -> None:
        self.members.add(member)

    def create_album(self, member: str, album: str) -> None:
        self._require_member(member)
        self.albums.setdefault(album, {})

    def add_photo(self, member: str, album: str, photo: str, data: str = "") -> str:
        """Upload a photo; returns its URL and alerts subscribers."""
        self._require_member(member)
        if album not in self.albums:
            raise SimbaError(f"no album {album!r} in community {self.name!r}")
        self.albums[album][photo] = data
        url = f"http://{self.name}/albums/{album}/{photo}"
        self._change(member, album, photo, "photo added", url)
        return url

    def update_calendar(self, member: str, event: str) -> None:
        """Post a community calendar event."""
        self._require_member(member)
        self._change(member, "calendar", event, "calendar updated", "")

    def list_album(self, member: str, album: str) -> list[str]:
        self._require_member(member)
        return sorted(self.albums.get(album, {}))

    def _require_member(self, member: str) -> None:
        if member not in self.members:
            raise NotAMember(f"{member!r} is not a member of {self.name!r}")

    # ------------------------------------------------------------------
    # Web mirroring (§2.2: "we use the alert proxy to periodically monitor
    # the community sites and send alerts upon detecting changes")
    # ------------------------------------------------------------------

    def mirror_to_site(self, site, path: str = "/albums") -> None:
        """Publish the community's album listing as a web page.

        Each content change re-renders the page, so an
        :class:`~repro.sources.proxy.AlertProxy` polling ``path`` between
        the configured keywords detects exactly the §2.2 events.
        """
        self._mirror = (site, path)
        self._render_mirror()

    def _render_mirror(self) -> None:
        mirror = getattr(self, "_mirror", None)
        if mirror is None:
            return
        site, path = mirror
        lines = [f"<h1>{self.name}</h1>", "<albums>"]
        for album in sorted(self.albums):
            photos = ", ".join(sorted(self.albums[album])) or "(empty)"
            lines.append(f"{album}: {photos}")
        lines.append("</albums>")
        site.publish(path, "\n".join(lines))

    # ------------------------------------------------------------------
    # Alerts
    # ------------------------------------------------------------------

    def _change(
        self, member: str, album: str, item: str, action: str, url: str
    ) -> None:
        self.changes.append(
            ChangeRecord(
                at=self.env.now, member=member, album=album, item=item,
                action=action,
            )
        )
        self._render_mirror()
        body = f"{member} — {action}: {item}"
        if url:
            body += f"\nsee {url}"
        self.emit(
            keyword=f"{self.name} update",
            subject=f"{action} in {album}",
            body=body,
            severity=AlertSeverity.ROUTINE,
        )
