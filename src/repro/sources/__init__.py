"""Alert sources: the five service types of Figure 1.

- :mod:`~repro.sources.base` — common machinery: every source links the
  SIMBA library and delivers with "IM-with-acknowledgement followed by
  email" (§4.2).
- :mod:`~repro.sources.webserver` — simulated web sites for proxies to poll.
- :mod:`~repro.sources.proxy` — the information/web-store alert proxy (§2.1).
- :mod:`~repro.sources.portal` — portal-style alert services (§1, §2.1).
- :mod:`~repro.sources.webstore` — community content stores (§2.2).
- :mod:`~repro.sources.desktop` — the SIMBA Desktop Assistant (§2.5).

The Aladdin home-networking source lives in :mod:`repro.aladdin` and the
WISH location source in :mod:`repro.wish` — each is a full substrate, not
just an emitter.
"""

from repro.sources.base import AlertSource
from repro.sources.desktop import DesktopAssistant
from repro.sources.portal import PortalAlertService
from repro.sources.proxy import AlertProxy, ProxyRule
from repro.sources.webserver import SimulatedWebSite
from repro.sources.webstore import CommunityStore

__all__ = [
    "AlertProxy",
    "AlertSource",
    "CommunityStore",
    "DesktopAssistant",
    "PortalAlertService",
    "ProxyRule",
    "SimulatedWebSite",
]
