"""Portal-style information alert services (§1, §2.1).

Two flavours:

- :class:`PortalAlertService` — a SIMBA-integrated portal (Yahoo!-like) that
  delivers through the SIMBA library (IM-ack-then-email to MAB).
- :class:`LegacyEmailAlertService` — a pre-SIMBA service that only sends
  plain emails, with the category keyword embedded in the subject line the
  way MSN Mobile did ("[Stocks] MSFT up 3%").  MAB treats it "just like any
  other regular human user" sending email (§3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.alert import Alert, AlertSeverity
from repro.core.delivery_modes import DeliveryMode
from repro.core.endpoint import SimbaEndpoint
from repro.net.email import EmailService
from repro.sources.base import AlertSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class PortalAlertService(AlertSource):
    """A general portal offering many alert categories.

    ``publish`` is the portal's internal event: something matched a user's
    subscription, generating one alert per subscribed MAB.
    """

    #: The categories the analyzed commercial portal offered (§1, §3.3).
    WELL_KNOWN_KEYWORDS = (
        "Stocks",
        "Financial news",
        "Earnings reports",
        "Weather",
        "Sports",
        "Lottery",
        "Career",
        "Real estate",
        "News",
    )

    def publish(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
    ):
        """Emit one alert in ``keyword`` to every subscribed MAB."""
        return self.emit(keyword, subject, body, severity)


class LegacyEmailAlertService:
    """An email-only alert service that knows nothing about SIMBA.

    It needs no SIMBA endpoint — just an SMTP submission.  The keyword rides
    in the subject as ``[Keyword] ...`` so MAB's classifier can extract it
    with a subject rule.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        email_service: EmailService,
        sender_address: Optional[str] = None,
        keyword_in_sender: bool = False,
    ):
        self.env = env
        self.name = name
        self.email_service = email_service
        self.sender_address = sender_address or f"{name}@legacy-mail"
        #: Yahoo!/Alerts.com style: the keyword rides in the sender name,
        #: e.g. ``"yahoo (Stocks) <yahoo@legacy-mail>"`` (§4.2).  Otherwise
        #: MSN-Mobile style: ``[Keyword]`` in the subject.
        self.keyword_in_sender = keyword_in_sender
        self.targets: list[str] = []
        self.emitted: list[Alert] = []

    def add_target(self, email_address: str) -> None:
        """Subscribe a recipient address (a MAB email address, usually)."""
        self.targets.append(email_address)

    def publish(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
    ) -> Alert:
        """Send one alert as a plain email to every target."""
        if self.keyword_in_sender:
            sender = f"{self.name} ({keyword}) <{self.sender_address}>"
            wire_subject = subject
        else:
            sender = self.sender_address
            wire_subject = f"[{keyword}] {subject}"
        alert = Alert(
            source=self.name,
            keyword=keyword,
            subject=wire_subject,
            body=body,
            created_at=self.env.now,
            severity=severity,
            keyword_field="sender" if self.keyword_in_sender else "subject",
        )
        self.emitted.append(alert)
        for target in self.targets:
            self.email_service.send(
                sender,
                target,
                alert.subject,
                alert.encode(),
                correlation=alert.alert_id,
            )
        return alert


def simba_portal(
    env: "Environment",
    name: str,
    endpoint: SimbaEndpoint,
    mode: Optional[DeliveryMode] = None,
) -> PortalAlertService:
    """Convenience constructor mirroring ``world.create_source``."""
    return PortalAlertService(env, name, endpoint, mode=mode)
