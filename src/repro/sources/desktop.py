"""The SIMBA Desktop Assistant (§2.5).

"We have built a SIMBA Desktop Assistant that runs on a user's primary
machine and remains inactive until the idle time of interactive activities
exceeds a user-specified threshold and the software determines that the user
has not processed emails from other places.  Currently, the Assistant
software generates alerts when high-importance emails come in and when
high-importance reminders pop up."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.alert import Alert, AlertSeverity
from repro.core.delivery_modes import DeliveryMode
from repro.core.endpoint import SimbaEndpoint
from repro.sources.base import AlertSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

DEFAULT_IDLE_THRESHOLD = 600.0  # ten minutes away from the keyboard


@dataclass
class SuppressedEvent:
    """An important event that did NOT alert (user was at the desk)."""

    at: float
    kind: str
    subject: str


class DesktopAssistant(AlertSource):
    """Watches the desktop and forwards what the absent user would miss."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        endpoint: SimbaEndpoint,
        idle_threshold: float = DEFAULT_IDLE_THRESHOLD,
        mode: Optional[DeliveryMode] = None,
    ):
        super().__init__(env, name, endpoint, mode=mode)
        self.idle_threshold = idle_threshold
        self.last_activity = env.now
        #: Set when the user reads mail elsewhere (webmail, another machine);
        #: then there is no point forwarding desktop notifications.
        self.processed_elsewhere = False
        self.suppressed: list[SuppressedEvent] = []

    # ------------------------------------------------------------------
    # Desktop signals
    # ------------------------------------------------------------------

    def record_activity(self) -> None:
        """Keyboard/mouse activity: the user is at the desk."""
        self.last_activity = self.env.now
        self.processed_elsewhere = False

    def mark_processed_elsewhere(self, processed: bool = True) -> None:
        self.processed_elsewhere = processed

    @property
    def idle_time(self) -> float:
        return self.env.now - self.last_activity

    @property
    def active(self) -> bool:
        """Assistant only acts once the user is demonstrably away."""
        return self.idle_time >= self.idle_threshold and not self.processed_elsewhere

    # ------------------------------------------------------------------
    # Watched events
    # ------------------------------------------------------------------

    def email_arrived(self, subject: str, importance: str) -> Optional[Alert]:
        """Hook the mail client calls for each incoming message."""
        if importance != "high":
            return None
        return self._forward("Important email", subject)

    def reminder_popped(self, subject: str, importance: str = "high") -> Optional[Alert]:
        """Hook the calendar calls for each reminder window."""
        if importance != "high":
            return None
        return self._forward("Reminder", subject)

    # ------------------------------------------------------------------
    # Mailbox watching
    # ------------------------------------------------------------------

    def watch_mailbox(self, email_service, address: str,
                      interval: float = 60.0) -> None:
        """Poll the user's desktop mailbox for unread high-importance mail.

        The assistant "determines that the user has not processed emails
        from other places": unread high-importance messages that linger
        while the user is away get forwarded (once each).
        """
        mailbox = email_service.mailbox(address)
        forwarded: set[int] = set()

        def loop(env):
            while True:
                yield env.timeout(interval)
                if not self.active:
                    continue
                for message in mailbox.peek_unread():
                    if message.headers.get("importance") != "high":
                        continue
                    if message.message_id in forwarded:
                        continue
                    forwarded.add(message.message_id)
                    self.email_arrived(message.subject, importance="high")

        self.env.process(loop(self.env), name=f"{self.name}-mail-watch")

    def _forward(self, kind: str, subject: str) -> Optional[Alert]:
        if not self.active:
            self.suppressed.append(
                SuppressedEvent(at=self.env.now, kind=kind, subject=subject)
            )
            return None
        alert, _processes = self.emit(
            keyword=kind,
            subject=f"[{kind}] {subject}",
            body=f"{kind} while you were away (idle {self.idle_time:.0f}s): "
            f"{subject}",
            severity=AlertSeverity.IMPORTANT,
        )
        return alert
