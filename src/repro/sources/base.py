"""Common alert-source machinery.

"We modified the information alert proxy, web store alert proxy, Aladdin
home gateway server, WISH alert server, and the desktop assistant to use the
'IM-with-acknowledgement followed by email' delivery mode of the SIMBA
library to deliver alerts to MyAlertBuddy" (§4.2).

An :class:`AlertSource` owns a :class:`~repro.core.endpoint.SimbaEndpoint`
(its own IM/email identities and client software) and a list of *target
books* — the source-facing address books of the MyAlertBuddies subscribed to
it.  Only MAB addresses appear in those books; the source never learns a
user address (§3.3 privacy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.addresses import AddressBook
from repro.core.alert import Alert, AlertSeverity
from repro.core.delivery_modes import DeliveryMode, im_ack_then_email
from repro.core.endpoint import SimbaEndpoint
from repro.core.router import DeliveryOutcome

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment
    from repro.sim.process import Process


class AlertSource:
    """Base class for everything that generates alerts."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        endpoint: SimbaEndpoint,
        mode: Optional[DeliveryMode] = None,
    ):
        self.env = env
        self.name = name
        self.endpoint = endpoint
        self.mode = mode if mode is not None else im_ack_then_email()
        self.targets: list[AddressBook] = []
        self.emitted: list[Alert] = []
        self.outcomes: list[DeliveryOutcome] = []

    def add_target(self, book: AddressBook) -> None:
        """Subscribe one MyAlertBuddy (by its source-facing address book)."""
        self.targets.append(book)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def make_alert(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
        keyword_field: str = "keyword",
    ) -> Alert:
        return Alert(
            source=self.name,
            keyword=keyword,
            subject=subject,
            body=body,
            created_at=self.env.now,
            severity=severity,
            keyword_field=keyword_field,
        )

    def emit(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
    ) -> tuple[Alert, list["Process"]]:
        """Create an alert and start delivering it to every target.

        Returns the alert and the per-target delivery processes (each
        resolves to a :class:`DeliveryOutcome`).
        """
        alert = self.make_alert(keyword, subject, body, severity)
        self.emitted.append(alert)
        processes = [
            self.env.process(
                self._deliver(alert, book),
                name=f"{self.name}-deliver-{alert.alert_id}",
            )
            for book in self.targets
        ]
        return alert, processes

    def emit_and_wait(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
    ):
        """Generator form of :meth:`emit`: wait for all deliveries."""
        alert, processes = self.emit(keyword, subject, body, severity)
        results = yield self.env.all_of(processes)
        return alert, list(results.values())

    def _deliver(self, alert: Alert, book: AddressBook):
        outcome = yield from self.endpoint.deliver_alert(alert, self.mode, book)
        self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------

    def delivery_ratio(self) -> float:
        if not self.outcomes:
            return float("nan")
        return sum(1 for o in self.outcomes if o.delivered) / len(self.outcomes)

    def fallback_ratio(self) -> float:
        """Fraction of successful deliveries that needed a backup block."""
        delivered = [o for o in self.outcomes if o.delivered]
        if not delivered:
            return float("nan")
        return sum(1 for o in delivered if o.delivered_via != 0) / len(delivered)
