"""Common alert-source machinery.

"We modified the information alert proxy, web store alert proxy, Aladdin
home gateway server, WISH alert server, and the desktop assistant to use the
'IM-with-acknowledgement followed by email' delivery mode of the SIMBA
library to deliver alerts to MyAlertBuddy" (§4.2).

An :class:`AlertSource` owns a :class:`~repro.core.endpoint.SimbaEndpoint`
(its own IM/email identities and client software) and a list of *target
books* — the source-facing address books of the MyAlertBuddies subscribed to
it.  Only MAB addresses appear in those books; the source never learns a
user address (§3.3 privacy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.addresses import AddressBook
from repro.core.admission import AdmissionConfig, build_controller
from repro.core.alert import Alert, AlertSeverity
from repro.core.delivery_modes import DeliveryMode, im_ack_then_email
from repro.core.endpoint import SimbaEndpoint
from repro.core.pipeline import SourceDeliveryPipeline
from repro.core.router import DeliveryOutcome

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment
    from repro.sim.process import Process


class AlertSource:
    """Base class for everything that generates alerts.

    Delivery itself (optional processing delay → mode execution → outcome
    bookkeeping) is the shared
    :class:`~repro.core.pipeline.SourceDeliveryPipeline`; this class adds
    alert construction and the target registry.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        endpoint: SimbaEndpoint,
        mode: Optional[DeliveryMode] = None,
        admission: Optional[AdmissionConfig] = None,
    ):
        self.env = env
        self.name = name
        self.endpoint = endpoint
        self.pipeline = SourceDeliveryPipeline(
            env, endpoint, mode if mode is not None else im_ack_then_email()
        )
        #: Source-side traffic hardening: per-channel token buckets applied
        #: at the submission layer of this source's delivery engine (a
        #: bursty producer is throttled at *its* provider, not the MAB's).
        self.admission = build_controller(admission, name)
        if self.admission is not None:
            endpoint.engine.admission = self.admission
        self.targets: list[AddressBook] = []
        #: Owner name → book, for O(1) per-recipient emission at farm scale.
        self.targets_by_owner: dict[str, AddressBook] = {}
        self.emitted: list[Alert] = []

    @property
    def mode(self) -> DeliveryMode:
        return self.pipeline.mode

    @mode.setter
    def mode(self, mode: DeliveryMode) -> None:
        self.pipeline.mode = mode

    @property
    def outcomes(self) -> list[DeliveryOutcome]:
        return self.pipeline.outcomes

    def add_target(self, book: AddressBook) -> None:
        """Subscribe one MyAlertBuddy (by its source-facing address book)."""
        self.targets.append(book)
        self.targets_by_owner[book.owner] = book

    def target_for(self, owner: str) -> AddressBook:
        """O(1) lookup of one subscribed book by its owner name."""
        return self.targets_by_owner[owner]

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def make_alert(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
        keyword_field: str = "keyword",
        alert_id: Optional[str] = None,
    ) -> Alert:
        # An explicit alert_id keeps ids independent of the process-global
        # counter — required wherever ids must match across processes (the
        # sharded farm's layout-invariance depends on it).
        kwargs = {} if alert_id is None else {"alert_id": alert_id}
        return Alert(
            source=self.name,
            keyword=keyword,
            subject=subject,
            body=body,
            created_at=self.env.now,
            severity=severity,
            keyword_field=keyword_field,
            **kwargs,
        )

    def emit(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
        alert_id: Optional[str] = None,
    ) -> tuple[Alert, list["Process"]]:
        """Create an alert and start delivering it to every target.

        Returns the alert and the per-target delivery processes (each
        resolves to a :class:`DeliveryOutcome`).
        """
        alert = self.make_alert(keyword, subject, body, severity, alert_id=alert_id)
        self.emitted.append(alert)
        processes = [
            self.env.process(
                self.deliver(alert, book),
                name=f"{self.name}-deliver-{alert.alert_id}",
            )
            for book in self.targets
        ]
        return alert, processes

    def emit_to(
        self,
        target: "AddressBook | str",
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
        alert_id: Optional[str] = None,
    ) -> tuple[Alert, "Process"]:
        """Create an alert and deliver it to one recipient only.

        The farm-scale path: a portal alert addresses one recipient, so
        emission must be O(1) in the number of subscribed MABs, not a
        broadcast over ``targets``.  ``target`` is an address book or the
        owner name of a registered one.
        """
        book = target if isinstance(target, AddressBook) else self.target_for(target)
        alert = self.make_alert(keyword, subject, body, severity, alert_id=alert_id)
        self.emitted.append(alert)
        process = self.env.process(
            self.deliver(alert, book),
            name=f"{self.name}-deliver-{alert.alert_id}",
        )
        return alert, process

    def emit_and_wait(
        self,
        keyword: str,
        subject: str,
        body: str,
        severity: AlertSeverity = AlertSeverity.ROUTINE,
    ):
        """Generator form of :meth:`emit`: wait for all deliveries."""
        alert, processes = self.emit(keyword, subject, body, severity)
        results = yield self.env.all_of(processes)
        return alert, list(results.values())

    def deliver(self, alert: Alert, book: AddressBook):
        """Deliver ``alert`` to ``book`` (generator returning the outcome).

        The public single-delivery entry point — experiments that replay a
        log against specific recipients drive this directly.
        """
        outcome = yield from self.pipeline.send(alert, book)
        return outcome

    # Backwards-compatible alias (pre-1.1 private name).
    _deliver = deliver

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------

    def delivery_ratio(self) -> float:
        if not self.outcomes:
            return float("nan")
        return sum(1 for o in self.outcomes if o.delivered) / len(self.outcomes)

    def fallback_ratio(self) -> float:
        """Fraction of successful deliveries that needed a backup block."""
        delivered = [o for o in self.outcomes if o.delivered]
        if not delivered:
            return float("nan")
        return sum(1 for o in delivered if o.delivered_via != 0) / len(delivered)
