"""Render span trees and per-trace latency attribution as text.

The span tree is the forensic view (`python -m repro trace`): one alert's
actual causal path — source send, channel transits, receive/ack, pipeline
stages, delivery blocks, ack waits, retries, failover handoffs — indented
by parenthood, ordered by ``(start, span_id)``.

Attribution buckets a trace's span durations by what the time was spent
*on* (pipeline stage vs channel wait vs failover stall).  Buckets are
reported side by side, not as a partition: an IM ack's transit happens
*during* the sender's ack wait, and an email's transit outlives its
fire-and-forget block, so bucket totals legitimately overlap.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from repro.obs.trace import Span

#: Span names whose duration counts as sender-side channel waiting.
_CHANNEL_WAIT = ("ack.wait",)
_TRANSIT_PREFIX = "transit."
_STAGE_PREFIX = "stage."


def _sorted_tree(spans: Iterable[Span]):
    """(span, depth) rows: children under parents, ``(start, id)`` order."""
    spans = list(spans)
    by_parent: dict[Optional[int], list[Span]] = defaultdict(list)
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent[parent].append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.start, s.span_id))

    rows: list[tuple[Span, int]] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for span in by_parent.get(parent, ()):
            rows.append((span, depth))
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return rows


def render_span_tree(spans: Iterable[Span], title: str = "") -> str:
    """ASCII tree of one trace's spans."""
    rows = _sorted_tree(spans)
    lines = [f"trace {title}" if title else "trace"]
    if not rows:
        lines.append("  (no spans)")
        return "\n".join(lines)
    for span, depth in rows:
        indent = "  " * (depth + 1)
        if span.closed:
            timing = f"t={span.start:.2f}..{span.end:.2f} (+{span.duration:.2f}s)"
            outcome = span.outcome or "ok"
        else:
            timing = f"t={span.start:.2f}.. (open)"
            outcome = "…"
        notes = " ".join(
            f"{key}={value}" for key, value in sorted(span.annotations.items())
        )
        lines.append(
            f"{indent}{span.name} [{outcome}] {timing}"
            + (f"  {notes}" if notes else "")
        )
    return "\n".join(lines)


def attribute_spans(spans: Iterable[Span]) -> dict[str, float]:
    """Bucket one trace's closed-span durations for latency attribution.

    Keys: ``end_to_end`` (the source.deliver root, falling back to the
    span extent), ``stage:<name>`` (route's deliver time is subtracted —
    a stage bucket measures pipeline work, not channel waits),
    ``channel:ack_wait``, ``channel:transit:<type>``, ``failover:handoff``.
    """
    spans = [s for s in spans if s.closed]
    buckets: dict[str, float] = defaultdict(float)
    deliver_user_by_parent: dict[Optional[int], float] = defaultdict(float)
    for span in spans:
        if span.name == "deliver.user":
            deliver_user_by_parent[span.parent_id] += span.duration
    for span in spans:
        name = span.name
        if name == "source.deliver":
            buckets["end_to_end"] += span.duration
        elif name.startswith(_STAGE_PREFIX):
            nested = deliver_user_by_parent.get(span.span_id, 0.0)
            buckets[f"stage:{name[len(_STAGE_PREFIX):]}"] += max(
                0.0, span.duration - nested
            )
        elif name in _CHANNEL_WAIT:
            buckets["channel:ack_wait"] += span.duration
        elif name.startswith(_TRANSIT_PREFIX):
            buckets[
                f"channel:transit:{name[len(_TRANSIT_PREFIX):]}"
            ] += span.duration
        elif name == "failover.handoff":
            buckets["failover:handoff"] += span.duration
    if "end_to_end" not in buckets and spans:
        start = min(s.start for s in spans)
        end = max(s.end for s in spans)
        buckets["end_to_end"] = end - start
    return dict(buckets)


def render_attribution(buckets: dict[str, float]) -> str:
    """One trace's attribution as aligned text rows, largest first."""
    if not buckets:
        return "(no closed spans)"
    e2e = buckets.get("end_to_end", 0.0)
    lines = [f"end_to_end: {e2e:.2f}s"]
    rest = sorted(
        ((k, v) for k, v in buckets.items() if k != "end_to_end"),
        key=lambda item: (-item[1], item[0]),
    )
    for key, value in rest:
        share = f" ({value / e2e * 100.0:.0f}%)" if e2e > 0 else ""
        lines.append(f"  {key}: {value:.2f}s{share}")
    return "\n".join(lines)
