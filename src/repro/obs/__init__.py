"""Structured per-alert tracing (zero-overhead-when-off observability).

Install a :class:`TraceSink` on an environment and every instrumented
layer — sources, channels, endpoints, pipeline stages, delivery blocks,
watchdogs, replication — emits :class:`Span` records keyed by alert id.
See :mod:`repro.obs.trace` for the design rules (pure observation,
deterministic ordering, bounded memory).
"""

from repro.obs.render import (
    attribute_spans,
    render_attribution,
    render_span_tree,
)
from repro.obs.trace import LIFECYCLE_PREFIX, Span, TraceSink, lifecycle_trace

__all__ = [
    "LIFECYCLE_PREFIX",
    "Span",
    "TraceSink",
    "attribute_spans",
    "lifecycle_trace",
    "render_attribution",
    "render_span_tree",
]
