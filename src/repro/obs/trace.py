"""Per-alert causal tracing: spans, trace contexts, the farm's TraceSink.

SIMBA's dependability claim is end-to-end, but journals and oracle verdicts
only observe *endpoints*.  This module records the causal path an alert
actually took — source send → channel transit → receive/ack → pipeline
stages → delivery-mode blocks → ack waits → retries → failover handoffs —
as a tree of :class:`Span` objects keyed by the alert id (which already
rides every hop as ``Message.correlation``).

Design rules, in order of importance:

- **Zero overhead when off.**  Tracing is enabled by installing a
  :class:`TraceSink` on an :class:`~repro.sim.kernel.Environment`
  (``sink.install(env)``).  Every instrumentation site does one slot load
  (``tr = env.tracer``) and skips everything else when it is None — no
  allocation, no string formatting, no branches beyond the None check.
- **Pure observation.**  The sink never draws randomness, never schedules
  events and never yields: a traced run's event sequence — and therefore
  its journals, ack tables and fingerprints — is byte-identical to the
  untraced run.
- **Deterministic ordering.**  Span ids come from a per-sink counter and
  spans are stored in begin order; for a fixed seed the sink's content is
  bit-for-bit reproducible (the trace-golden test pins this).
- **Bounded memory.**  At most ``max_traces`` traces and
  ``max_spans_per_trace`` spans per trace are retained; the oldest trace
  is evicted first and evictions are counted, never silent.

Spans carry explicit parent ids, threaded through the call graph
(``IncomingAlert.trace_parent``, ``Message.trace_parent``, keyword
arguments) rather than inferred from an ambient stack — interleaved
processes in a discrete-event kernel make implicit context fragile.
Lifecycle events without an alert (MDC restarts, failover promotions) land
on per-entity ``lifecycle:<name>`` traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: Trace-id prefix for spans not tied to one alert (restarts, promotions).
LIFECYCLE_PREFIX = "lifecycle:"


def lifecycle_trace(name: str) -> str:
    """Trace id for an entity's lifecycle events (``lifecycle:<name>``)."""
    return f"{LIFECYCLE_PREFIX}{name}"


@dataclass
class Span:
    """One timed operation in an alert's causal tree.

    ``end``/``outcome`` stay None while the span is open; a span left open
    after a run quiesced means the operation was cut down mid-flight (e.g.
    a crash killed the process) — informative, not an error.
    """

    span_id: int
    trace_id: str
    name: str
    start: float
    parent_id: Optional[int] = None
    end: Optional[float] = None
    outcome: Optional[str] = None
    annotations: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed sim-time; 0.0 while still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end is not None

    def to_row(self, trace_id: Optional[str] = None) -> dict[str, Any]:
        """Plain-JSON form (floats via ``repr`` for byte-stable goldens)."""
        row: dict[str, Any] = {
            "span_id": self.span_id,
            "trace_id": trace_id if trace_id is not None else self.trace_id,
            "name": self.name,
            "start": repr(self.start),
        }
        if self.parent_id is not None:
            row["parent_id"] = self.parent_id
        if self.end is not None:
            row["end"] = repr(self.end)
        if self.outcome is not None:
            row["outcome"] = self.outcome
        if self.annotations:
            row["annotations"] = {
                key: repr(value) if isinstance(value, float) else value
                for key, value in sorted(self.annotations.items())
            }
        return row


class TraceSink:
    """Collects spans for one environment; bounded, deterministic, picklable.

    The sink travels inside :class:`~repro.testkit.harness.ChaosReport`
    through the sweep's process pool, so it must never hold the environment
    (``__getstate__`` drops it — a sink read back from a worker is a pure
    record, not an active tracer).
    """

    def __init__(
        self,
        max_traces: int = 4096,
        max_spans_per_trace: int = 512,
    ):
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self.env: Optional["Environment"] = None
        self._next_id = 1
        #: trace id → spans in begin order (dict preserves first-seen order).
        self._traces: dict[str, list[Span]] = {}
        self.dropped_traces = 0
        self.dropped_spans = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self, env: "Environment") -> "TraceSink":
        """Attach to ``env``; instrumentation sites start emitting."""
        self.env = env
        env.tracer = self
        return self

    def uninstall(self) -> None:
        """Detach; the environment's instrumentation goes quiet again."""
        if self.env is not None and self.env.tracer is self:
            self.env.tracer = None
        self.env = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["env"] = None  # never pickle the live kernel
        return state

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _store(self, trace_id: str, span: Span) -> Span:
        spans = self._traces.get(trace_id)
        if spans is None:
            while len(self._traces) >= self.max_traces:
                oldest = next(iter(self._traces))
                self.dropped_spans += len(self._traces.pop(oldest))
                self.dropped_traces += 1
            spans = self._traces[trace_id] = []
        if len(spans) >= self.max_spans_per_trace:
            self.dropped_spans += 1
            return span  # still returned so callers can end() it harmlessly
        spans.append(span)
        return span

    def begin(
        self,
        trace_id: str,
        name: str,
        parent: Optional[int] = None,
        start: Optional[float] = None,
        **annotations: Any,
    ) -> Span:
        """Open a span; ``start`` defaults to now (pass one for retroactive
        spans, e.g. channel transit measured at delivery time)."""
        span = Span(
            span_id=self._next_id,
            trace_id=trace_id,
            name=name,
            start=self.env.now if start is None else start,
            parent_id=parent,
            annotations=dict(annotations) if annotations else {},
        )
        self._next_id += 1
        return self._store(trace_id, span)

    def end(
        self, span: Span, outcome: str = "ok", **annotations: Any
    ) -> Span:
        """Close a span with its outcome (idempotent-safe: last close wins)."""
        span.end = self.env.now
        span.outcome = outcome
        if annotations:
            span.annotations.update(annotations)
        return span

    def event(
        self,
        trace_id: str,
        name: str,
        parent: Optional[int] = None,
        outcome: str = "ok",
        **annotations: Any,
    ) -> Span:
        """A zero-duration span (restart, promotion, fencing discovery)."""
        span = self.begin(trace_id, name, parent=parent, **annotations)
        span.end = span.start
        span.outcome = outcome
        return span

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def trace_ids(self) -> list[str]:
        """Trace ids in first-appearance order."""
        return list(self._traces)

    def spans(self, trace_id: str) -> list[Span]:
        """One trace's spans in begin order (empty list if unknown)."""
        return list(self._traces.get(trace_id, ()))

    def all_spans(self) -> Iterable[Span]:
        for spans in self._traces.values():
            yield from spans

    def span_count(self) -> int:
        return sum(len(spans) for spans in self._traces.values())

    def find_spans(self, name: str) -> list[Span]:
        """Every retained span with this name, in begin order."""
        return [s for s in self.all_spans() if s.name == name]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_payload(
        self, rename: Optional[Callable[[str], str]] = None
    ) -> dict[str, Any]:
        """Plain-JSON payload: traces in first-appearance order.

        ``rename`` maps trace ids for golden stability (alert ids come from
        a process-global counter, so goldens normalize them to
        first-appearance order; span ids are sink-local and already
        deterministic).
        """
        traces = []
        for trace_id, spans in self._traces.items():
            shown = rename(trace_id) if rename is not None else trace_id
            traces.append(
                {
                    "trace_id": shown,
                    "spans": [span.to_row(shown) for span in spans],
                }
            )
        return {
            "traces": traces,
            "dropped_traces": self.dropped_traces,
            "dropped_spans": self.dropped_spans,
        }

    def to_json(
        self,
        rename: Optional[Callable[[str], str]] = None,
        indent: Optional[int] = 1,
    ) -> str:
        return json.dumps(self.to_payload(rename), indent=indent)
