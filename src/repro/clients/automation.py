"""Client-software lifecycle and automation-pointer semantics.

An automation interface "allows programmatic access to virtually all the
operations that can be performed by human users" (§4.1.1) — but the paper's
key observation is what happens on the *exception* paths:

- Restarting the client invalidates every automation pointer the driving
  application holds (:class:`~repro.errors.StalePointerError`).
- A hung client stops responding to calls (:class:`~repro.errors.ClientHungError`).
- A modal dialog blocks every operation (:class:`~repro.errors.DialogBlockedError`).

:class:`ClientSoftware` implements that contract; concrete clients guard
every automation method with :meth:`ClientSoftware.guard`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import (
    ClientHungError,
    DialogBlockedError,
    StalePointerError,
)
from repro.clients.screen import Screen

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class AutomationHandle:
    """An automation pointer into one *instance* (generation) of a client.

    Holding a handle across a client restart makes it stale — every call
    through it then raises :class:`StalePointerError`, and the holder must
    "refresh all its pointers to point to the new instance" (§4.1.1).
    """

    def __init__(self, client: "ClientSoftware", generation: int):
        self._client = client
        self.generation = generation

    @property
    def client(self) -> "ClientSoftware":
        return self._client

    def valid(self) -> bool:
        """Pointer-validity probe used by the sanity-checking API."""
        return (
            self._client.running
            and self.generation == self._client.generation
        )

    def __repr__(self) -> str:
        state = "valid" if self.valid() else "STALE"
        return f"<AutomationHandle {self._client.name} gen={self.generation} {state}>"


class ClientSoftware:
    """Base class for simulated GUI communication clients."""

    def __init__(self, env: "Environment", screen: Screen, name: str):
        self.env = env
        self.screen = screen
        self.name = name
        self.running = False
        self.hung = False
        self.generation = 0
        #: Lifecycle counters, read by the fault-tolerance benches.
        self.starts = 0
        self.terminations = 0

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    def start(self) -> AutomationHandle:
        """Launch a fresh instance and return a pointer to it."""
        if self.running:
            raise RuntimeError(f"client {self.name!r} is already running")
        self.generation += 1
        self.running = True
        self.hung = False
        self.starts += 1
        self._on_start()
        return AutomationHandle(self, self.generation)

    def terminate(self) -> None:
        """Kill the client process.

        Safe on an already-dead client (mirrors TerminateProcess).  Dialogs
        the client owned disappear with it; system dialogs stay.
        """
        if not self.running:
            return
        self.running = False
        self.hung = False
        self.terminations += 1
        self.screen.dismiss_owned_by(self.name)
        self._on_terminate()

    # Subclass hooks -----------------------------------------------------

    def _on_start(self) -> None:
        """Instance-initialization hook for subclasses."""

    def _on_terminate(self) -> None:
        """Cleanup hook (drop network sessions etc.) for subclasses."""

    # ------------------------------------------------------------------
    # Fault hooks (driven by the injector)
    # ------------------------------------------------------------------

    def hang(self) -> bool:
        """Make the client unresponsive until killed.  True if it applied."""
        if not self.running or self.hung:
            return False
        self.hung = True
        self._on_hang()
        return True

    def _on_hang(self) -> None:
        """Subclass hook: a hung client stops servicing its network session."""

    def pop_dialog(
        self, caption: str, buttons: tuple[str, ...] = ("OK",)
    ) -> Optional[object]:
        """Pop a modal dialog owned by this client.  None if not running."""
        if not self.running:
            return None
        return self.screen.pop_dialog(caption, buttons, owner=self.name)

    # ------------------------------------------------------------------
    # The automation guard
    # ------------------------------------------------------------------

    def guard(self, handle: AutomationHandle) -> None:
        """Validate an automation call; every public method calls this first.

        Raise order matters and mirrors what a real driver observes:
        a dead/stale pointer fails before anything else; then a hung client;
        then a modal dialog blocking the UI thread.
        """
        if handle.client is not self:
            raise StalePointerError(
                f"handle for {handle.client.name!r} used on {self.name!r}"
            )
        if not self.running or handle.generation != self.generation:
            raise StalePointerError(
                f"stale automation pointer into {self.name!r} "
                f"(gen {handle.generation}, current {self.generation}, "
                f"running={self.running})"
            )
        if self.hung:
            raise ClientHungError(f"client {self.name!r} is not responding")
        blocking = self.screen.blocking(self.name)
        if blocking is not None:
            raise DialogBlockedError(
                f"client {self.name!r} blocked by dialog {blocking.caption!r}"
            )
