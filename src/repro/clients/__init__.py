"""Simulated third-party communication client software.

The paper drives real GUI email/IM clients through COM automation
interfaces, and observes that those interfaces "do not model and simulate
human operations in case of exceptions" (§4.1.1): clients hang, get logged
out, invalidate every automation pointer when restarted, and pop modal
dialog boxes that block all progress.

This package reproduces that failure surface faithfully so the
exception-handling-automation machinery in :mod:`repro.core.managers` has
something real to recover from:

- :mod:`~repro.clients.automation` — client lifecycle + pointer semantics.
- :mod:`~repro.clients.dialogs` / :mod:`~repro.clients.screen` — modal
  dialog boxes on a per-machine screen.
- :mod:`~repro.clients.im_client` / :mod:`~repro.clients.email_client` —
  the concrete GUI clients wrapping the network substrates.
"""

from repro.clients.automation import AutomationHandle, ClientSoftware
from repro.clients.dialogs import DialogBox
from repro.clients.email_client import EmailClient
from repro.clients.im_client import IMClient
from repro.clients.screen import Screen

__all__ = [
    "AutomationHandle",
    "ClientSoftware",
    "DialogBox",
    "EmailClient",
    "IMClient",
    "Screen",
]
