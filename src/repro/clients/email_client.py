"""Simulated GUI email client (think Outlook driven via automation).

Unlike IM, the mailbox lives on the server, so a client crash or restart
loses nothing that was not already being processed — but the client itself
exhibits the same automation failure surface (hangs, stale pointers, modal
dialogs) as the IM client.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.clients.automation import AutomationHandle, ClientSoftware
from repro.clients.screen import Screen
from repro.net.email import EmailMessage, EmailService, Mailbox

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class EmailClient(ClientSoftware):
    """GUI email client bound to one mailbox address."""

    def __init__(
        self,
        env: "Environment",
        screen: Screen,
        service: EmailService,
        address: str,
        name: str = "email-client",
    ):
        super().__init__(env, screen, name)
        self.service = service
        self.address = address

    @property
    def _mailbox(self) -> Mailbox:
        return self.service.mailbox(self.address)

    # ------------------------------------------------------------------
    # Automation interface
    # ------------------------------------------------------------------

    def send_mail(
        self,
        handle: AutomationHandle,
        to: str,
        subject: str,
        body: str,
        importance: str = "normal",
        correlation: Optional[str] = None,
    ) -> EmailMessage:
        """Submit an email through the client."""
        self.guard(handle)
        return self.service.send(
            self.address,
            to,
            subject,
            body,
            correlation=correlation,
            importance=importance,
        )

    def unread_count(self, handle: AutomationHandle) -> int:
        """App-specific sanity probe: size of the unprocessed-email backlog."""
        self.guard(handle)
        return self._mailbox.unread_count

    def peek_unread(self, handle: AutomationHandle) -> list[EmailMessage]:
        """Non-destructive view of unread mail (backlog invariant checks)."""
        self.guard(handle)
        return self._mailbox.peek_unread()

    def fetch_next(self, handle: AutomationHandle, predicate=None):
        """Event yielding the next unread email (marks it read)."""
        self.guard(handle)
        return self._mailbox.receive(predicate)

    def server_reachable(self, handle: AutomationHandle) -> bool:
        """App-specific sanity probe: is the mail relay up?"""
        self.guard(handle)
        return self.service.available
