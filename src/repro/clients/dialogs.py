"""Modal dialog boxes.

"Dialog boxes ... stay on the screen forever and prevent the entire
application from making progress" when software is driven through automation
(§4.1.1).  A :class:`DialogBox` has a caption and a set of buttons; clicking
any button dismisses it.  Dialogs raised by a client block that client;
system dialogs (``owner=None``) block every client on the screen.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_dialog_ids = itertools.count(1)


@dataclass
class DialogBox:
    """One modal dialog on a screen."""

    caption: str
    buttons: tuple[str, ...]
    created_at: float
    #: Name of the client software that popped it, or None for system dialogs.
    owner: Optional[str] = None
    dialog_id: int = field(default_factory=lambda: next(_dialog_ids))
    dismissed: bool = False
    dismissed_by: Optional[str] = None
    dismissed_at: Optional[float] = None

    def __post_init__(self):
        if not self.buttons:
            raise ValueError("a dialog box must have at least one button")

    def click(self, button: str, now: float) -> None:
        """Press ``button``, dismissing the dialog."""
        if self.dismissed:
            raise RuntimeError(f"dialog {self.caption!r} already dismissed")
        if button not in self.buttons:
            raise ValueError(
                f"dialog {self.caption!r} has no button {button!r} "
                f"(has {self.buttons})"
            )
        self.dismissed = True
        self.dismissed_by = button
        self.dismissed_at = now
