"""Simulated GUI IM client (think MSN Messenger driven via automation).

The client logs an address on to an :class:`~repro.net.im.IMService`, pumps
incoming IMs from the network session into an application-visible queue, and
exposes send/receive/status calls through the automation guard.  Its failure
behaviour matches the paper's observations: a spurious server-side logout is
fixed by re-logon; a hang freezes the pump (messages arriving meanwhile are
lost — the client ate them without showing them); killing the client drops
the session and invalidates all pointers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.clients.automation import AutomationHandle, ClientSoftware
from repro.clients.screen import Screen
from repro.errors import NotLoggedInError
from repro.net.im import IMMessage, IMService, IMSession
from repro.sim.stores import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class IMClient(ClientSoftware):
    """GUI IM client for a single IM address."""

    def __init__(
        self,
        env: "Environment",
        screen: Screen,
        service: IMService,
        address: str,
        name: str = "im-client",
    ):
        super().__init__(env, screen, name)
        self.service = service
        self.address = address
        self._session: Optional[IMSession] = None
        #: Messages the client has surfaced to the driving application.
        self.incoming: Store = Store(env)

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------

    def _on_terminate(self) -> None:
        if self._session is not None and self._session.active:
            self._session.logout()
        self._session = None
        self.incoming.clear()

    # ------------------------------------------------------------------
    # Automation interface
    # ------------------------------------------------------------------

    def logon(self, handle: AutomationHandle) -> None:
        """Log on to the IM server (raises ChannelUnavailable during outages)."""
        self.guard(handle)
        self._session = self.service.login(self.address)
        self.env.process(
            self._pump(self._session, self.generation),
            name=f"{self.name}-pump",
        )

    def logoff(self, handle: AutomationHandle) -> None:
        self.guard(handle)
        if self._session is not None and self._session.active:
            self._session.logout()
        self._session = None

    def is_logged_on(self, handle: AutomationHandle) -> bool:
        """App-specific sanity probe #1 (§4.1.1: 'still logged on?')."""
        self.guard(handle)
        return self._session is not None and self._session.active

    def can_launch_session(self, handle: AutomationHandle) -> bool:
        """App-specific sanity probe #2 ('can it launch IM sessions?')."""
        self.guard(handle)
        return (
            self._session is not None
            and self._session.active
            and self.service.available
        )

    def buddy_status(self, handle: AutomationHandle, address: str) -> bool:
        """Presence lookup ('obtain the status of the buddies')."""
        self.guard(handle)
        if self._session is None or not self._session.active:
            raise NotLoggedInError(f"{self.name!r} is not logged on")
        return self.service.presence.is_online(address)

    def send_instant_message(
        self,
        handle: AutomationHandle,
        to: str,
        body: str,
        subject: str = "",
        correlation: Optional[str] = None,
    ) -> IMMessage:
        """Send one IM; returns the message (with its sequence number)."""
        self.guard(handle)
        if self._session is None or not self._session.active:
            raise NotLoggedInError(f"{self.name!r} is not logged on")
        return self._session.send(to, body, subject=subject, correlation=correlation)

    def next_message(self, handle: AutomationHandle, predicate=None):
        """Event yielding the next incoming IM surfaced by the client."""
        self.guard(handle)
        return self.incoming.get(predicate)

    @property
    def pending_incoming(self) -> int:
        """Messages surfaced but not yet consumed by the driving app."""
        return len(self.incoming)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pump(self, session: IMSession, generation: int):
        """Move IMs from the network session to the app-visible queue.

        One pump per (session, client-instance); it exits when either dies.
        A message received while the client is hung is swallowed without
        being surfaced — the UI froze mid-processing.
        """
        while (
            self.running
            and self.generation == generation
            and session.active
        ):
            message = yield session.receive()
            if not self.running or self.generation != generation:
                return  # client died mid-receive; message is gone with it
            if self.hung:
                continue  # swallowed by the frozen UI
            yield self.incoming.put(message)
