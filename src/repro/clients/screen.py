"""The machine's screen: where modal dialog boxes live.

The monkey thread (§4.1.1) periodically scans this screen "for dialog boxes
with matching captions" and clicks the appropriate buttons by synthesizing
mouse events.  Dialogs whose captions nobody registered stay up forever —
exactly the failure mode behind two of the paper's three unrecovered
incidents.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.clients.dialogs import DialogBox

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Screen:
    """All open dialogs on one machine."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._open: list[DialogBox] = []
        #: Every dialog ever shown, for post-run forensics.
        self.history: list[DialogBox] = []

    def pop_dialog(
        self,
        caption: str,
        buttons: tuple[str, ...] = ("OK",),
        owner: Optional[str] = None,
    ) -> DialogBox:
        """Show a new modal dialog."""
        dialog = DialogBox(
            caption=caption, buttons=buttons, created_at=self.env.now, owner=owner
        )
        self._open.append(dialog)
        self.history.append(dialog)
        return dialog

    def open_dialogs(self, owner: Optional[str] = None) -> list[DialogBox]:
        """Dialogs currently up; with ``owner``, those blocking that client
        (its own dialogs plus ownerless system dialogs)."""
        if owner is None:
            return list(self._open)
        return [d for d in self._open if d.owner in (owner, None)]

    def blocking(self, owner: str) -> Optional[DialogBox]:
        """The oldest dialog blocking ``owner``, if any."""
        candidates = self.open_dialogs(owner)
        return candidates[0] if candidates else None

    def click(self, dialog: DialogBox, button: str) -> None:
        """Click a button on an open dialog, removing it from the screen."""
        dialog.click(button, self.env.now)
        self._open.remove(dialog)

    def dismiss_owned_by(self, owner: str) -> int:
        """Close every dialog owned by ``owner`` (client was terminated).

        System dialogs survive their instigator.  Returns how many closed.
        """
        owned = [d for d in self._open if d.owner == owner]
        for dialog in owned:
            dialog.click(dialog.buttons[0], self.env.now)
            self._open.remove(dialog)
        return len(owned)
