"""Command-line entry point: run any paper experiment and print its table.

Usage::

    python -m repro list           # show available experiments
    python -m repro e1 [--seed N]  # run one experiment
    python -m repro all            # run E1-E8 (E9 is slow; run explicitly)
    python -m repro trace --reproducer <pinned.json>
                                   # replay traced; dump one alert's span
                                   # tree + latency attribution
"""

from __future__ import annotations

import argparse
import sys

from repro.metrics.reports import format_table


def _e1(seed: int) -> str:
    from repro.experiments import run_im_one_way

    summary = run_im_one_way(n_alerts=300, seed=seed)
    return format_table(
        ["metric", "paper", "measured"],
        [
            ["one-way IM, median", "< 1 s", f"{summary.median:.2f} s"],
            ["one-way IM, p90", "< 1 s", f"{summary.p90:.2f} s"],
        ],
        title="E1: one-way IM delivery (source -> MyAlertBuddy)",
    )


def _e2(seed: int) -> str:
    from repro.experiments import run_ack_roundtrip

    summary = run_ack_roundtrip(n_alerts=300, seed=seed)
    return format_table(
        ["metric", "paper", "measured"],
        [["ack round trip, mean", "~1.5 s", f"{summary.mean:.2f} s"]],
        title="E2: logged-ack round trip",
    )


def _e3(seed: int) -> str:
    from repro.experiments import run_proxy_routing

    summary = run_proxy_routing(n_changes=120, seed=seed)
    return format_table(
        ["metric", "paper", "measured"],
        [["proxy -> MAB -> user, mean", "~2.5 s", f"{summary.mean:.2f} s"]],
        title="E3: proxy change to user IM",
    )


def _e4(seed: int) -> str:
    from repro.experiments import run_aladdin_disarm

    result = run_aladdin_disarm(n_presses=60, seed=seed)
    return format_table(
        ["metric", "paper", "measured"],
        [
            ["remote press -> user IM, mean", "~11 s",
             f"{result.end_to_end.mean:.2f} s"],
            ["home chain", "—", f"{result.press_to_gateway_alert.mean:.2f} s"],
            ["SIMBA leg", "—", f"{result.simba_delivery.mean:.2f} s"],
        ],
        title="E4: Aladdin end-to-end",
    )


def _e5(seed: int) -> str:
    from repro.experiments import run_wish_location

    result = run_wish_location(n_moves=60, seed=seed)
    return format_table(
        ["metric", "paper", "measured"],
        [
            ["laptop report -> subscriber IM, mean", "~5 s",
             f"{result.report_to_im.mean:.2f} s"],
            ["mean confidence", "%", f"{result.mean_confidence:.1f} %"],
        ],
        title="E5: WISH location alert",
    )


def _e6(seed: int) -> str:
    from repro.experiments import run_fault_month

    result = run_fault_month(seed=seed)
    fault_triggered = result.mdc_restarts - result.rejuvenations
    return format_table(
        ["category", "paper", "measured"],
        [
            ["IM downtimes", "5 (4-103 min)",
             f"{result.im_outages} ({min(result.im_outage_minutes):.0f}-"
             f"{max(result.im_outage_minutes):.0f} min)"],
            ["re-logons", "9", result.relogons],
            ["client kill-restarts", "9", result.client_restarts],
            ["MDC restarts (fault-triggered)", "36", fault_triggered],
            ["unrecovered", "3", result.unrecovered],
            ["delivery ratio", "—", f"{result.delivery_ratio:.4f}"],
        ],
        title="E6: one-month fault injection",
    )


def _e7(seed: int) -> str:
    from repro.experiments import run_portal_log

    result = run_portal_log(seed=seed, full_scale_days=2)
    return format_table(
        ["metric", "paper", "measured"],
        [
            ["alerts/day", "~778,000", f"{result.mean_alerts_per_day:,.0f}"],
            ["recipients/day", "~225,000", f"{result.mean_users_per_day:,.0f}"],
            ["replay delivery ratio", "—",
             f"{result.replay_delivery_ratio:.3f}"],
        ],
        title="E7: portal usage-log scale",
    )


def _e8(seed: int) -> str:
    from repro.experiments import run_comparison

    result = run_comparison(seed=seed)
    rows = [
        [m.name, f"{m.delivery_ratio:.3f}", f"{m.critical_on_time_ratio:.3f}",
         f"{m.messages_per_alert:.2f}", f"{m.latency.median:.1f} s"]
        for m in result.strategies
    ]
    return format_table(
        ["strategy", "delivered", "critical on-time", "msgs/alert",
         "median latency"],
        rows,
        title="E8: SIMBA vs baselines",
    )


def _e9(seed: int) -> str:
    from repro.experiments import run_ha_ablation
    from repro.experiments.fault_tolerance import run_logging_window

    month = run_ha_ablation(seed=seed)
    rows = [
        [r.label, f"{r.delivery_ratio:.4f}", f"{r.im_path_ratio:.3f}"]
        for r in month
    ]
    logged = run_logging_window(seed=seed, logging_enabled=True)
    unlogged = run_logging_window(seed=seed, logging_enabled=False)
    rows.append(["(crash-after-ack, logging on)",
                 f"acked-but-lost={logged.acked_but_lost}", "—"])
    rows.append(["(crash-after-ack, logging off)",
                 f"acked-but-lost={unlogged.acked_but_lost}", "—"])
    return format_table(
        ["variant", "delivered", "via IM"], rows, title="E9: HA ablation"
    )


def _e10(seed: int, jobs: int | None = None) -> str:
    from repro.experiments import run_chaos_experiment
    from repro.metrics import sweep_report

    result = run_chaos_experiment(seed=seed, trials=5, jobs=jobs)
    return sweep_report(result.sweep)


def _e11(seed: int, jobs: int | None = None) -> str:
    from repro.experiments import run_failover_comparison
    from repro.metrics import failover_report

    result = run_failover_comparison(seed=seed, jobs=jobs)
    return failover_report(result)


def _e12(seed: int, jobs: int | None = None) -> str:
    from repro.experiments import run_storm_comparison
    from repro.metrics import admission_report

    result = run_storm_comparison(seed=seed, jobs=jobs)
    return admission_report(result)


def _e14(seed: int, jobs: int | None = None) -> str:
    from repro.experiments import run_adversarial_comparison
    from repro.metrics import adversarial_report

    result = run_adversarial_comparison(seed=seed, jobs=jobs)
    return adversarial_report(result)


def _e13(seed: int, shards: int | None = None, users: int = 100_000) -> str:
    from repro.experiments import run_sharded_comparison
    from repro.metrics import shard_report

    if shards is None:
        shard_counts: tuple[int, ...] = (1, 2, 4)
    elif shards <= 1:
        shard_counts = (1,)
    else:
        shard_counts = (1, shards)
    result = run_sharded_comparison(shard_counts=shard_counts, users=users,
                                    seed=seed)
    return shard_report(result)


def _score_trace(spans) -> tuple:
    """Interest score for --alert auto: prefer the trace that exercised the
    most machinery (failover handoffs, then fallback blocks, then sheer
    span count)."""
    handoffs = sum(1 for s in spans if s.name == "failover.handoff")
    fallbacks = sum(
        1
        for s in spans
        if s.name == "block" and s.annotations.get("index", 0) > 0
    )
    return (handoffs, fallbacks, len(spans))


def _run_trace_command(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Replay a pinned chaos reproducer with tracing on and "
        "render one alert's causal span tree plus latency attribution.",
    )
    parser.add_argument(
        "--reproducer", required=True,
        help="pinned reproducer JSON (see tests/data/chaos, "
        "tests/data/trace)",
    )
    parser.add_argument(
        "--alert", default="auto",
        help="alert id to render, or 'auto' (default) for the most "
        "eventful trace",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the full span record as JSON",
    )
    args = parser.parse_args(argv)

    from repro.metrics.trace_report import trace_report
    from repro.obs import (
        LIFECYCLE_PREFIX,
        attribute_spans,
        render_attribution,
        render_span_tree,
    )
    from repro.testkit.schedule import replay_reproducer

    report = replay_reproducer(args.reproducer, trace=True)
    sink = report.trace
    print(report.summary())
    print()

    alert_ids = [
        t for t in sink.trace_ids() if not t.startswith(LIFECYCLE_PREFIX)
    ]
    if not alert_ids:
        print("(run recorded no alert traces)")
        return 1
    if args.alert == "auto":
        chosen = max(alert_ids, key=lambda t: _score_trace(sink.spans(t)))
    elif args.alert in alert_ids:
        chosen = args.alert
    else:
        parser.error(
            f"unknown alert {args.alert!r}; traced: {', '.join(alert_ids)}"
        )
    spans = sink.spans(chosen)
    print(render_span_tree(spans, title=chosen))
    print()
    print(render_attribution(attribute_spans(spans)))
    print()
    print(trace_report(sink))

    if args.json_out is not None:
        from pathlib import Path

        Path(args.json_out).write_text(sink.to_json() + "\n")
        print(f"\nwrote {args.json_out}")
    return 0


EXPERIMENTS = {
    "e1": ("one-way IM < 1 s", _e1),
    "e2": ("logged ack ~1.5 s", _e2),
    "e3": ("proxy -> user ~2.5 s", _e3),
    "e4": ("Aladdin end-to-end ~11 s", _e4),
    "e5": ("WISH location ~5 s", _e5),
    "e6": ("one-month fault log", _e6),
    "e7": ("portal scale 225k/778k", _e7),
    "e8": ("SIMBA vs baselines", _e8),
    "e9": ("HA ablation (slow)", _e9),
    "e10": ("chaos sweep (oracle-checked)", _e10),
    "e11": ("warm-standby failover vs MDC-only", _e11),
    "e12": ("storm hardening: admission on vs off", _e12),
    "e13": ("sharded farm-of-farms beyond one core", _e13),
    "e14": ("adversarial links: stabilizing vs naive transport", _e14),
}

#: Experiments whose sweeps accept a worker-pool size (``--jobs``).
PARALLEL_EXPERIMENTS = frozenset({"e10", "e11", "e12", "e14"})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the SIMBA paper's experiments.",
    )
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # The trace forensics command has its own flags; hand it the rest.
        return _run_trace_command(argv[1:])
    parser.add_argument(
        "experiment",
        help="experiment id (e1..e14), 'all' (e1-e8), 'list', or 'trace' "
        "(span-tree forensics; see python -m repro trace --help)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for sweep experiments (e10/e11/e12/e14); "
        "results are identical to --jobs 1, just faster",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="e13: compare shards=1 against this worker-process count "
        "(default: sweep 1/2/4)",
    )
    parser.add_argument(
        "--users", type=int, default=100_000,
        help="e13: logical user population (default 100,000)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print(
            format_table(
                ["id", "claim"],
                [[key, desc] for key, (desc, _fn) in EXPERIMENTS.items()],
                title="available experiments",
            )
        )
        return 0
    if args.experiment == "all":
        for key in ("e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"):
            print(EXPERIMENTS[key][1](args.seed))
            print()
        return 0
    key = args.experiment.lower()
    entry = EXPERIMENTS.get(key)
    if entry is None:
        parser.error(
            f"unknown experiment {args.experiment!r} "
            f"(choose from {', '.join(EXPERIMENTS)}, all, list)"
        )
    if key != "e13" and (args.shards is not None or args.users != 100_000):
        parser.error("--shards/--users only apply to e13")
    if key in PARALLEL_EXPERIMENTS:
        from repro.testkit.parallel import sweep_pool

        # One persistent pool for the whole experiment: its sweeps reuse
        # the same workers instead of forking a fresh Pool per fanout.
        with sweep_pool(jobs=args.jobs):
            print(entry[1](args.seed, jobs=None))
    elif key == "e13":
        if args.jobs is not None:
            parser.error("e13 scales with --shards, not --jobs")
        print(entry[1](args.seed, shards=args.shards, users=args.users))
    else:
        if args.jobs is not None:
            parser.error(f"--jobs only applies to sweep experiments "
                         f"({', '.join(sorted(PARALLEL_EXPERIMENTS))})")
        print(entry[1](args.seed))
    return 0


if __name__ == "__main__":
    sys.exit(main())
