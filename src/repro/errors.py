"""Exception hierarchy for the SIMBA reproduction.

All library-specific errors derive from :class:`SimbaError` so callers can
catch everything from this package with a single ``except`` clause.  Errors
raised by the simulation kernel derive from :class:`SimulationError`; errors
raised by the modelled system components derive from more specific classes.
"""

from __future__ import annotations


class SimbaError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(SimbaError):
    """Base class for errors raised by the discrete-event kernel."""


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class StopSimulation(Exception):
    """Internal control-flow signal used by ``Environment.run(until=event)``.

    Deliberately not a :class:`SimbaError`: user code should never catch it.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class PoolError(SimulationError):
    """Illegal use of the kernel's event free-list (double release,
    releasing a live event, or pooling an unpoolable type)."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as ``exc.cause``.
    """

    @property
    def cause(self):
        return self.args[0] if self.args else None


class ConfigurationError(SimbaError):
    """A component was configured with invalid or inconsistent parameters."""


class ChannelError(SimbaError):
    """Base class for communication-substrate failures."""


class ChannelUnavailable(ChannelError):
    """The channel (IM server, SMTP relay, SMS gateway) is down or offline."""


class DeliveryFailure(ChannelError):
    """A message could not be submitted to or delivered by a channel."""


class AutomationError(SimbaError):
    """Base class for failures of client-software automation interfaces."""


class StalePointerError(AutomationError):
    """An automation pointer refers to a client instance that no longer exists.

    Mirrors the paper's observation that restarting client software
    invalidates every automation pointer held by the driving application.
    """


class ClientHungError(AutomationError):
    """The client software did not respond to an automation call in time."""


class NotLoggedInError(AutomationError):
    """The client software is not logged on to its server."""


class DialogBlockedError(AutomationError):
    """A modal dialog box is blocking the client from making progress."""


class AddressUnknownError(SimbaError):
    """A delivery-mode action references a friendly name with no address."""


class SubscriptionError(SimbaError):
    """Invalid subscription-layer operation (unknown user, category, mode)."""


class AlertRejected(SimbaError):
    """An incoming alert was rejected (e.g. unaccepted source) by MAB."""
