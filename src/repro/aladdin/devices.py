"""Home devices and sensors (§2.3).

"Flooding in the basement would generate a 'Basement Water Sensor ON'
alert; garage door sensors running out of battery would trigger a 'Garage
Door Sensor Broken' alert."  Sensors refresh their soft-state variable
periodically (powered by batteries); a dead battery stops the refreshes,
which the SSS timeout contract converts into a broken-sensor event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.aladdin.networks import HomeNetwork

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class SensorState(enum.Enum):
    OFF = "OFF"
    ON = "ON"


@dataclass
class SensorReading:
    """Payload a sensor broadcasts on its home-network segment."""

    sensor: str
    state: SensorState
    critical: bool
    is_refresh: bool = False


class Sensor:
    """A binary sensor on a home-network segment.

    ``critical=True`` marks sensors whose state changes must alert the user
    (Aladdin has no content-based subscription — every state change of a
    critical sensor alerts; MAB sub-categorization filters ON vs OFF, §4.2).
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        network: HomeNetwork,
        critical: bool = False,
        refresh_period: Optional[float] = None,
        battery: float = 1.0,
    ):
        self.env = env
        self.name = name
        self.network = network
        self.critical = critical
        self.state = SensorState.OFF
        self.battery = battery
        self.refresh_period = refresh_period
        if refresh_period is not None:
            env.process(self._refresh_loop(), name=f"{name}-refresh")

    def trip(self) -> None:
        """Sensor fires (water detected, door opened...)."""
        self.set_state(SensorState.ON)

    def reset(self) -> None:
        self.set_state(SensorState.OFF)

    def set_state(self, state: SensorState) -> None:
        if self.battery <= 0:
            return  # a dead sensor cannot transmit
        self.state = state
        self.network.send(
            SensorReading(sensor=self.name, state=state, critical=self.critical)
        )

    def drain_battery(self) -> None:
        """Battery dies: refreshes stop; SSS timeout will flag it broken."""
        self.battery = 0.0

    def _refresh_loop(self):
        while True:
            yield self.env.timeout(self.refresh_period)
            if self.battery <= 0:
                return
            self.network.send(
                SensorReading(
                    sensor=self.name,
                    state=self.state,
                    critical=self.critical,
                    is_refresh=True,
                )
            )


@dataclass
class RemoteCommand:
    """Payload a remote control broadcasts over RF."""

    remote: str
    command: str
    argument: Any = None


class RemoteControl:
    """The kid's RF remote in the §5 scenario."""

    def __init__(self, env: "Environment", name: str, rf_network: HomeNetwork):
        self.env = env
        self.name = name
        self.rf = rf_network
        self.presses = 0

    def press(self, command: str, argument: Any = None) -> RemoteCommand:
        self.presses += 1
        payload = RemoteCommand(remote=self.name, command=command, argument=argument)
        self.rf.send(payload)
        return payload


class SecuritySystem:
    """The home security system armed/disarmed by remote (§5 scenario).

    Its state lives in the SSS as ``security.armed``; this object is the
    physical unit whose siren the state controls.
    """

    def __init__(self, name: str = "security"):
        self.name = name
        self.armed = True
        self.transitions: list[tuple[str, bool]] = []

    def apply(self, armed: bool) -> None:
        if armed != self.armed:
            self.armed = armed
            self.transitions.append(("armed" if armed else "disarmed", armed))
