"""SSS replication over the phoneline Ethernet (§5).

"...converted it into an update on the local SSS server, which replicated
the update to other PCs through a multicast over the phoneline Ethernet."

A :class:`ReplicationGroup` joins several per-PC SSS instances: every local
CHANGED/CREATED/REFRESHED event is multicast on the phoneline segment and
applied to the other members, with origin tagging to suppress loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.aladdin.networks import HomeNetwork
from repro.aladdin.sss import (
    SoftStateStore,
    SSSEvent,
    SSSEventKind,
    UnknownVariable,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclass
class ReplicationMessage:
    origin_store: str
    kind: SSSEventKind
    variable: str
    type_name: str
    value: Any
    refresh_period: float
    max_missed: int


class ReplicationGroup:
    """Multicast replication between SSS instances on one segment."""

    def __init__(self, env: "Environment", network: HomeNetwork):
        self.env = env
        self.network = network
        self._members: list[SoftStateStore] = []
        self.replicated = 0
        network.attach(self._on_multicast)

    def join(self, store: SoftStateStore) -> None:
        """Add a store; its local mutations start replicating."""
        self._members.append(store)
        store.subscribe(lambda event: self._on_local_event(store, event))

    def _on_local_event(self, store: SoftStateStore, event: SSSEvent) -> None:
        if event.origin != store.name:
            return  # replicated-in event; do not re-multicast (loop)
        if event.kind not in (
            SSSEventKind.CREATED,
            SSSEventKind.CHANGED,
            SSSEventKind.REFRESHED,
        ):
            return
        variable = store.variable(event.variable)
        self.network.send(
            ReplicationMessage(
                origin_store=store.name,
                kind=event.kind,
                variable=variable.name,
                type_name=variable.type_name,
                value=variable.value,
                refresh_period=variable.refresh_period,
                max_missed=variable.max_missed,
            )
        )

    def _on_multicast(self, payload: Any) -> None:
        if not isinstance(payload, ReplicationMessage):
            return
        self.replicated += 1
        for store in self._members:
            if store.name == payload.origin_store:
                continue
            self._apply(store, payload)

    def _apply(self, store: SoftStateStore, message: ReplicationMessage) -> None:
        store.define_type(message.type_name)
        try:
            store.variable(message.variable)
        except UnknownVariable:
            store.create(
                message.variable,
                message.type_name,
                message.value,
                message.refresh_period,
                message.max_missed,
            )
            return
        store.write(message.variable, message.value, origin=message.origin_store)
