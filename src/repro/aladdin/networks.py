"""Heterogeneous in-home network segments (§2.3).

Aladdin spans "powerline, phoneline, RF (Radio Frequency) and IR (InfraRed)"
networks.  Each :class:`HomeNetwork` is a broadcast segment with its own
latency model and loss rate; :class:`Transceiver` bridges two segments (the
paper's scenario has an RF→powerline transceiver that converts the remote
control's RF signal into a powerline signal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.net.channel import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: Per-segment latency calibrated to period technology.  Powerline (X10-era)
#: signalling is the slow hop that dominates the paper's 11 s chain.
RF_LATENCY = LatencyModel(median=0.3, sigma=0.2, low=0.05, high=2.0)
IR_LATENCY = LatencyModel(median=0.1, sigma=0.2, low=0.02, high=1.0)
POWERLINE_LATENCY = LatencyModel(median=3.6, sigma=0.15, low=1.5, high=9.0)
PHONELINE_LATENCY = LatencyModel(median=0.15, sigma=0.2, low=0.05, high=1.0)


@dataclass
class Transmission:
    at: float
    payload: Any
    delivered: bool


class HomeNetwork:
    """A broadcast segment: every attached listener hears every send."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        latency: LatencyModel,
        rng: np.random.Generator,
        loss_probability: float = 0.0,
    ):
        self.env = env
        self.name = name
        self.latency = latency
        self.rng = rng
        self.loss_probability = loss_probability
        self._listeners: list[Callable[[Any], None]] = []
        self.log: list[Transmission] = []

    def attach(self, listener: Callable[[Any], None]) -> None:
        """Attach a receiver callback (a device, monitor or transceiver)."""
        self._listeners.append(listener)

    def detach(self, listener: Callable[[Any], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def send(self, payload: Any) -> None:
        """Broadcast ``payload`` to all listeners after segment latency."""
        self.env.process(self._transmit(payload), name=f"{self.name}-tx")

    def _transmit(self, payload: Any):
        delay = self.latency.draw(self.rng)
        yield self.env.timeout(delay)
        lost = self.loss_probability and self.rng.random() < self.loss_probability
        self.log.append(
            Transmission(at=self.env.now, payload=payload, delivered=not lost)
        )
        if lost:
            return
        for listener in list(self._listeners):
            listener(payload)


class Transceiver:
    """Bridges payloads from one segment onto another, with conversion."""

    def __init__(
        self,
        name: str,
        source: HomeNetwork,
        target: HomeNetwork,
        convert: Callable[[Any], Any] = lambda payload: payload,
    ):
        self.name = name
        self.source = source
        self.target = target
        self.convert = convert
        self.forwarded = 0
        source.attach(self._on_receive)

    def _on_receive(self, payload: Any) -> None:
        self.forwarded += 1
        self.target.send(self.convert(payload))
