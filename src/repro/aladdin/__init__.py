"""The Aladdin home networking system (§2.3, [9]).

Aladdin "integrates diverse devices and sensors attached to heterogeneous
in-home networks including powerline, phoneline, RF and IR, and connects
them to the Internet through a home gateway machine".  Its state backbone is
the Soft-State Store (SSS, §5): replicated soft-state variables with refresh
frequencies and missing-refresh timeouts.

This package reproduces the §5 end-to-end scenario hop by hop: remote
control (RF) → powerline transceiver → powerline monitor on a PC → local SSS
→ phoneline multicast replication → gateway SSS event → Aladdin home server
→ SIMBA alert.
"""

from repro.aladdin.devices import (
    RemoteControl,
    SecuritySystem,
    Sensor,
    SensorState,
)
from repro.aladdin.gateway import AladdinGateway
from repro.aladdin.networks import HomeNetwork, Transceiver
from repro.aladdin.replication import ReplicationGroup
from repro.aladdin.scenario import AladdinHome
from repro.aladdin.sss import SoftStateStore, SoftStateVariable, SSSEvent

__all__ = [
    "AladdinGateway",
    "AladdinHome",
    "HomeNetwork",
    "RemoteControl",
    "ReplicationGroup",
    "SSSEvent",
    "SecuritySystem",
    "Sensor",
    "SensorState",
    "SoftStateStore",
    "SoftStateVariable",
    "Transceiver",
]
