"""The Aladdin home gateway server (§2.3, §5).

"The SSS server running on the home gateway machine fired an event to the
Aladdin home server, which then sent out an IM alert."  The gateway watches
the gateway-side SSS replica and converts events into SIMBA alerts:

- state changes of *critical* sensors → "``<name>`` Sensor ON/OFF" alerts;
- variable timeouts (missed refreshes = dead battery / dead device) →
  "``<name>`` Sensor Broken" alerts;
- security-state changes → "Security Disarmed/Armed" alerts.

Aladdin itself supports no content-based subscription — every critical
event alerts, and MyAlertBuddy's sub-categorization decides urgency (§4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.aladdin.sss import SoftStateStore, SSSEvent, SSSEventKind
from repro.core.alert import AlertSeverity
from repro.core.delivery_modes import DeliveryMode
from repro.core.endpoint import SimbaEndpoint
from repro.net.channel import LatencyModel
from repro.sources.base import AlertSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

import numpy as np

#: Gateway event dispatch + alert assembly on the home server.
GATEWAY_PROCESSING = LatencyModel(median=1.5, sigma=0.25, low=0.3, high=5.0)


class AladdinGateway(AlertSource):
    """Home server: SSS events in, SIMBA alerts out."""

    SENSOR_TYPE = "sensor"
    SECURITY_TYPE = "security"

    def __init__(
        self,
        env: "Environment",
        name: str,
        endpoint: SimbaEndpoint,
        store: SoftStateStore,
        rng: np.random.Generator,
        mode: Optional[DeliveryMode] = None,
        processing: LatencyModel = GATEWAY_PROCESSING,
    ):
        super().__init__(env, name, endpoint, mode=mode)
        self.store = store
        self.rng = rng
        self.processing = processing
        #: Sensor names declared critical (set by the scenario builder).
        self.critical_sensors: set[str] = set()
        store.subscribe(self._on_event, type_name=self.SENSOR_TYPE)
        store.subscribe(self._on_event, type_name=self.SECURITY_TYPE)

    def declare_critical(self, sensor_name: str) -> None:
        self.critical_sensors.add(sensor_name)

    # ------------------------------------------------------------------
    # SSS event handling
    # ------------------------------------------------------------------

    def _on_event(self, event: SSSEvent) -> None:
        if event.kind is SSSEventKind.CHANGED:
            if event.type_name == self.SECURITY_TYPE:
                armed = bool(event.value)
                self._alert(
                    keyword="Security " + ("Armed" if armed else "Disarmed"),
                    subject=f"Security system {'armed' if armed else 'disarmed'}",
                    body=f"security state changed to {event.value!r}",
                    severity=AlertSeverity.IMPORTANT,
                )
            elif event.variable in self.critical_sensors:
                state = str(event.value)
                self._alert(
                    keyword=f"Sensor {state}",
                    subject=f"{event.variable} Sensor {state}",
                    body=f"critical sensor {event.variable} is now {state}",
                    severity=AlertSeverity.CRITICAL
                    if state == "ON"
                    else AlertSeverity.ROUTINE,
                )
        elif event.kind is SSSEventKind.TIMED_OUT:
            if event.type_name == self.SENSOR_TYPE:
                self._alert(
                    keyword="Sensor Broken",
                    subject=f"{event.variable} Sensor Broken",
                    body=(
                        f"sensor {event.variable} missed its refreshes "
                        "(battery dead or device failed)"
                    ),
                    severity=AlertSeverity.IMPORTANT,
                )

    def _alert(
        self, keyword: str, subject: str, body: str, severity: AlertSeverity
    ) -> None:
        self.env.process(
            self._alert_after_processing(keyword, subject, body, severity),
            name=f"{self.name}-alert",
        )

    def _alert_after_processing(self, keyword, subject, body, severity):
        yield self.env.timeout(self.processing.draw(self.rng))
        self.emit(keyword, subject, body, severity)
