"""The Soft-State Store (SSS) server (§5).

"The Soft-State Store (SSS) server is a daemon process that maintains a
store of soft-state variables, each of which is associated with a required
refresh frequency and the maximum number of allowed missing refreshes before
the variable is timed out.  Clients of SSS can define data types, create
variables, read/write variables, and subscribe to events relating to changes
in the types or variables."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import ConfigurationError, SimbaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class UnknownVariable(SimbaError):
    """Read/write/refresh of a variable that was never created."""


class UnknownType(SimbaError):
    """Variable creation with an undefined data type."""


class SSSEventKind(enum.Enum):
    CREATED = "created"
    CHANGED = "changed"
    REFRESHED = "refreshed"
    TIMED_OUT = "timed_out"
    REVIVED = "revived"


@dataclass
class SSSEvent:
    """One event delivered to subscribers."""

    at: float
    kind: SSSEventKind
    variable: str
    type_name: str
    value: Any
    #: Which store instance originated the mutation (for replication-loop
    #: suppression and provenance).
    origin: str = ""


@dataclass
class SoftStateVariable:
    """One soft-state variable with its refresh contract."""

    name: str
    type_name: str
    value: Any
    refresh_period: float
    max_missed: int
    last_refresh: float
    timed_out: bool = False

    @property
    def deadline(self) -> float:
        """Time past which the variable is considered timed out."""
        return self.last_refresh + self.refresh_period * (self.max_missed + 1)


@dataclass
class _Subscription:
    callback: Callable[[SSSEvent], None]
    type_name: Optional[str]
    variable: Optional[str]

    def matches(self, event: SSSEvent) -> bool:
        if self.variable is not None and event.variable != self.variable:
            return False
        if self.type_name is not None and event.type_name != self.type_name:
            return False
        return True


class SoftStateStore:
    """One SSS daemon instance (one per participating PC)."""

    #: How often the timeout scanner wakes up.
    SCAN_INTERVAL = 1.0

    def __init__(self, env: "Environment", name: str):
        self.env = env
        self.name = name
        self._types: set[str] = set()
        self._variables: dict[str, SoftStateVariable] = {}
        self._subscriptions: list[_Subscription] = []
        self.events: list[SSSEvent] = []
        self._scanner_started = False

    # ------------------------------------------------------------------
    # Types and variables
    # ------------------------------------------------------------------

    def define_type(self, type_name: str) -> None:
        """Declare a data type (idempotent)."""
        if not type_name:
            raise ConfigurationError("type name must be non-empty")
        self._types.add(type_name)

    def has_type(self, type_name: str) -> bool:
        return type_name in self._types

    def create(
        self,
        name: str,
        type_name: str,
        value: Any,
        refresh_period: float,
        max_missed: int,
    ) -> SoftStateVariable:
        """Create a variable with its refresh contract."""
        if type_name not in self._types:
            raise UnknownType(f"type {type_name!r} not defined on {self.name!r}")
        if name in self._variables:
            raise ConfigurationError(f"variable {name!r} already exists")
        if refresh_period <= 0 or max_missed < 0:
            raise ConfigurationError(
                f"invalid refresh contract: period={refresh_period} "
                f"max_missed={max_missed}"
            )
        variable = SoftStateVariable(
            name=name,
            type_name=type_name,
            value=value,
            refresh_period=refresh_period,
            max_missed=max_missed,
            last_refresh=self.env.now,
        )
        self._variables[name] = variable
        self._fire(SSSEventKind.CREATED, variable)
        self._ensure_scanner()
        return variable

    def read(self, name: str) -> Any:
        return self._get(name).value

    def variable(self, name: str) -> SoftStateVariable:
        return self._get(name)

    def write(self, name: str, value: Any, origin: str = "") -> None:
        """Update a variable's value; counts as a refresh.

        Fires CHANGED when the value differs (REVIVED first if it had timed
        out), REFRESHED when equal.
        """
        variable = self._get(name)
        variable.last_refresh = self.env.now
        revived = variable.timed_out
        variable.timed_out = False
        if revived:
            self._fire(SSSEventKind.REVIVED, variable, origin)
        if variable.value != value:
            variable.value = value
            self._fire(SSSEventKind.CHANGED, variable, origin)
        else:
            self._fire(SSSEventKind.REFRESHED, variable, origin)

    def refresh(self, name: str, origin: str = "") -> None:
        """Keep-alive without a value change."""
        self.write(name, self._get(name).value, origin)

    def variables(self) -> list[SoftStateVariable]:
        return list(self._variables.values())

    def _get(self, name: str) -> SoftStateVariable:
        try:
            return self._variables[name]
        except KeyError:
            raise UnknownVariable(
                f"no variable {name!r} on store {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[SSSEvent], None],
        type_name: Optional[str] = None,
        variable: Optional[str] = None,
    ) -> None:
        """Subscribe to events by type and/or variable (None = wildcard)."""
        self._subscriptions.append(_Subscription(callback, type_name, variable))

    def _fire(
        self, kind: SSSEventKind, variable: SoftStateVariable, origin: str = ""
    ) -> None:
        event = SSSEvent(
            at=self.env.now,
            kind=kind,
            variable=variable.name,
            type_name=variable.type_name,
            value=variable.value,
            origin=origin or self.name,
        )
        self.events.append(event)
        for subscription in list(self._subscriptions):
            if subscription.matches(event):
                subscription.callback(event)

    # ------------------------------------------------------------------
    # Timeout scanning
    # ------------------------------------------------------------------

    def _ensure_scanner(self) -> None:
        if self._scanner_started:
            return
        self._scanner_started = True
        self.env.process(self._scan_loop(), name=f"sss-{self.name}-scanner")

    def _scan_loop(self):
        while True:
            yield self.env.timeout(self.SCAN_INTERVAL)
            for variable in self._variables.values():
                if not variable.timed_out and self.env.now > variable.deadline:
                    variable.timed_out = True
                    self._fire(SSSEventKind.TIMED_OUT, variable)
