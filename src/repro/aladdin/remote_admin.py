"""Email-based remote home automation (§2.3).

"In addition to supporting secure, email-based remote home automation,
Aladdin generates alerts when any critical sensor fires..."  The gateway
accepts command emails — arm/disarm the security system, query a sensor —
authenticated by a shared secret in the body, and answers by email.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.aladdin.sss import SoftStateStore, UnknownVariable
from repro.net.email import EmailMessage, EmailService

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclass
class CommandRecord:
    at: float
    sender: str
    command: str
    accepted: bool
    response: str


class RemoteHomeAdmin:
    """The gateway's email command interface.

    Commands (one per mail body line after the secret):

    - ``ARM`` / ``DISARM`` — set the security state.
    - ``QUERY <variable>`` — read a soft-state variable.
    - ``STATUS`` — one line per variable.
    """

    def __init__(
        self,
        env: "Environment",
        email_service: EmailService,
        store: SoftStateStore,
        address: str,
        secret: str,
        security_variable: str = "security.armed",
    ):
        self.env = env
        self.email_service = email_service
        self.store = store
        self.address = address
        self.secret = secret
        self.security_variable = security_variable
        self.commands: list[CommandRecord] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(), name="home-admin")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        mailbox = self.email_service.mailbox(self.address)
        while self._running:
            message = yield mailbox.receive()
            if not self._running:
                mailbox.put_back(message)
                return
            self._handle(message)

    # ------------------------------------------------------------------
    # Command processing
    # ------------------------------------------------------------------

    def _handle(self, message: EmailMessage) -> None:
        lines = [line.strip() for line in message.body.splitlines()
                 if line.strip()]
        if not lines or lines[0] != self.secret:
            self._record(message, "(unauthenticated)", False,
                         "authentication failed")
            return
        for command in lines[1:]:
            response = self._execute(command)
            accepted = response is not None
            self._record(
                message, command, accepted,
                response if accepted else f"unknown command {command!r}",
            )

    def _execute(self, command: str) -> Optional[str]:
        verb, _space, argument = command.partition(" ")
        verb = verb.upper()
        if verb in ("ARM", "DISARM"):
            self.store.write(self.security_variable, verb == "ARM")
            return f"security {'armed' if verb == 'ARM' else 'disarmed'}"
        if verb == "QUERY" and argument:
            try:
                value = self.store.read(argument)
            except UnknownVariable:
                return f"no such variable {argument!r}"
            return f"{argument} = {value!r}"
        if verb == "STATUS":
            lines = [
                f"{variable.name} = {variable.value!r}"
                + (" [TIMED OUT]" if variable.timed_out else "")
                for variable in self.store.variables()
            ]
            return "\n".join(lines) if lines else "(no variables)"
        return None

    def _record(
        self, message: EmailMessage, command: str, accepted: bool,
        response: str,
    ) -> None:
        self.commands.append(
            CommandRecord(
                at=self.env.now,
                sender=message.sender,
                command=command,
                accepted=accepted,
                response=response,
            )
        )
        self.email_service.send(
            self.address, message.sender, f"Re: {command}", response
        )
