"""A fully-wired Aladdin home, reproducing the paper's §5 topology.

Remote control (RF) → RF/powerline transceiver → powerline → powerline
monitor process on the living-room PC → local SSS → phoneline multicast
replication → gateway PC's SSS → Aladdin home server → SIMBA alert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.aladdin.devices import (
    RemoteCommand,
    RemoteControl,
    SecuritySystem,
    Sensor,
    SensorReading,
)
from repro.aladdin.gateway import AladdinGateway
from repro.aladdin.networks import (
    IR_LATENCY,
    PHONELINE_LATENCY,
    POWERLINE_LATENCY,
    RF_LATENCY,
    HomeNetwork,
    Transceiver,
)
from repro.aladdin.replication import ReplicationGroup
from repro.aladdin.sss import SoftStateStore, SSSEventKind, UnknownVariable
from repro.core.endpoint import SimbaEndpoint
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: The powerline monitor polls its interface buffer at this period; on
#: average a signal waits half of it (part of the paper's 11 s chain).
DEFAULT_MONITOR_POLL = 5.0


@dataclass
class SensorContract:
    """Refresh contract the monitor uses when creating the SSS variable."""

    refresh_period: float
    max_missed: int


class AladdinHome:
    """Networks, PCs, devices and the gateway of one Aladdin household."""

    def __init__(
        self,
        env: "Environment",
        rngs: RngRegistry,
        endpoint: SimbaEndpoint,
        monitor_poll_interval: float = DEFAULT_MONITOR_POLL,
    ):
        self.env = env
        self.rngs = rngs
        self.monitor_poll_interval = monitor_poll_interval

        # Network segments.
        self.rf = HomeNetwork(env, "rf", RF_LATENCY, rngs.stream("net-rf"))
        self.powerline = HomeNetwork(
            env, "powerline", POWERLINE_LATENCY, rngs.stream("net-powerline")
        )
        self.phoneline = HomeNetwork(
            env, "phoneline", PHONELINE_LATENCY, rngs.stream("net-phoneline")
        )
        # Line-of-sight IR (TV-style remotes) bridged onto the powerline
        # exactly like RF; IR's short range shows up as a higher loss rate.
        self.ir = HomeNetwork(
            env, "ir", IR_LATENCY, rngs.stream("net-ir"), loss_probability=0.05
        )
        self.transceiver = Transceiver("rf-powerline", self.rf, self.powerline)
        self.ir_transceiver = Transceiver("ir-powerline", self.ir, self.powerline)

        # Per-PC SSS instances replicated over the phoneline Ethernet.
        self.livingroom_store = SoftStateStore(env, "livingroom-pc")
        self.bedroom_store = SoftStateStore(env, "bedroom-pc")
        self.gateway_store = SoftStateStore(env, "gateway-pc")
        self.replication = ReplicationGroup(env, self.phoneline)
        for store in (
            self.livingroom_store,
            self.bedroom_store,
            self.gateway_store,
        ):
            store.define_type(AladdinGateway.SENSOR_TYPE)
            store.define_type(AladdinGateway.SECURITY_TYPE)
            self.replication.join(store)

        # The home server on the gateway machine.
        self.gateway = AladdinGateway(
            env,
            "aladdin",
            endpoint,
            self.gateway_store,
            rng=rngs.stream("aladdin-gateway"),
        )

        # Devices.
        self.remote = RemoteControl(env, "keychain-remote", self.rf)
        self.security = SecuritySystem()
        self.sensors: dict[str, Sensor] = {}
        self._contracts: dict[str, SensorContract] = {}

        # The living-room PC: powerline monitor buffering line signals.
        self._powerline_buffer: list[Any] = []
        self.powerline.attach(self._powerline_buffer.append)
        env.process(self._monitor_loop(), name="powerline-monitor")

        # Security state starts armed, owned by the living-room store.
        self.livingroom_store.create(
            "security.armed",
            AladdinGateway.SECURITY_TYPE,
            True,
            refresh_period=3600.0,
            max_missed=10**6,
        )
        # The physical unit follows the replicated state on the gateway.
        self.gateway_store.subscribe(
            self._apply_security, type_name=AladdinGateway.SECURITY_TYPE
        )

    # ------------------------------------------------------------------
    # Building the home
    # ------------------------------------------------------------------

    def add_sensor(
        self,
        name: str,
        critical: bool = False,
        refresh_period: Optional[float] = None,
        max_missed: int = 2,
    ) -> Sensor:
        """Install a sensor on the powerline segment."""
        sensor = Sensor(
            self.env,
            name,
            self.powerline,
            critical=critical,
            refresh_period=refresh_period,
        )
        self.sensors[name] = sensor
        if refresh_period is not None:
            self._contracts[name] = SensorContract(
                refresh_period=refresh_period, max_missed=max_missed
            )
        if critical:
            self.gateway.declare_critical(name)
        return sensor

    # ------------------------------------------------------------------
    # The §5 scenario entry points
    # ------------------------------------------------------------------

    def disarm_via_remote(self) -> RemoteCommand:
        """The kid returns from school and disarms the security system."""
        return self.remote.press("disarm")

    def arm_via_remote(self) -> RemoteCommand:
        return self.remote.press("arm")

    # ------------------------------------------------------------------
    # The powerline monitor process (living-room PC)
    # ------------------------------------------------------------------

    def _monitor_loop(self):
        while True:
            yield self.env.timeout(self.monitor_poll_interval)
            buffered, self._powerline_buffer[:] = (
                list(self._powerline_buffer),
                [],
            )
            for payload in buffered:
                self._apply_signal(payload)

    def _apply_signal(self, payload: Any) -> None:
        store = self.livingroom_store
        if isinstance(payload, SensorReading):
            contract = self._contracts.get(
                payload.sensor, SensorContract(refresh_period=60.0, max_missed=2)
            )
            try:
                store.variable(payload.sensor)
            except UnknownVariable:
                store.create(
                    payload.sensor,
                    AladdinGateway.SENSOR_TYPE,
                    payload.state.value,
                    refresh_period=contract.refresh_period,
                    max_missed=contract.max_missed,
                )
                return
            if payload.is_refresh:
                store.refresh(payload.sensor)
            else:
                store.write(payload.sensor, payload.state.value)
        elif isinstance(payload, RemoteCommand):
            if payload.command in ("arm", "disarm"):
                store.write("security.armed", payload.command == "arm")

    def _apply_security(self, event) -> None:
        if event.kind is SSSEventKind.CHANGED:
            self.security.apply(bool(event.value))
