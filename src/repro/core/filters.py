"""Alert filtering: enable/disable and delivery-time constraints (§3.3, §4.2).

"Enabling and disabling of some categories of alerts and specifying delivery
time constraints can also be conveniently and consistently performed with
the alert buddy."  MyAlertBuddy is "a personal alert filter that temporarily
blocks unwanted alerts, which might have been useful before and may be
useful in the future" — so filtering is *suppression*, never unsubscription:
the decision records why an alert was withheld.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.clock import DAY, time_of_day


@dataclass(frozen=True)
class TimeWindow:
    """A daily time window [start, end) in seconds since midnight.

    Windows may wrap midnight (start > end), e.g. a 22:00–07:00 quiet window.
    """

    start: float
    end: float

    def __post_init__(self):
        for value in (self.start, self.end):
            if not 0 <= value < DAY:
                raise ConfigurationError(
                    f"time-of-day {value!r} outside [0, 86400)"
                )
        if self.start == self.end:
            raise ConfigurationError("empty time window (start == end)")

    def contains(self, now: float) -> bool:
        tod = time_of_day(now)
        if self.start < self.end:
            return self.start <= tod < self.end
        return tod >= self.start or tod < self.end


class FilterDecision(enum.Enum):
    """Why an alert was passed or withheld."""

    DELIVER = "deliver"
    CATEGORY_DISABLED = "category_disabled"
    OUTSIDE_DELIVERY_WINDOW = "outside_delivery_window"


class FilterPolicy:
    """Per-category suppression state for one user."""

    def __init__(self):
        self._disabled: set[str] = set()
        #: category → window during which delivery is ALLOWED.  No entry
        #: means deliver at any time.
        self._windows: dict[str, TimeWindow] = {}

    def disable_category(self, category: str) -> None:
        """Temporarily block a category ("avoid distractions", §3.3)."""
        self._disabled.add(category)

    def enable_category(self, category: str) -> None:
        self._disabled.discard(category)

    def is_disabled(self, category: str) -> bool:
        return category in self._disabled

    def set_delivery_window(self, category: str, window: TimeWindow) -> None:
        """Only deliver ``category`` inside ``window`` each day."""
        self._windows[category] = window

    def clear_delivery_window(self, category: str) -> None:
        self._windows.pop(category, None)

    def delivery_window(self, category: str) -> Optional[TimeWindow]:
        return self._windows.get(category)

    def evaluate(self, category: str, now: float) -> FilterDecision:
        """Decide whether an alert of ``category`` may be delivered at ``now``."""
        if category in self._disabled:
            return FilterDecision.CATEGORY_DISABLED
        window = self._windows.get(category)
        if window is not None and not window.contains(now):
            return FilterDecision.OUTSIDE_DELIVERY_WINDOW
        return FilterDecision.DELIVER
