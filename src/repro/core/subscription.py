"""The SIMBA subscription layer (§4.1).

"This layer provides APIs for users to register their addresses, personal
alert categories, and personal delivery modes.  It provides a subscription
API for mapping a category name to a user with a particular delivery mode.
Each category can have multiple subscribers, each of which can specify a
different delivery mode" — the multi-subscriber case enables alert sharing
(§4.2 "Alert routing").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.addresses import AddressBook
from repro.core.delivery_modes import DeliveryMode
from repro.errors import SubscriptionError


@dataclass(frozen=True)
class Subscription:
    """One (category → user via mode) mapping."""

    category: str
    user: str
    mode_name: str


class SubscriptionLayer:
    """Registry of users, addresses, categories, modes and subscriptions."""

    def __init__(self):
        self._address_books: dict[str, AddressBook] = {}
        self._modes: dict[str, dict[str, DeliveryMode]] = {}
        self._categories: set[str] = set()
        self._subscriptions: dict[str, list[Subscription]] = {}

    # ------------------------------------------------------------------
    # Registration APIs
    # ------------------------------------------------------------------

    def register_user(self, user: str, address_book: AddressBook) -> None:
        """Register a user with their address book."""
        if user in self._address_books:
            raise SubscriptionError(f"user {user!r} already registered")
        self._address_books[user] = address_book
        self._modes[user] = {}

    def address_book(self, user: str) -> AddressBook:
        try:
            return self._address_books[user]
        except KeyError:
            raise SubscriptionError(f"unknown user {user!r}") from None

    def register_mode(self, user: str, mode: DeliveryMode) -> None:
        """Register a personalized delivery mode, validating every address
        reference against the user's book up front (fail fast, not at
        routing time)."""
        book = self.address_book(user)
        missing = mode.referenced_addresses() - {
            a.friendly_name for a in book
        }
        if missing:
            raise SubscriptionError(
                f"mode {mode.name!r} references unknown addresses "
                f"{sorted(missing)} for user {user!r}"
            )
        self._modes[user][mode.name] = mode

    def mode(self, user: str, mode_name: str) -> DeliveryMode:
        self.address_book(user)  # validates the user exists
        try:
            return self._modes[user][mode_name]
        except KeyError:
            raise SubscriptionError(
                f"user {user!r} has no delivery mode {mode_name!r}"
            ) from None

    def modes_for(self, user: str) -> list[DeliveryMode]:
        self.address_book(user)
        return list(self._modes[user].values())

    def register_category(self, category: str) -> None:
        """Declare a personal alert category (idempotent)."""
        if not category:
            raise SubscriptionError("category name must be non-empty")
        self._categories.add(category)

    @property
    def categories(self) -> frozenset[str]:
        return frozenset(self._categories)

    # ------------------------------------------------------------------
    # Subscription API
    # ------------------------------------------------------------------

    def subscribe(self, category: str, user: str, mode_name: str) -> Subscription:
        """Map ``category`` to ``user`` delivered via ``mode_name``."""
        if category not in self._categories:
            raise SubscriptionError(f"unknown category {category!r}")
        self.mode(user, mode_name)  # validates user and mode
        subscription = Subscription(category=category, user=user, mode_name=mode_name)
        existing = self._subscriptions.setdefault(category, [])
        if any(s.user == user for s in existing):
            raise SubscriptionError(
                f"user {user!r} already subscribes to {category!r}; "
                "unsubscribe first to change the delivery mode"
            )
        existing.append(subscription)
        return subscription

    def unsubscribe(self, category: str, user: str) -> None:
        subs = self._subscriptions.get(category, [])
        remaining = [s for s in subs if s.user != user]
        if len(remaining) == len(subs):
            raise SubscriptionError(
                f"user {user!r} does not subscribe to {category!r}"
            )
        self._subscriptions[category] = remaining

    def subscriptions_for(self, category: str) -> list[Subscription]:
        """All subscriptions of a category (multiple subscribers allowed)."""
        return list(self._subscriptions.get(category, []))

    def subscriptions_of_user(self, user: str) -> list[Subscription]:
        return [
            s
            for subs in self._subscriptions.values()
            for s in subs
            if s.user == user
        ]
