"""MyAlertBuddy: the personal alert aggregator / filter / router (§3.3, §4.2).

One :class:`MyAlertBuddy` object is one *incarnation* — one run of the MAB
process between launches by the MDC.  Everything that must survive a crash
lives outside the incarnation and is passed in:

- the :class:`~repro.core.endpoint.SimbaEndpoint` (client software keeps
  running when MAB dies; a fresh incarnation re-attaches),
- the :class:`~repro.core.pessimistic_log.PessimisticLog`,
- the user-side configuration (:class:`BuddyConfig`),
- the :class:`BuddyJournal` audit trail.

Per-alert flow (§4.2): classification → aggregation → filtering → routing.
High availability (§4.2.1): pessimistic log-before-ack (wired through the
endpoint's ``pre_ack_hook``), MDC probe protocol (:meth:`attach_mdc`),
self-stabilization tasks, and three-way rejuvenation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.aggregator import CategoryAggregator
from repro.core.classifier import AlertClassifier
from repro.core.endpoint import IncomingAlert, SimbaEndpoint
from repro.core.filters import FilterDecision, FilterPolicy
from repro.core.pessimistic_log import PessimisticLog
from repro.core.rejuvenation import (
    RejuvenationKind,
    RejuvenationPolicy,
    RejuvenationRecord,
)
from repro.core.stabilizer import SelfStabilizer
from repro.core.subscription import SubscriptionLayer
from repro.errors import AlertRejected, Interrupt, SimbaError
from repro.net.channel import LatencyModel
from repro.net.message import Message
from repro.sim.clock import seconds_until_time_of_day

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment
    from repro.sim.process import Process

#: Classification + category lookup on period hardware.
DEFAULT_PROCESSING = LatencyModel(median=0.40, sigma=0.30, low=0.05, high=3.0)
#: Subscription enumeration + delivery-mode XML parsing before sending.
DEFAULT_ROUTING_OVERHEAD = LatencyModel(median=0.70, sigma=0.30, low=0.10, high=4.0)

#: "the sanity checking APIs are invoked every minute" (§4.2.1).
DEFAULT_SANITY_INTERVAL = 60.0

DEFAULT_MEMORY_BASE_MB = 40.0
DEFAULT_MEMORY_LIMIT_MB = 200.0
#: Small natural leak per processed alert — what nightly rejuvenation resets.
DEFAULT_LEAK_PER_ALERT_MB = 0.02


@dataclass
class BuddyConfig:
    """Persistent user-side configuration of one MAB."""

    user: str
    classifier: AlertClassifier
    aggregator: CategoryAggregator
    filters: FilterPolicy
    subscriptions: SubscriptionLayer
    rejuvenation: RejuvenationPolicy = field(default_factory=RejuvenationPolicy)
    processing_latency: LatencyModel = DEFAULT_PROCESSING
    routing_overhead: LatencyModel = DEFAULT_ROUTING_OVERHEAD
    sanity_interval: float = DEFAULT_SANITY_INTERVAL
    memory_limit_mb: float = DEFAULT_MEMORY_LIMIT_MB
    #: When every block of every subscription fails (e.g. a blocking system
    #: dialog took both clients down), re-queue the alert and try again —
    #: an acknowledged alert must never be silently dropped.
    delivery_retry_delay: float = 120.0
    delivery_max_attempts: int = 6
    # Ablation switches (§4.2.1 techniques; bench E9 disables one at a time).
    pessimistic_logging_enabled: bool = True
    self_stabilization_enabled: bool = True
    monkey_enabled: bool = True


@dataclass
class JournalEvent:
    at: float
    kind: str
    detail: str = ""
    alert_id: Optional[str] = None


class BuddyJournal:
    """Cross-incarnation audit trail plus the processed-alert dedup set."""

    def __init__(self):
        self.events: list[JournalEvent] = []
        self.routed_ids: set[str] = set()
        self.rejuvenations: list[RejuvenationRecord] = []

    def record(
        self, at: float, kind: str, detail: str = "", alert_id: Optional[str] = None
    ) -> None:
        self.events.append(
            JournalEvent(at=at, kind=kind, detail=detail, alert_id=alert_id)
        )

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def of_kind(self, kind: str) -> list[JournalEvent]:
        return [e for e in self.events if e.kind == kind]


class MyAlertBuddy:
    """One incarnation of the MAB daemon."""

    def __init__(
        self,
        env: "Environment",
        config: BuddyConfig,
        endpoint: SimbaEndpoint,
        log: PessimisticLog,
        journal: BuddyJournal,
        rng: np.random.Generator,
    ):
        self.env = env
        self.config = config
        self.endpoint = endpoint
        self.log = log
        self.journal = journal
        self.rng = rng

        self.process: Optional["Process"] = None
        self.alive = False
        self.hung = False
        self.memory_mb = DEFAULT_MEMORY_BASE_MB
        self.last_progress = env.now
        self.stabilizer = SelfStabilizer(env, on_unrectifiable=self._on_unrectifiable)
        self._shutdown_clients_on_exit = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Process":
        """Launch the incarnation's main process."""
        if self.process is not None:
            raise RuntimeError("an incarnation can only be started once")
        self.process = self.env.process(
            self._main(), name=f"mab-{self.config.user}"
        )
        return self.process

    def force_terminate(self, cause: str) -> None:
        """Kill this incarnation (crash injection / MDC restart)."""
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(cause)

    def request_rejuvenation(
        self,
        kind: RejuvenationKind,
        detail: str = "",
        shutdown_clients: bool = False,
    ) -> None:
        """Gracefully terminate so the MDC relaunches at a clean state."""
        if not self.alive:
            return
        self.journal.rejuvenations.append(
            RejuvenationRecord(at=self.env.now, kind=kind, detail=detail)
        )
        self.journal.record(self.env.now, "rejuvenation", f"{kind.value}: {detail}")
        self._shutdown_clients_on_exit = shutdown_clients
        self.force_terminate(f"rejuvenation:{kind.value}")

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------

    def crash(self, detail: str = "injected crash") -> bool:
        """Unhandled-exception style termination."""
        if not self.alive:
            return False
        self.journal.record(self.env.now, "crash", detail)
        self.force_terminate(f"crash:{detail}")
        return True

    def hang(self) -> bool:
        """Stop making progress without terminating (probe goes unanswered)."""
        if not self.alive or self.hung:
            return False
        self.hung = True
        self.journal.record(self.env.now, "hang")
        # All the process's threads stall together: receive loops, monkey
        # threads and stabilizer stop being scheduled.
        self.endpoint.stop()
        self.stabilizer.stop()
        return True

    def leak_memory(self, megabytes: float) -> bool:
        if not self.alive:
            return False
        self.memory_mb += megabytes
        self.journal.record(self.env.now, "memory_leak", f"{megabytes} MB")
        return True

    # ------------------------------------------------------------------
    # MDC protocol (§4.2.1 Watchdog)
    # ------------------------------------------------------------------

    def attach_mdc(self, request, reply) -> None:
        """Register one AreYouWorking probe (request/reply event pair)."""
        self.env.process(self._mdc_client(request, reply), name="mdc-client")

    def _mdc_client(self, request, reply):
        yield request
        if not self.alive or self.hung:
            return  # never reply: the MDC's timeout fires
        if self.are_you_working():
            reply.succeed()

    def are_you_working(self) -> bool:
        """Non-blocking self-check invoked via the MDC client thread.

        "MyAlertBuddy checks the health of the process and the threads by
        monitoring the timestamps of their progress and unusual system
        resource consumption" (§4.2.1).
        """
        if self.memory_mb > self.config.memory_limit_mb:
            # Unusual resource consumption: reply healthy but schedule a
            # graceful restart to shed the leak.
            self.request_rejuvenation(
                RejuvenationKind.EXCEPTION,
                detail=f"memory {self.memory_mb:.0f} MB over limit",
            )
            return True
        return True

    def _on_unrectifiable(self, task_name: str, exc: Exception) -> None:
        if self.config.rejuvenation.exception_triggered:
            self.request_rejuvenation(
                RejuvenationKind.EXCEPTION, detail=f"{task_name}: {exc}"
            )

    # ------------------------------------------------------------------
    # Main process
    # ------------------------------------------------------------------

    def _main(self):
        self.alive = True
        self.journal.record(self.env.now, "incarnation_start")
        try:
            self.endpoint.pre_ack_hook = self._pre_ack
            self.endpoint.command_handler = self._on_command
            self.endpoint.monkey_enabled = self.config.monkey_enabled
            self.endpoint.start()
            if self.config.self_stabilization_enabled:
                self._setup_stabilizer()
                self.stabilizer.start()
            if self.config.rejuvenation.nightly_enabled:
                self.env.process(self._nightly(), name="mab-nightly")
            yield from self._recover()
            while self.alive:
                incoming = yield self.endpoint.alert_inbox.get()
                if self.hung:
                    # A hung process holds the item forever; the MDC restart
                    # interrupts us here.  The alert itself is safe in the
                    # pessimistic log if it arrived by IM.
                    yield self.env.event()
                yield from self._process_incoming(incoming)
        except Interrupt as interrupt:
            self.journal.record(
                self.env.now, "incarnation_end", str(interrupt.cause)
            )
        except SimbaError as exc:
            # An unhandled library error is exactly the paper's "exception
            # that cannot be handled": terminate; the MDC restarts us.
            self.journal.record(self.env.now, "incarnation_failed", str(exc))
        finally:
            self.alive = False
            self.stabilizer.stop()
            self.endpoint.stop(shutdown_clients=self._shutdown_clients_on_exit)

    # ------------------------------------------------------------------
    # Log-before-ack + recovery
    # ------------------------------------------------------------------

    def _pre_ack(self, incoming: IncomingAlert):
        """Pessimistic logging hook: runs before the endpoint sends the ack."""
        if not self.config.pessimistic_logging_enabled:
            return  # ablated: ack without durability (bench E9)
        if incoming.seq is None:
            return  # email path: no ack, nothing to guarantee
        if self.log.has_seen(incoming.alert.alert_id):
            return  # redelivery of something already durable
        yield from self.log.append(
            incoming.alert.alert_id, incoming.alert.encode()
        )

    def _recover(self):
        """Replay unprocessed log entries before accepting new alerts.

        "Every time MyAlertBuddy is restarted, it first checks the log file
        for unprocessed IMs before accepting new alerts" (§4.2.1).
        """
        from repro.core.alert import Alert
        from repro.net.message import ChannelType

        for entry in self.log.unprocessed():
            self.journal.record(
                self.env.now, "recovery_replay", alert_id=entry.alert_id
            )
            incoming = IncomingAlert(
                alert=Alert.decode(entry.payload),
                via=ChannelType.IM,
                sender="(recovered)",
                received_at=entry.received_at,
            )
            yield from self._process_incoming(incoming)

    # ------------------------------------------------------------------
    # The §4.2 pipeline
    # ------------------------------------------------------------------

    def _process_incoming(self, incoming: IncomingAlert):
        config = self.config
        alert = incoming.alert
        self.last_progress = self.env.now
        self.memory_mb += DEFAULT_LEAK_PER_ALERT_MB
        entry = self.log.entry_for_alert(alert.alert_id)

        def finish(kind: str, detail: str = ""):
            self.journal.record(
                self.env.now, kind, detail, alert_id=alert.alert_id
            )
            if entry is not None:
                self.log.mark_processed(entry.entry_id)

        if (
            alert.alert_id in self.journal.routed_ids
            and incoming.retry_users is None
        ):
            finish("duplicate_incoming", f"via {incoming.via.value}")
            return

        yield self.env.timeout(config.processing_latency.draw(self.rng))

        try:
            keyword = config.classifier.classify(alert, sender=incoming.sender)
        except AlertRejected as exc:
            finish("rejected", str(exc))
            return
        category = config.aggregator.category_for(keyword)
        if category is None:
            finish("unmapped", f"keyword {keyword!r}")
            return
        decision = config.filters.evaluate(category, self.env.now)
        if decision is not FilterDecision.DELIVER:
            finish("filtered", f"{category}: {decision.value}")
            return
        subscriptions = config.subscriptions.subscriptions_for(category)
        if not subscriptions:
            finish("no_subscribers", category)
            return

        if incoming.retry_users is not None:
            subscriptions = [
                s for s in subscriptions if s.user in incoming.retry_users
            ]

        tagged = alert.with_category(category)
        yield self.env.timeout(config.routing_overhead.draw(self.rng))
        failed_users: set[str] = set()
        for subscription in subscriptions:
            mode = config.subscriptions.mode(
                subscription.user, subscription.mode_name
            )
            book = config.subscriptions.address_book(subscription.user)
            outcome = yield from self.endpoint.deliver_alert(tagged, mode, book)
            self.journal.record(
                self.env.now,
                "routed" if outcome.delivered else "delivery_failed",
                f"{subscription.user} via {subscription.mode_name}",
                alert_id=alert.alert_id,
            )
            if not outcome.delivered:
                failed_users.add(subscription.user)

        if failed_users and incoming.attempts + 1 < config.delivery_max_attempts:
            # Some subscriber got nothing on any block: re-queue for them.
            # The log entry stays unprocessed, so even a crash in the retry
            # window cannot lose an acknowledged alert.
            self.journal.record(
                self.env.now,
                "retry_scheduled",
                f"attempt {incoming.attempts + 1} for {sorted(failed_users)}",
                alert_id=alert.alert_id,
            )
            self.env.process(
                self._requeue(incoming, failed_users),
                name=f"retry-{alert.alert_id}",
            )
            if not failed_users.issuperset(s.user for s in subscriptions):
                # Partial success: the successful users must not get it again.
                self.journal.routed_ids.add(alert.alert_id)
            self.last_progress = self.env.now
            return
        if failed_users:
            self.journal.record(
                self.env.now,
                "delivery_abandoned",
                f"gave up after {config.delivery_max_attempts} attempts",
                alert_id=alert.alert_id,
            )
        self.journal.routed_ids.add(alert.alert_id)
        if entry is not None:
            self.log.mark_processed(entry.entry_id)
        self.last_progress = self.env.now

    def _requeue(self, incoming: IncomingAlert, failed_users: set[str]):
        yield self.env.timeout(self.config.delivery_retry_delay)
        retry = IncomingAlert(
            alert=incoming.alert,
            via=incoming.via,
            sender=incoming.sender,
            received_at=incoming.received_at,
            seq=incoming.seq,
            attempts=incoming.attempts + 1,
            retry_users=frozenset(failed_users),
        )
        yield self.endpoint.alert_inbox.put(retry)

    # ------------------------------------------------------------------
    # Self-stabilization tasks
    # ------------------------------------------------------------------

    def _setup_stabilizer(self) -> None:
        interval = self.config.sanity_interval
        self.stabilizer.add_task("im-sanity", interval, self._im_sanity)
        self.stabilizer.add_task("email-sanity", interval, self._email_sanity)

    def _im_sanity(self) -> list[str]:
        report = self.endpoint.im_manager.sanity_check()
        return list(report.repairs)

    def _email_sanity(self) -> list[str]:
        report = self.endpoint.email_manager.sanity_check()
        return list(report.repairs)

    # ------------------------------------------------------------------
    # Rejuvenation triggers
    # ------------------------------------------------------------------

    def _nightly(self):
        delay = seconds_until_time_of_day(
            self.env.now, self.config.rejuvenation.nightly_time
        )
        yield self.env.timeout(delay)
        if self.alive:
            self.request_rejuvenation(
                RejuvenationKind.NIGHTLY,
                detail="orderly nightly shutdown",
                shutdown_clients=True,
            )

    def _on_command(self, message: Message) -> None:
        if self.config.rejuvenation.matches_keyword(message.body):
            self.journal.record(
                self.env.now, "remote_command", f"from {message.sender}"
            )
            self.request_rejuvenation(
                RejuvenationKind.REMOTE, detail=f"keyword from {message.sender}"
            )
