"""MyAlertBuddy: the personal alert daemon's lifecycle and HA machinery.

One :class:`MyAlertBuddy` object is one *incarnation* — one run of the MAB
process between launches by the MDC.  Everything that must survive a crash
lives outside the incarnation and is passed in:

- the :class:`~repro.core.endpoint.SimbaEndpoint` (client software keeps
  running when MAB dies; a fresh incarnation re-attaches),
- the :class:`~repro.core.pessimistic_log.PessimisticLog`,
- the user-side configuration (:class:`BuddyConfig`),
- the :class:`BuddyJournal` audit trail.

The per-alert flow (§4.2: classification → aggregation → filtering →
routing, plus delivery retry and recovery replay) lives in
:mod:`repro.core.pipeline`; this module owns only what is specific to an
incarnation: high availability (§4.2.1) via pessimistic log-before-ack
(wired through the endpoint's ``pre_ack_hook``), the MDC probe protocol
(:meth:`attach_mdc`), self-stabilization tasks, and three-way rejuvenation.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    build_controller,
)
from repro.core.aggregator import CategoryAggregator
from repro.core.classifier import AlertClassifier
from repro.core.endpoint import IncomingAlert, SimbaEndpoint
from repro.core.filters import FilterPolicy
from repro.core.pessimistic_log import PessimisticLog
from repro.core.pipeline import AlertPipeline
from repro.core.rejuvenation import (
    RejuvenationKind,
    RejuvenationPolicy,
    RejuvenationRecord,
)
from repro.core.stabilizer import SelfStabilizer
from repro.core.subscription import SubscriptionLayer
from repro.errors import Interrupt, SimbaError
from repro.net.channel import LatencyModel
from repro.net.message import Message
from repro.sim.clock import seconds_until_time_of_day

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment
    from repro.sim.process import Process

#: Classification + category lookup on period hardware.
DEFAULT_PROCESSING = LatencyModel(median=0.40, sigma=0.30, low=0.05, high=3.0)
#: Subscription enumeration + delivery-mode XML parsing before sending.
DEFAULT_ROUTING_OVERHEAD = LatencyModel(median=0.70, sigma=0.30, low=0.10, high=4.0)

#: "the sanity checking APIs are invoked every minute" (§4.2.1).
DEFAULT_SANITY_INTERVAL = 60.0

DEFAULT_MEMORY_BASE_MB = 40.0
DEFAULT_MEMORY_LIMIT_MB = 200.0
#: Small natural leak per processed alert — what nightly rejuvenation resets.
DEFAULT_LEAK_PER_ALERT_MB = 0.02


@dataclass
class BuddyConfig:
    """Persistent user-side configuration of one MAB."""

    user: str
    classifier: AlertClassifier
    aggregator: CategoryAggregator
    filters: FilterPolicy
    subscriptions: SubscriptionLayer
    rejuvenation: RejuvenationPolicy = field(default_factory=RejuvenationPolicy)
    processing_latency: LatencyModel = DEFAULT_PROCESSING
    routing_overhead: LatencyModel = DEFAULT_ROUTING_OVERHEAD
    sanity_interval: float = DEFAULT_SANITY_INTERVAL
    memory_limit_mb: float = DEFAULT_MEMORY_LIMIT_MB
    #: When every block of every subscription fails (e.g. a blocking system
    #: dialog took both clients down), re-queue the alert and try again —
    #: an acknowledged alert must never be silently dropped.
    delivery_retry_delay: float = 120.0
    delivery_max_attempts: int = 6
    # Ablation switches (§4.2.1 techniques; bench E9 disables one at a time).
    pessimistic_logging_enabled: bool = True
    self_stabilization_enabled: bool = True
    monkey_enabled: bool = True
    # Testkit hook points.  The config outlives incarnations, so hooks set
    # here survive every MDC restart — exactly what a chaos run needs.
    #: Builds the stage list for each incarnation's pipeline (None = the
    #: standard §4.2 stages).  The chaos testkit swaps in deliberately
    #: broken stages here to validate that the oracle catches them.
    stage_factory: Optional[Callable[[], list]] = None
    #: Forwarded to :attr:`AlertPipeline.on_outcome` — observes every
    #: completed pipeline trip (the delivery oracle's capture point).
    pipeline_observer: Optional[Callable] = None
    #: Traffic hardening (rate limits, dedup, retry budgets, shedding).
    #: None keeps the legacy unhardened path bit-for-bit.
    admission: Optional[AdmissionConfig] = None
    _admission_controller: Optional[AdmissionController] = field(
        default=None, repr=False, compare=False
    )

    def admission_controller(self) -> Optional[AdmissionController]:
        """The lazily-built, *persistent* admission controller.

        Lives on the config — which outlives incarnations — so dedup keys
        and per-alert retry budgets survive MAB crashes and MDC restarts;
        a crash must not refill an alert's retry budget.
        """
        if self.admission is not None and self._admission_controller is None:
            self._admission_controller = build_controller(
                self.admission, self.user
            )
        return self._admission_controller


@dataclass
class JournalEvent:
    at: float
    kind: str
    detail: str = ""
    alert_id: Optional[str] = None


class BuddyJournal:
    """Cross-incarnation audit trail plus the processed-alert dedup set.

    Per-kind tallies are maintained incrementally in :meth:`record`, so
    :meth:`count` is O(1) however long the run — the recovery report and the
    fault-tolerance experiments poll it repeatedly.

    ``max_events`` bounds the retained event window (a deque drops the
    oldest entries) so million-alert farm runs do not grow memory linearly
    with traffic — the same resource-consumption failure mode rejuvenation
    exists to catch (§4.2.1).  Counts always reflect *all* events ever
    recorded, retained or not.
    """

    def __init__(self, max_events: Optional[int] = None):
        self.max_events = max_events
        self.events: "deque[JournalEvent] | list[JournalEvent]" = (
            deque(maxlen=max_events) if max_events is not None else []
        )
        self.routed_ids: set[str] = set()
        #: Alerts whose delivery-retry chain is still in flight.  A second
        #: incoming copy (e.g. the sender's email fallback after a blocked
        #: ack) must not start a competing chain — found by the chaos
        #: testkit's exactly-once invariant.
        self.retry_pending: set[str] = set()
        self.rejuvenations: list[RejuvenationRecord] = []
        self._counts: Counter[str] = Counter()
        self.total_events = 0

    def record(
        self, at: float, kind: str, detail: str = "", alert_id: Optional[str] = None
    ) -> None:
        self.events.append(
            JournalEvent(at=at, kind=kind, detail=detail, alert_id=alert_id)
        )
        self._counts[kind] += 1
        self.total_events += 1

    def count(self, kind: str) -> int:
        return self._counts[kind]

    def counts(self) -> Counter:
        """A copy of every per-kind tally (for aggregate farm rollups)."""
        return Counter(self._counts)

    @property
    def dropped_events(self) -> int:
        """How many events the ``max_events`` bound has evicted."""
        return self.total_events - len(self.events)

    def of_kind(self, kind: str) -> list[JournalEvent]:
        """The *retained* events of one kind (the bound may have dropped
        older ones; use :meth:`count` for exact totals)."""
        return [e for e in self.events if e.kind == kind]


class MyAlertBuddy:
    """One incarnation of the MAB daemon."""

    def __init__(
        self,
        env: "Environment",
        config: BuddyConfig,
        endpoint: SimbaEndpoint,
        log: PessimisticLog,
        journal: BuddyJournal,
        rng: np.random.Generator,
    ):
        self.env = env
        self.config = config
        self.endpoint = endpoint
        self.log = log
        self.journal = journal
        self.rng = rng

        self.process: Optional["Process"] = None
        self.alive = False
        self.hung = False
        self.memory_mb = DEFAULT_MEMORY_BASE_MB
        self.last_progress = env.now
        self.stabilizer = SelfStabilizer(env, on_unrectifiable=self._on_unrectifiable)
        self._shutdown_clients_on_exit = False
        self.pipeline = AlertPipeline(
            env,
            config=config,
            endpoint=endpoint,
            log=log,
            journal=journal,
            rng=rng,
            stages=(
                config.stage_factory()
                if config.stage_factory is not None
                else None
            ),
            on_progress=self._mark_progress,
            on_outcome=config.pipeline_observer,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Process":
        """Launch the incarnation's main process."""
        if self.process is not None:
            raise RuntimeError("an incarnation can only be started once")
        self.process = self.env.process(
            self._main(), name=f"mab-{self.config.user}"
        )
        return self.process

    def force_terminate(self, cause: str) -> None:
        """Kill this incarnation (crash injection / MDC restart)."""
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(cause)

    def request_rejuvenation(
        self,
        kind: RejuvenationKind,
        detail: str = "",
        shutdown_clients: bool = False,
    ) -> None:
        """Gracefully terminate so the MDC relaunches at a clean state."""
        if not self.alive:
            return
        self.journal.rejuvenations.append(
            RejuvenationRecord(at=self.env.now, kind=kind, detail=detail)
        )
        self.journal.record(self.env.now, "rejuvenation", f"{kind.value}: {detail}")
        self._shutdown_clients_on_exit = shutdown_clients
        self.force_terminate(f"rejuvenation:{kind.value}")

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------

    def crash(self, detail: str = "injected crash") -> bool:
        """Unhandled-exception style termination."""
        if not self.alive:
            return False
        self.journal.record(self.env.now, "crash", detail)
        self.force_terminate(f"crash:{detail}")
        return True

    def hang(self) -> bool:
        """Stop making progress without terminating (probe goes unanswered)."""
        if not self.alive or self.hung:
            return False
        self.hung = True
        self.journal.record(self.env.now, "hang")
        # All the process's threads stall together: receive loops, monkey
        # threads and stabilizer stop being scheduled.
        self.endpoint.stop()
        self.stabilizer.stop()
        return True

    def leak_memory(self, megabytes: float) -> bool:
        if not self.alive:
            return False
        self.memory_mb += megabytes
        self.journal.record(self.env.now, "memory_leak", f"{megabytes} MB")
        return True

    # ------------------------------------------------------------------
    # MDC protocol (§4.2.1 Watchdog)
    # ------------------------------------------------------------------

    def attach_mdc(self, request, reply) -> None:
        """Register one AreYouWorking probe (request/reply event pair)."""
        self.env.process(self._mdc_client(request, reply), name="mdc-client")

    def _mdc_client(self, request, reply):
        yield request
        if not self.alive or self.hung:
            return  # never reply: the MDC's timeout fires
        if self.are_you_working():
            reply.succeed()

    def are_you_working(self) -> bool:
        """Non-blocking self-check invoked via the MDC client thread.

        "MyAlertBuddy checks the health of the process and the threads by
        monitoring the timestamps of their progress and unusual system
        resource consumption" (§4.2.1).
        """
        if self.memory_mb > self.config.memory_limit_mb:
            # Unusual resource consumption: reply healthy but schedule a
            # graceful restart to shed the leak.
            self.request_rejuvenation(
                RejuvenationKind.EXCEPTION,
                detail=f"memory {self.memory_mb:.0f} MB over limit",
            )
            return True
        return True

    def _on_unrectifiable(self, task_name: str, exc: Exception) -> None:
        if self.config.rejuvenation.exception_triggered:
            self.request_rejuvenation(
                RejuvenationKind.EXCEPTION, detail=f"{task_name}: {exc}"
            )

    # ------------------------------------------------------------------
    # Main process
    # ------------------------------------------------------------------

    def _main(self):
        self.alive = True
        self.journal.record(self.env.now, "incarnation_start")
        try:
            self.endpoint.pre_ack_hook = self._pre_ack
            self.endpoint.command_handler = self._on_command
            self.endpoint.monkey_enabled = self.config.monkey_enabled
            self.endpoint.start()
            if self.config.self_stabilization_enabled:
                self._setup_stabilizer()
                self.stabilizer.start()
            if self.config.rejuvenation.nightly_enabled:
                self.env.process(self._nightly(), name="mab-nightly")
            yield from self._recover()
            while self.alive:
                incoming = yield self.endpoint.alert_inbox.get()
                if self.hung:
                    # A hung process holds the item forever; the MDC restart
                    # interrupts us here.  The alert itself is safe in the
                    # pessimistic log if it arrived by IM.
                    yield self.env.event()
                yield from self._process_incoming(incoming)
        except Interrupt as interrupt:
            self.journal.record(
                self.env.now, "incarnation_end", str(interrupt.cause)
            )
        except SimbaError as exc:
            # An unhandled library error is exactly the paper's "exception
            # that cannot be handled": terminate; the MDC restarts us.
            self.journal.record(self.env.now, "incarnation_failed", str(exc))
        finally:
            self.alive = False
            self.stabilizer.stop()
            self.endpoint.stop(shutdown_clients=self._shutdown_clients_on_exit)

    # ------------------------------------------------------------------
    # Log-before-ack + recovery
    # ------------------------------------------------------------------

    def _pre_ack(self, incoming: IncomingAlert):
        """Pessimistic logging hook: runs before the endpoint sends the ack."""
        if not self.config.pessimistic_logging_enabled:
            return  # ablated: ack without durability (bench E9)
        if incoming.seq is None:
            return  # email path: no ack, nothing to guarantee
        if self.log.has_seen(incoming.alert.alert_id):
            return  # redelivery of something already durable
        yield from self.log.append(
            incoming.alert.alert_id, incoming.alert.encode()
        )

    def _recover(self):
        """Replay unprocessed log entries (the pipeline owns the mechanics)."""
        yield from self.pipeline.recover()

    # ------------------------------------------------------------------
    # The §4.2 pipeline (see repro.core.pipeline for the stages)
    # ------------------------------------------------------------------

    def _mark_progress(self) -> None:
        self.last_progress = self.env.now

    def _process_incoming(self, incoming: IncomingAlert):
        """Incarnation-side accounting, then one pipeline trip."""
        self.last_progress = self.env.now
        self.memory_mb += DEFAULT_LEAK_PER_ALERT_MB
        ctx = yield from self.pipeline.process(incoming)
        return ctx

    # ------------------------------------------------------------------
    # Self-stabilization tasks
    # ------------------------------------------------------------------

    def _setup_stabilizer(self) -> None:
        interval = self.config.sanity_interval
        self.stabilizer.add_task("im-sanity", interval, self._im_sanity)
        self.stabilizer.add_task("email-sanity", interval, self._email_sanity)

    def _im_sanity(self) -> list[str]:
        report = self.endpoint.im_manager.sanity_check()
        return list(report.repairs)

    def _email_sanity(self) -> list[str]:
        report = self.endpoint.email_manager.sanity_check()
        return list(report.repairs)

    # ------------------------------------------------------------------
    # Rejuvenation triggers
    # ------------------------------------------------------------------

    def _nightly(self):
        delay = seconds_until_time_of_day(
            self.env.now, self.config.rejuvenation.nightly_time
        )
        # The 11:30 PM deadline can be most of a day away; acquiring it
        # through a TimerScope structurally cancels it when this
        # incarnation is terminated first, instead of leaving the queue
        # to carry the entry to a meaningless deadline.
        with self.env.timers() as timers:
            yield timers.acquire(delay)
        if self.alive:
            self.request_rejuvenation(
                RejuvenationKind.NIGHTLY,
                detail="orderly nightly shutdown",
                shutdown_clients=True,
            )

    def _on_command(self, message: Message) -> None:
        if self.config.rejuvenation.matches_keyword(message.body):
            self.journal.record(
                self.env.now, "remote_command", f"from {message.sender}"
            )
            self.request_rejuvenation(
                RejuvenationKind.REMOTE, detail=f"keyword from {message.sender}"
            )
