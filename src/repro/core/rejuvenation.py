"""Software rejuvenation policy (§4.2.1).

"We perform three kinds of rejuvenation tasks in MyAlertBuddy: (1) whenever
MyAlertBuddy catches an exception that cannot be handled or any of the
self-stabilization checks reveals invariant violations that cannot be
rectified, MyAlertBuddy gracefully terminates and gets restarted by the MDC.
(2) Every night at 11:30PM, MyAlertBuddy requests an orderly shutdown of all
the communication client software and terminates itself.  (3) ... users can
send IMs or emails with special keywords to explicitly trigger rejuvenation."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.clock import HOUR

#: 11:30 PM, as in the paper.
DEFAULT_NIGHTLY_TIME = 23.5 * HOUR

#: The magic keyword recognized in remote-administration IMs/emails.
DEFAULT_KEYWORD = "SIMBA-REJUVENATE"


class RejuvenationKind(enum.Enum):
    EXCEPTION = "exception"
    NIGHTLY = "nightly"
    REMOTE = "remote"


@dataclass
class RejuvenationPolicy:
    """When MyAlertBuddy should rejuvenate."""

    nightly_enabled: bool = True
    nightly_time: float = DEFAULT_NIGHTLY_TIME
    keywords: set[str] = field(default_factory=lambda: {DEFAULT_KEYWORD})
    exception_triggered: bool = True

    def matches_keyword(self, text: str) -> bool:
        """Does a remote-administration message request rejuvenation?"""
        return any(keyword in text for keyword in self.keywords)


@dataclass
class RejuvenationRecord:
    at: float
    kind: RejuvenationKind
    detail: str = ""
