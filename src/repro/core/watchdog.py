"""The Master Daemon Controller (MDC): MyAlertBuddy's watchdog (§4.2.1).

"MyAlertBuddy is always launched by a watchdog process called Master Daemon
Controller (MDC), which monitors MyAlertBuddy and restarts it upon detecting
its termination.  The MDC also periodically invokes a non-blocking
AreYouWorking() function call and restarts MyAlertBuddy if it is hung and
fails to respond ...  If the number of failed restarts exceeds a threshold,
the MDC reboots the machine."

The probe protocol mirrors the paper's event-object design: the MDC signals
a request event; a client thread *inside* MyAlertBuddy wakes, invokes the
AreYouWorking callback, and signals the reply event.  A hung buddy never
replies, so the MDC cannot be blocked by the hang itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol

from repro.core.host import Host
from repro.obs import lifecycle_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment
    from repro.sim.process import Process

#: "the AreYouWorking() callback is invoked every three minutes" (§4.2.1).
DEFAULT_CHECK_INTERVAL = 180.0
DEFAULT_REPLY_TIMEOUT = 10.0
DEFAULT_MAX_FAILED_RESTARTS = 3
#: A restarted buddy that survives this long is considered stable again.
DEFAULT_STABILITY_WINDOW = 600.0


class RestartReason(enum.Enum):
    TERMINATION = "termination"
    PROBE_TIMEOUT = "probe_timeout"


@dataclass
class RestartRecord:
    at: float
    reason: RestartReason


class Watchable(Protocol):
    """What the MDC requires of a MyAlertBuddy incarnation."""

    process: Optional["Process"]

    def start(self) -> "Process": ...
    def attach_mdc(self, request, reply) -> None: ...
    def force_terminate(self, cause: str) -> None: ...


class MasterDaemonController:
    """Launches, probes, restarts and — in extremis — reboots."""

    def __init__(
        self,
        env: "Environment",
        host: Host,
        buddy_factory: Callable[[], Watchable],
        check_interval: float = DEFAULT_CHECK_INTERVAL,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
        max_failed_restarts: int = DEFAULT_MAX_FAILED_RESTARTS,
        stability_window: float = DEFAULT_STABILITY_WINDOW,
    ):
        self.env = env
        self.host = host
        self.buddy_factory = buddy_factory
        self.check_interval = check_interval
        self.reply_timeout = reply_timeout
        self.max_failed_restarts = max_failed_restarts
        self.stability_window = stability_window

        self.buddy: Optional[Watchable] = None
        self.restarts: list[RestartRecord] = []
        self.reboots_requested = 0
        self.running = False
        self._generation = 0
        self._consecutive_failed = 0
        #: Replication hook: when set, a boot-time restart first asks the
        #: failover controller whether this side may run at all.  A fenced
        #: old primary gets False (and is sent to reconciliation) — the MDC
        #: hands off instead of resurrecting a split brain.
        self.resurrection_gate: Optional[Callable[[], bool]] = None

        host.on_shutdown(self._on_host_down)
        host.on_boot(self._on_host_boot)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch the buddy and begin monitoring (idempotent)."""
        if self.running:
            return
        self.running = True
        self._generation += 1
        self._launch_buddy()
        self.env.process(
            self._monitor(self._generation), name="mdc-monitor"
        )

    def stop(self, terminate_buddy: bool = False) -> None:
        """Stop monitoring; with ``terminate_buddy`` also kill the buddy.

        A plain stop leaves the incarnation running *unmonitored* — fine
        for handing over to another supervisor, but a teardown (or a
        fencing handoff) wants no orphan process left routing.
        """
        self.running = False
        if (
            terminate_buddy
            and self.buddy is not None
            and self.buddy.process is not None
            and self.buddy.process.is_alive
        ):
            self.buddy.force_terminate("MDC stop")

    def _on_host_down(self) -> None:
        self.running = False
        if self.buddy is not None and self.buddy.process is not None:
            if self.buddy.process.is_alive:
                self.buddy.force_terminate("host down")
        self.buddy = None

    def _on_host_boot(self) -> None:
        # The MDC is registered to start at boot — that is what makes the
        # whole stack self-healing across reboots.
        if self.resurrection_gate is not None and not self.resurrection_gate():
            return
        self.start()

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def _launch_buddy(self) -> None:
        self.buddy = self.buddy_factory()
        self.buddy.start()

    def _trace_lifecycle(self, name: str, **annotations) -> None:
        tracer = self.env.tracer
        if tracer is None:
            return
        owner = (
            getattr(getattr(self.buddy, "config", None), "user", None)
            or self.host.name
        )
        tracer.event(lifecycle_trace(owner), name, **annotations)

    def _restart_buddy(self, reason: RestartReason) -> None:
        self.restarts.append(RestartRecord(at=self.env.now, reason=reason))
        self._trace_lifecycle("mdc.restart", reason=reason.value)
        buddy = self.buddy
        if buddy is not None and buddy.process is not None and buddy.process.is_alive:
            buddy.force_terminate(f"MDC restart: {reason.value}")
        self._consecutive_failed += 1
        if self._consecutive_failed > self.max_failed_restarts:
            self.reboots_requested += 1
            self._consecutive_failed = 0
            self._trace_lifecycle("mdc.reboot", host=self.host.name)
            self.host.reboot()  # monitoring stops via the shutdown hook
            return
        self._launch_buddy()

    def _monitor(self, generation: int):
        last_restart_time = self.env.now
        # One TimerScope for the monitor's whole life: each probe's guard
        # timer is acquired through it and structurally cancelled when the
        # race settles — or when the monitor itself is torn down mid-wait
        # (host crash closing the generator), which a hand-written
        # ``timeout.cancel()`` after the yield could never cover.  A
        # healthy buddy replies well before the reply timeout, so at farm
        # scale (one guard per tenant per check interval) this is what
        # keeps dead entries out of the queue.
        with self.env.timers() as timers:
            while self.running and self._generation == generation:
                yield self.env.timeout(self.check_interval)
                if not self.running or self._generation != generation:
                    return
                buddy = self.buddy
                if buddy is None:
                    return
                # Stability bookkeeping: a long-enough quiet period clears
                # the consecutive-failure counter.
                if (
                    self._consecutive_failed
                    and self.env.now - last_restart_time >= self.stability_window
                ):
                    self._consecutive_failed = 0

                if buddy.process is None or not buddy.process.is_alive:
                    self._restart_buddy(RestartReason.TERMINATION)
                    last_restart_time = self.env.now
                    continue

                request = self.env.event()
                reply = self.env.event()
                buddy.attach_mdc(request, reply)
                request.succeed()
                guard = timers.acquire(self.reply_timeout)
                yield self.env.any_of([reply, guard])
                timers.cancel(guard)
                if not reply.processed:
                    self._restart_buddy(RestartReason.PROBE_TIMEOUT)
                    last_restart_time = self.env.now
